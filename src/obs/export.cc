#include "obs/export.h"

#include <cstring>
#include <regex>
#include <set>
#include <sstream>
#include <vector>

namespace erbium {
namespace obs {
namespace {

bool IsPromChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Label values may contain anything; Prometheus escapes backslash,
/// double quote, and newline.
std::string PromLabelEscaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "erbium_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    out += IsPromChar(c) ? c : '_';
  }
  return out;
}

std::string ExportPrometheusText() {
  return ExportPrometheusText(MetricsRegistry::Global());
}

std::string ExportPrometheusText(const MetricsRegistry& registry) {
  RegistrySnapshot snapshot = registry.Snapshot();
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " counter\n";
    out << prom << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " gauge\n";
    out << prom << ' ' << value << '\n';
  }
  for (const auto& [name, snap] : snapshot.histograms) {
    std::string prom = PrometheusName(name);
    out << "# TYPE " << prom << " histogram\n";
    // Prometheus buckets are cumulative; the snapshot's are per-bucket.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snap.bounds.size(); ++i) {
      cumulative += i < snap.buckets.size() ? snap.buckets[i] : 0;
      out << prom << "_bucket{le=\""
          << PromLabelEscaped(JsonDouble(snap.bounds[i])) << "\"} "
          << cumulative << '\n';
    }
    out << prom << "_bucket{le=\"+Inf\"} " << snap.count << '\n';
    out << prom << "_sum " << JsonDouble(snap.sum) << '\n';
    out << prom << "_count " << snap.count << '\n';
  }
  return out.str();
}

std::string PrometheusFormatError(const std::string& text) {
  static const std::regex kTypeLine(
      R"(# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram))");
  static const std::regex kSampleLine(
      R"(([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?|\+Inf|-Inf|NaN))");
  std::set<std::string> families;
  std::istringstream lines(text);
  std::string line;
  int samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::smatch m;
    if (line[0] == '#') {
      if (!std::regex_match(line, m, kTypeLine)) {
        return "malformed TYPE line: " + line;
      }
      families.insert(m[1]);
      continue;
    }
    if (!std::regex_match(line, m, kSampleLine)) {
      return "malformed sample line: " + line;
    }
    std::string name = m[1];
    // _bucket/_sum/_count samples belong to the histogram family name.
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      size_t len = std::strlen(suffix);
      if (name.size() > len &&
          name.compare(name.size() - len, len, suffix) == 0 &&
          families.count(name.substr(0, name.size() - len)) > 0) {
        name = name.substr(0, name.size() - len);
        break;
      }
    }
    if (families.count(name) == 0) {
      return "sample without TYPE declaration: " + line;
    }
    ++samples;
  }
  if (samples == 0) return "no samples in exposition";
  return "";
}

std::string ExportChromeTrace(const QueryStats& stats,
                              const std::string& query_text) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  // Synthetic timeline: cursors[d] is where the next span at depth d
  // starts. Visiting a span advances its own depth's cursor by its
  // duration (siblings run back-to-back) and rewinds the next depth's
  // cursor to its start (children nest inside it). Spans time their
  // children inclusively, so nested durations fit inside the parent's.
  std::vector<double> cursors;
  bool first = true;
  for (const SpanRecord& span : stats.spans) {
    size_t depth = static_cast<size_t>(span.depth);
    if (cursors.size() <= depth + 1) cursors.resize(depth + 2, 0.0);
    double ts = cursors[depth];
    double dur = static_cast<double>(span.stats.wall_ns) / 1e3;
    cursors[depth] = ts + dur;
    cursors[depth + 1] = ts;
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << JsonEscaped(span.name)
        << "\",\"cat\":\"erbium\",\"ph\":\"X\",\"pid\":1,\"tid\":"
        << span.depth << ",\"ts\":" << JsonDouble(ts)
        << ",\"dur\":" << JsonDouble(dur) << ",\"args\":{\"rows\":"
        << span.stats.rows_out << ",\"opens\":" << span.stats.opens
        << ",\"cpu_us\":"
        << JsonDouble(static_cast<double>(span.stats.cpu_ns) / 1e3);
    if (span.stats.batches > 0) {
      out << ",\"batches\":" << span.stats.batches;
    }
    if (!span.detail.empty()) {
      out << ",\"detail\":\"" << JsonEscaped(span.detail) << '"';
    }
    out << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  if (!query_text.empty()) {
    out << "\"query\":\"" << JsonEscaped(query_text) << "\",";
  }
  out << "\"total_wall_us\":"
      << JsonDouble(static_cast<double>(stats.total_wall_ns) / 1e3) << "}}";
  return out.str();
}

}  // namespace obs
}  // namespace erbium
