#ifndef ERBIUM_OBS_METRICS_H_
#define ERBIUM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace erbium {
namespace obs {

/// Process-wide metrics: named counters, gauges, and fixed-boundary
/// histograms.
///
/// The hot path (Counter::Increment / Histogram::Observe) is lock-free:
/// every thread owns a thread-local *shard* holding one slot per metric,
/// and writes touch only that shard with relaxed atomics (single writer
/// per slot, so a load+store pair suffices — no lock-prefixed RMW).
/// Reads (Value/Snapshot/ToJson) take the registry mutex and merge the
/// live shards plus the totals retired by exited threads. The mutex is
/// also what keeps shard growth (registering a metric after a shard
/// exists) safe against concurrent merges.
///
/// Registration is idempotent by name and returns a cheap copyable
/// handle; handles stay valid for the process lifetime (the registry is
/// never destroyed).
class MetricsRegistry;

/// Monotonically increasing count (rows scanned, inserts, index probes).
class Counter {
 public:
  Counter() = default;
  void Increment(uint64_t delta = 1) const;
  /// Merged value across all shards. Takes the registry lock.
  uint64_t Value() const;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, size_t id)
      : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  size_t id_ = 0;
};

/// Point-in-time signed value (open scans, live tables). Set/Add are
/// globally ordered (plain atomics, not sharded): gauges are written
/// rarely and a per-shard "last write" would not merge meaningfully.
class Gauge {
 public:
  Gauge() = default;
  void Set(int64_t value) const;
  void Add(int64_t delta) const;
  int64_t Value() const;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, size_t id)
      : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  size_t id_ = 0;
};

/// Merged histogram state returned by reads.
struct HistogramSnapshot {
  std::vector<double> bounds;    // upper bucket edges, ascending
  std::vector<uint64_t> buckets; // bounds.size() + 1 (last = overflow)
  uint64_t count = 0;
  double sum = 0;
};

/// Point-in-time copy of every metric in a registry, keys sorted. The
/// exporters (obs/export.h) and SHOW METRICS render from this rather
/// than holding the registry lock while formatting.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Escapes a string for embedding in a JSON string literal: quote,
/// backslash, and all control characters (as \uXXXX for the ones without
/// a short form). Shared by ToJson and the exporters.
std::string JsonEscaped(const std::string& s);

/// Formats a double as the shortest decimal that parses back to exactly
/// the same value (integral values print without a fraction; non-finite
/// values print as 0, since JSON has no NaN/Inf).
std::string JsonDouble(double v);

/// Distribution with fixed bucket boundaries chosen at registration.
/// An observation v lands in the first bucket whose bound satisfies
/// v <= bound; values above the last bound land in the overflow bucket.
class Histogram {
 public:
  Histogram() = default;
  void Observe(double value) const;
  HistogramSnapshot Snapshot() const;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, size_t id)
      : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  size_t id_ = 0;
};

class MetricsRegistry {
 public:
  /// The process-wide registry. Intentionally leaked so metrics written
  /// during static destruction stay valid.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  /// Orphans any still-live thread shards (e.g. the calling thread's own)
  /// so their eventual thread-exit destruction is a no-op. Threads other
  /// than the caller must have stopped writing before destruction.
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Idempotent registration: the same name always yields a handle to
  /// the same metric. A histogram re-registered with different bounds
  /// keeps the original bounds.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name, std::vector<double> bounds);

  /// Merged reads by name; zero/empty when the metric does not exist.
  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;
  HistogramSnapshot HistogramValue(const std::string& name) const;

  /// Merged copy of every metric; one lock acquisition.
  RegistrySnapshot Snapshot() const;

  /// All metrics as one JSON object, keys sorted:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const;

  /// Zeroes every metric (counters, gauges, histogram contents; bucket
  /// boundaries are kept). Callers must be quiescent: increments racing
  /// a reset may survive it. Intended for between-query / between-test
  /// boundaries.
  void Reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct HistShard {
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0;
  };

  /// One thread's slice of every sharded metric. Owned thread_local;
  /// merged into retired totals on thread exit.
  struct Shard {
    explicit Shard(MetricsRegistry* registry) : registry(registry) {}
    ~Shard();
    MetricsRegistry* registry;
    std::vector<uint64_t> counters;
    std::vector<HistShard> hists;
  };

  struct HistDef {
    std::string name;
    std::vector<double> bounds;
  };

  Shard& LocalShard();
  /// Grows `shard` under the lock so merges never observe a resize.
  void EnsureCounterSlot(Shard* shard, size_t id);
  void EnsureHistSlot(Shard* shard, size_t id);

  uint64_t MergedCounterLocked(size_t id) const;
  HistogramSnapshot MergedHistogramLocked(size_t id) const;

  mutable std::mutex mu_;
  std::map<std::string, size_t> counter_ids_;
  std::map<std::string, size_t> gauge_ids_;
  std::map<std::string, size_t> hist_ids_;
  // Deques: element addresses stay stable as metrics are added.
  std::deque<std::atomic<int64_t>> gauges_;
  std::deque<HistDef> hist_defs_;
  std::vector<Shard*> shards_;
  // Totals folded in from destroyed (thread-exit) shards.
  std::vector<uint64_t> retired_counters_;
  std::vector<HistShard> retired_hists_;
};

}  // namespace obs
}  // namespace erbium

#endif  // ERBIUM_OBS_METRICS_H_
