#ifndef ERBIUM_OBS_SESSION_H_
#define ERBIUM_OBS_SESSION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace erbium {
namespace obs {

/// One live client session as the observability layer sees it. The
/// network server registers a SessionInfo per connection; the shell
/// registers one for itself, so SHOW SESSIONS always has at least the
/// local session to report. Everything here is presentation state —
/// the server's own Session object owns the socket and the lifecycle.
struct SessionInfo {
  uint64_t id = 0;          // assigned by Register(), process-unique
  std::string name;         // attribution tag ("shell", "conn-3", ...)
  std::string peer;         // remote address, or "local"
  std::string state;        // "idle" / "executing" / "draining"
  uint64_t statements = 0;  // statements executed so far
  uint64_t errors = 0;      // of which failed
  std::string last_statement;
  /// Shard the last routed statement resolved to (StatementOutcome::
  /// shard): the routed shard of an INSERT or a single-shard SELECT's
  /// target. -1 until a statement routes (broadcasts keep the last
  /// value's slot at -1 too) — SHOW SESSIONS renders it as "-".
  int last_shard = -1;
  uint64_t connected_ns = 0;    // MonotonicNowNs() at registration
  uint64_t last_active_ns = 0;  // MonotonicNowNs() of the last statement

  // Transport counters, synced by the reactor loop thread (zero for the
  // local shell session, which has no socket).
  uint64_t bytes_in = 0;             // payload bytes read off the socket
  uint64_t bytes_out = 0;            // payload bytes written to the socket
  uint64_t pipeline_depth = 0;       // statements queued or executing now
  uint64_t peak_write_buffer = 0;    // high-water mark of buffered response
                                     // bytes awaiting flush
};

/// Process-wide registry of live sessions, the data source of
/// SHOW SESSIONS. Mutations take one mutex — sessions update at
/// per-statement granularity, never per row, so contention is noise.
class SessionRegistry {
 public:
  /// The registry used by the server, the shell, and SHOW SESSIONS.
  /// Intentionally leaked, like MetricsRegistry::Global().
  static SessionRegistry& Global();

  SessionRegistry() = default;
  SessionRegistry(const SessionRegistry&) = delete;
  SessionRegistry& operator=(const SessionRegistry&) = delete;

  /// Stores `info` (stamping info.id and connected_ns) and returns the
  /// assigned id. Deregister with the same id when the session ends.
  uint64_t Register(SessionInfo info);
  void Deregister(uint64_t id);

  /// Applies `fn` to the live record of session `id` under the registry
  /// lock; a no-op when the session is already gone.
  void Update(uint64_t id, const std::function<void(SessionInfo*)>& fn);

  /// Point-in-time copy of every live session, ordered by id.
  std::vector<SessionInfo> List() const;

  size_t ActiveCount() const;

 private:
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, SessionInfo> sessions_;
};

/// Tags every statement the current thread runs with a session name:
/// QueryTelemetry::Record() stamps the tag into QueryRecord::session,
/// which SHOW QUERIES renders — per-session attribution in the query
/// log. Scopes nest; each restores the previous tag on destruction.
class ScopedSessionTag {
 public:
  explicit ScopedSessionTag(std::string tag);
  ~ScopedSessionTag();

  ScopedSessionTag(const ScopedSessionTag&) = delete;
  ScopedSessionTag& operator=(const ScopedSessionTag&) = delete;

 private:
  std::string prev_;
};

/// The current thread's session tag; empty when untagged.
const std::string& CurrentSessionTag();

}  // namespace obs
}  // namespace erbium

#endif  // ERBIUM_OBS_SESSION_H_
