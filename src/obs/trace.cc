#include "obs/trace.h"

#include <time.h>

#include <cstdio>
#include <sstream>

namespace erbium {
namespace obs {
namespace {

std::atomic<bool> g_analyze{false};

uint64_t ClockNs(clockid_t clock) {
  struct timespec ts;
  clock_gettime(clock, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

bool AnalyzeEnabled() { return g_analyze.load(std::memory_order_relaxed); }

void SetAnalyzeEnabled(bool enabled) {
  g_analyze.store(enabled, std::memory_order_relaxed);
}

ScopedAnalyze::ScopedAnalyze() : prev_(AnalyzeEnabled()) {
  SetAnalyzeEnabled(true);
}

ScopedAnalyze::~ScopedAnalyze() { SetAnalyzeEnabled(prev_); }

uint64_t MonotonicNowNs() { return ClockNs(CLOCK_MONOTONIC); }

uint64_t ThreadCpuNowNs() { return ClockNs(CLOCK_THREAD_CPUTIME_ID); }

std::string FormatNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull) {
    snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ull) {
    snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000ull) {
    snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    snprintf(buf, sizeof(buf), "%lluns",
             static_cast<unsigned long long>(ns));
  }
  return buf;
}

std::string QueryStats::ToString() const {
  bool timed = false;
  for (const SpanRecord& span : spans) {
    if (span.stats.wall_ns > 0 || span.stats.cpu_ns > 0) {
      timed = true;
      break;
    }
  }
  std::ostringstream out;
  for (const SpanRecord& span : spans) {
    for (int i = 0; i < span.depth; ++i) out << "  ";
    out << span.name;
    if (!span.detail.empty()) out << " [" << span.detail << ']';
    out << "  rows=" << span.stats.rows_out;
    if (span.stats.opens != 1) out << " opens=" << span.stats.opens;
    if (span.stats.batches > 0) out << " batches=" << span.stats.batches;
    if (timed) {
      out << " wall=" << FormatNs(span.stats.wall_ns)
          << " cpu=" << FormatNs(span.stats.cpu_ns);
    }
    out << '\n';
  }
  if (total_wall_ns > 0) {
    out << "total wall=" << FormatNs(total_wall_ns) << '\n';
  }
  return out.str();
}

}  // namespace obs
}  // namespace erbium
