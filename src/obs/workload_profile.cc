#include "obs/workload_profile.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <utility>

#include "common/lexer.h"
#include "common/string_util.h"

namespace erbium {
namespace obs {

namespace {

/// Kinds that executed a plan against live data; everything else (SHOW,
/// EXPORT/LOAD WORKLOAD, ADVISE, CHECKPOINT, failed parses) observes the
/// system rather than participating in the workload.
bool IsProfiledKind(const std::string& kind) {
  return kind == "select" || kind == "explain_analyze" || kind == "trace";
}

void AppendField(std::string* out, const char* name, uint64_t value,
                 bool* first) {
  if (!*first) *out += ",";
  *first = false;
  *out += "\"";
  *out += name;
  *out += "\":";
  *out += std::to_string(value);
}

/// Strict parser for the snapshot JSON written by WorkloadSnapshot::ToJson.
/// Deliberately schema-aware rather than generic: LOAD WORKLOAD should
/// reject anything EXPORT WORKLOAD could not have produced. (tests use
/// tests/mini_json.h; that header is test-only, so the loader carries its
/// own ~100 lines.)
class SnapshotParser {
 public:
  explicit SnapshotParser(const std::string& text) : s_(text) {}

  Status Parse(WorkloadSnapshot* out) {
    SkipWs();
    ERBIUM_RETURN_NOT_OK(Expect('{'));
    uint64_t version = 0;
    ERBIUM_RETURN_NOT_OK(Key("version"));
    ERBIUM_RETURN_NOT_OK(Uint(&version));
    if (version != 1) {
      return Status::InvalidArgument("unsupported workload snapshot version " +
                                     std::to_string(version));
    }
    ERBIUM_RETURN_NOT_OK(Expect(','));
    ERBIUM_RETURN_NOT_OK(Key("statements"));
    ERBIUM_RETURN_NOT_OK(Uint(&out->statements));
    ERBIUM_RETURN_NOT_OK(Expect(','));
    ERBIUM_RETURN_NOT_OK(Key("entities"));
    ERBIUM_RETURN_NOT_OK(ParseMap(&out->entities, [this](EntityAccess* e) {
      return Fields({{"scans", &e->scans},
                     {"probes", &e->probes},
                     {"join_sides", &e->join_sides},
                     {"inserts", &e->inserts},
                     {"deletes", &e->deletes},
                     {"updates", &e->updates}});
    }));
    ERBIUM_RETURN_NOT_OK(Expect(','));
    ERBIUM_RETURN_NOT_OK(Key("relationships"));
    ERBIUM_RETURN_NOT_OK(
        ParseMap(&out->relationships, [this](RelationshipAccess* r) {
          return Fields({{"joins", &r->joins},
                         {"fused_scans", &r->fused_scans},
                         {"inserts", &r->inserts},
                         {"deletes", &r->deletes}});
        }));
    ERBIUM_RETURN_NOT_OK(Expect(','));
    ERBIUM_RETURN_NOT_OK(Key("attributes"));
    ERBIUM_RETURN_NOT_OK(
        ParseMap(&out->attributes, [this](AttributeAccess* a) {
          return Fields({{"predicates", &a->predicates},
                         {"projections", &a->projections}});
        }));
    ERBIUM_RETURN_NOT_OK(Expect(','));
    ERBIUM_RETURN_NOT_OK(Key("shapes"));
    ERBIUM_RETURN_NOT_OK(ParseShapes(&out->shapes));
    ERBIUM_RETURN_NOT_OK(Expect('}'));
    SkipWs();
    if (pos_ != s_.size()) return Error("trailing input");
    return Status::OK();
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("workload snapshot: " + message +
                                   " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != c) {
      return Error(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  /// "name": — consumes the quoted key and the colon.
  Status Key(const char* name) {
    std::string key;
    ERBIUM_RETURN_NOT_OK(String(&key));
    if (key != name) {
      return Error("expected key \"" + std::string(name) + "\", got \"" + key +
                   "\"");
    }
    return Expect(':');
  }

  Status String(std::string* out) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != '"') return Error("expected string");
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= s_.size()) return Error("dangling escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'r': *out += '\r'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Error("short \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value += h - '0';
            } else if (h >= 'a' && h <= 'f') {
              value += h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              value += h - 'A' + 10;
            } else {
              return Error("bad \\u escape");
            }
          }
          // JsonEscaped only emits \u for control characters (< 0x20).
          *out += static_cast<char>(value & 0x7f);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status Uint(uint64_t* out) {
    SkipWs();
    size_t start = pos_;
    uint64_t value = 0;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
      value = value * 10 + static_cast<uint64_t>(s_[pos_] - '0');
      ++pos_;
    }
    if (pos_ == start) return Error("expected number");
    *out = value;
    return Status::OK();
  }

  /// {"field": n, ...} with the exact field set, in order.
  Status Fields(
      std::initializer_list<std::pair<const char*, uint64_t*>> fields) {
    ERBIUM_RETURN_NOT_OK(Expect('{'));
    bool first = true;
    for (const auto& [name, slot] : fields) {
      if (!first) ERBIUM_RETURN_NOT_OK(Expect(','));
      first = false;
      ERBIUM_RETURN_NOT_OK(Key(name));
      ERBIUM_RETURN_NOT_OK(Uint(slot));
    }
    return Expect('}');
  }

  template <typename T, typename ParseValue>
  Status ParseMap(std::map<std::string, T>* out, ParseValue parse_value) {
    ERBIUM_RETURN_NOT_OK(Expect('{'));
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      std::string name;
      ERBIUM_RETURN_NOT_OK(String(&name));
      ERBIUM_RETURN_NOT_OK(Expect(':'));
      T value;
      ERBIUM_RETURN_NOT_OK(parse_value(&value));
      if (!out->emplace(std::move(name), std::move(value)).second) {
        return Error("duplicate key");
      }
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Expect('}');
    }
  }

  Status ParseShapes(std::vector<WorkloadSnapshot::Shape>* out) {
    ERBIUM_RETURN_NOT_OK(Expect('['));
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      WorkloadSnapshot::Shape shape;
      ERBIUM_RETURN_NOT_OK(Expect('{'));
      ERBIUM_RETURN_NOT_OK(Key("shape"));
      ERBIUM_RETURN_NOT_OK(String(&shape.shape));
      ERBIUM_RETURN_NOT_OK(Expect(','));
      ERBIUM_RETURN_NOT_OK(Key("sample"));
      ERBIUM_RETURN_NOT_OK(String(&shape.sample));
      ERBIUM_RETURN_NOT_OK(Expect(','));
      ERBIUM_RETURN_NOT_OK(Key("kind"));
      ERBIUM_RETURN_NOT_OK(String(&shape.kind));
      ERBIUM_RETURN_NOT_OK(Expect(','));
      ERBIUM_RETURN_NOT_OK(Key("count"));
      ERBIUM_RETURN_NOT_OK(Uint(&shape.count));
      ERBIUM_RETURN_NOT_OK(Expect(','));
      ERBIUM_RETURN_NOT_OK(Key("total_wall_ns"));
      ERBIUM_RETURN_NOT_OK(Uint(&shape.total_wall_ns));
      ERBIUM_RETURN_NOT_OK(Expect('}'));
      out->push_back(std::move(shape));
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

std::string NormalizeShape(const std::string& text) {
  Result<std::vector<Token>> tokens = Lexer::Tokenize(text);
  std::string out;
  if (!tokens.ok()) {
    // The parser may still reject this text, but the profiler should not
    // be the component that loses a statement — collapse whitespace and
    // keep it verbatim.
    bool in_space = true;
    for (char c : text) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!in_space) out += ' ';
        in_space = true;
      } else {
        out += c;
        in_space = false;
      }
    }
    while (!out.empty() && (out.back() == ' ' || out.back() == ';')) {
      out.pop_back();
    }
    return out;
  }
  for (const Token& token : *tokens) {
    if (token.kind == TokenKind::kEnd) break;
    std::string piece;
    switch (token.kind) {
      case TokenKind::kIdentifier:
        piece = token.text;
        std::transform(piece.begin(), piece.end(), piece.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        break;
      case TokenKind::kInteger:
      case TokenKind::kFloat:
      case TokenKind::kString:
        piece = "?";
        break;
      case TokenKind::kSymbol:
        piece = token.text;
        break;
      case TokenKind::kEnd:
        break;
    }
    if (!out.empty()) out += ' ';
    out += piece;
  }
  while (!out.empty() &&
         (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

std::string WorkloadSnapshot::ToJson() const {
  std::string out = "{\n";
  out += "  \"version\": 1,\n";
  out += "  \"statements\": " + std::to_string(statements) + ",\n";
  out += "  \"entities\": {";
  bool first_item = true;
  for (const auto& [name, e] : entities) {
    out += first_item ? "\n" : ",\n";
    first_item = false;
    out += "    \"" + JsonEscaped(name) + "\": {";
    bool first = true;
    AppendField(&out, "scans", e.scans, &first);
    AppendField(&out, "probes", e.probes, &first);
    AppendField(&out, "join_sides", e.join_sides, &first);
    AppendField(&out, "inserts", e.inserts, &first);
    AppendField(&out, "deletes", e.deletes, &first);
    AppendField(&out, "updates", e.updates, &first);
    out += "}";
  }
  out += entities.empty() ? "},\n" : "\n  },\n";
  out += "  \"relationships\": {";
  first_item = true;
  for (const auto& [name, r] : relationships) {
    out += first_item ? "\n" : ",\n";
    first_item = false;
    out += "    \"" + JsonEscaped(name) + "\": {";
    bool first = true;
    AppendField(&out, "joins", r.joins, &first);
    AppendField(&out, "fused_scans", r.fused_scans, &first);
    AppendField(&out, "inserts", r.inserts, &first);
    AppendField(&out, "deletes", r.deletes, &first);
    out += "}";
  }
  out += relationships.empty() ? "},\n" : "\n  },\n";
  out += "  \"attributes\": {";
  first_item = true;
  for (const auto& [name, a] : attributes) {
    out += first_item ? "\n" : ",\n";
    first_item = false;
    out += "    \"" + JsonEscaped(name) + "\": {";
    bool first = true;
    AppendField(&out, "predicates", a.predicates, &first);
    AppendField(&out, "projections", a.projections, &first);
    out += "}";
  }
  out += attributes.empty() ? "},\n" : "\n  },\n";
  out += "  \"shapes\": [";
  first_item = true;
  for (const Shape& shape : shapes) {
    out += first_item ? "\n" : ",\n";
    first_item = false;
    out += "    {\"shape\":\"" + JsonEscaped(shape.shape) + "\",\"sample\":\"" +
           JsonEscaped(shape.sample) + "\",\"kind\":\"" +
           JsonEscaped(shape.kind) + "\",\"count\":" +
           std::to_string(shape.count) + ",\"total_wall_ns\":" +
           std::to_string(shape.total_wall_ns) + "}";
  }
  out += shapes.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

WorkloadProfile& WorkloadProfile::Global() {
  static WorkloadProfile* profile = new WorkloadProfile();
  return *profile;
}

WorkloadProfile::WorkloadProfile(size_t shape_capacity,
                                 MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry : &MetricsRegistry::Global()),
      shape_capacity_(shape_capacity == 0 ? 1 : shape_capacity) {
  shapes_per_shard_ = (shape_capacity_ + kShards - 1) / kShards;
  if (shapes_per_shard_ == 0) shapes_per_shard_ = 1;
  c_statements_ = registry_->counter("workload.statements");
  g_shapes_ = registry_->gauge("workload.shapes");
}

WorkloadProfile::Shard& WorkloadProfile::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

WorkloadProfile::EntityState& WorkloadProfile::EntityStateLocked(
    Shard& shard, const std::string& name) {
  auto it = shard.entities.find(name);
  if (it == shard.entities.end()) {
    it = shard.entities.emplace(name, EntityState{}).first;
    const std::string base = "workload.entity." + name + ".";
    EntityState& state = it->second;
    state.c_scans = registry_->counter(base + "scans");
    state.c_probes = registry_->counter(base + "probes");
    state.c_join_sides = registry_->counter(base + "join_sides");
    state.c_inserts = registry_->counter(base + "inserts");
    state.c_deletes = registry_->counter(base + "deletes");
    state.c_updates = registry_->counter(base + "updates");
  }
  return it->second;
}

WorkloadProfile::RelationshipState& WorkloadProfile::RelationshipStateLocked(
    Shard& shard, const std::string& name) {
  auto it = shard.relationships.find(name);
  if (it == shard.relationships.end()) {
    it = shard.relationships.emplace(name, RelationshipState{}).first;
    const std::string base = "workload.relationship." + name + ".";
    RelationshipState& state = it->second;
    state.c_joins = registry_->counter(base + "joins");
    state.c_fused_scans = registry_->counter(base + "fused_scans");
    state.c_inserts = registry_->counter(base + "inserts");
    state.c_deletes = registry_->counter(base + "deletes");
  }
  return it->second;
}

WorkloadProfile::AttributeState& WorkloadProfile::AttributeStateLocked(
    Shard& shard, const std::string& key) {
  auto it = shard.attributes.find(key);
  if (it == shard.attributes.end()) {
    it = shard.attributes.emplace(key, AttributeState{}).first;
    const std::string base = "workload.attr." + key + ".";
    AttributeState& state = it->second;
    state.c_predicates = registry_->counter(base + "predicates");
    state.c_projections = registry_->counter(base + "projections");
  }
  return it->second;
}

void WorkloadProfile::RecordStatementImpl(const StatementFootprint* footprint,
                                          const std::string& kind,
                                          const std::string& text,
                                          uint64_t wall_ns) {
  if (!IsProfiledKind(kind)) return;
  statements_.fetch_add(1, std::memory_order_relaxed);
  c_statements_.Increment();
  if (footprint != nullptr) {
    for (const StatementFootprint::EntityTouch& touch : footprint->entities) {
      Shard& shard = ShardFor(touch.entity);
      std::lock_guard<std::mutex> lock(shard.mu);
      EntityState& state = EntityStateLocked(shard, touch.entity);
      switch (touch.path) {
        case EntityPath::kScan:
          ++state.counts.scans;
          state.c_scans.Increment();
          break;
        case EntityPath::kProbe:
          ++state.counts.probes;
          state.c_probes.Increment();
          break;
        case EntityPath::kJoinSide:
          ++state.counts.join_sides;
          state.c_join_sides.Increment();
          break;
      }
    }
    for (const StatementFootprint::RelationshipTouch& touch :
         footprint->relationships) {
      Shard& shard = ShardFor(touch.relationship);
      std::lock_guard<std::mutex> lock(shard.mu);
      RelationshipState& state =
          RelationshipStateLocked(shard, touch.relationship);
      if (touch.fused) {
        ++state.counts.fused_scans;
        state.c_fused_scans.Increment();
      } else {
        ++state.counts.joins;
        state.c_joins.Increment();
      }
    }
    for (const StatementFootprint::AttributeTouch& touch :
         footprint->attributes) {
      const std::string key = touch.entity + "." + touch.attribute;
      Shard& shard = ShardFor(key);
      std::lock_guard<std::mutex> lock(shard.mu);
      AttributeState& state = AttributeStateLocked(shard, key);
      if (touch.predicate) {
        ++state.counts.predicates;
        state.c_predicates.Increment();
      } else {
        ++state.counts.projections;
        state.c_projections.Increment();
      }
    }
  }
  // The footprint carries the shape computed at translate time; fall back
  // to normalizing here for statements recorded without a compiled plan.
  const std::string& shape = (footprint != nullptr && !footprint->shape.empty())
                                 ? footprint->shape
                                 : NormalizeShape(text);
  RecordShape(shape, kind, text, wall_ns, 1);
}

void WorkloadProfile::RecordShape(const std::string& shape,
                                  const std::string& kind,
                                  const std::string& sample, uint64_t wall_ns,
                                  uint64_t count) {
  if (shape.empty()) return;
  Shard& shard = ShardFor(shape);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.shapes.find(shape);
  if (it == shard.shapes.end()) {
    if (shard.shapes.size() >= shapes_per_shard_) {
      // Admission-controlled eviction: a newcomer displaces the lightest
      // resident (least accumulated wall time) only by arriving heavier
      // than it, so the heavy hitters the advisor cares about always
      // survive a stream of one-off light shapes.
      auto lightest = shard.shapes.begin();
      for (auto cur = shard.shapes.begin(); cur != shard.shapes.end(); ++cur) {
        if (cur->second.total_wall_ns < lightest->second.total_wall_ns) {
          lightest = cur;
        }
      }
      if (lightest->second.total_wall_ns >= wall_ns) return;
      shard.shapes.erase(lightest);
      g_shapes_.Add(-1);
    }
    it = shard.shapes.emplace(shape, ShapeState{}).first;
    it->second.sample = sample;
    it->second.kind = kind;
    g_shapes_.Add(1);
  }
  it->second.count += count;
  it->second.total_wall_ns += wall_ns;
}

void WorkloadProfile::RecordEntityCrudImpl(const std::string& entity,
                                           CrudKind kind) {
  Shard& shard = ShardFor(entity);
  std::lock_guard<std::mutex> lock(shard.mu);
  EntityState& state = EntityStateLocked(shard, entity);
  switch (kind) {
    case CrudKind::kInsert:
      ++state.counts.inserts;
      state.c_inserts.Increment();
      break;
    case CrudKind::kDelete:
      ++state.counts.deletes;
      state.c_deletes.Increment();
      break;
    case CrudKind::kUpdate:
      ++state.counts.updates;
      state.c_updates.Increment();
      break;
  }
}

void WorkloadProfile::RecordRelationshipCrudImpl(
    const std::string& relationship, CrudKind kind) {
  Shard& shard = ShardFor(relationship);
  std::lock_guard<std::mutex> lock(shard.mu);
  RelationshipState& state = RelationshipStateLocked(shard, relationship);
  switch (kind) {
    case CrudKind::kInsert:
      ++state.counts.inserts;
      state.c_inserts.Increment();
      break;
    case CrudKind::kDelete:
    case CrudKind::kUpdate:  // relationships have no attribute updates
      ++state.counts.deletes;
      state.c_deletes.Increment();
      break;
  }
}

WorkloadSnapshot WorkloadProfile::Snapshot() const {
  WorkloadSnapshot snapshot;
  snapshot.statements = statements_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, state] : shard.entities) {
      snapshot.entities.emplace(name, state.counts);
    }
    for (const auto& [name, state] : shard.relationships) {
      snapshot.relationships.emplace(name, state.counts);
    }
    for (const auto& [name, state] : shard.attributes) {
      snapshot.attributes.emplace(name, state.counts);
    }
    for (const auto& [shape, state] : shard.shapes) {
      WorkloadSnapshot::Shape out;
      out.shape = shape;
      out.sample = state.sample;
      out.kind = state.kind;
      out.count = state.count;
      out.total_wall_ns = state.total_wall_ns;
      snapshot.shapes.push_back(std::move(out));
    }
  }
  std::sort(snapshot.shapes.begin(), snapshot.shapes.end(),
            [](const WorkloadSnapshot::Shape& a,
               const WorkloadSnapshot::Shape& b) {
              if (a.total_wall_ns != b.total_wall_ns) {
                return a.total_wall_ns > b.total_wall_ns;
              }
              return a.shape < b.shape;
            });
  return snapshot;
}

void WorkloadProfile::Clear() {
  statements_.store(0, std::memory_order_relaxed);
  int64_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    dropped += static_cast<int64_t>(shard.shapes.size());
    shard.entities.clear();
    shard.relationships.clear();
    shard.attributes.clear();
    shard.shapes.clear();
  }
  g_shapes_.Add(-dropped);
}

Status WorkloadProfile::LoadJson(const std::string& json) {
  WorkloadSnapshot snapshot;
  ERBIUM_RETURN_NOT_OK(SnapshotParser(json).Parse(&snapshot));
  if (snapshot.shapes.size() > shape_capacity_) {
    return Status::InvalidArgument(
        "workload snapshot holds " + std::to_string(snapshot.shapes.size()) +
        " shapes, more than this profile's capacity of " +
        std::to_string(shape_capacity_));
  }
  Clear();
  statements_.store(snapshot.statements, std::memory_order_relaxed);
  // Restore counts without disturbing the Prometheus mirror: the mirror
  // counters are monotonic capture-side totals, a restored snapshot is
  // logical profile state.
  for (const auto& [name, counts] : snapshot.entities) {
    Shard& shard = ShardFor(name);
    std::lock_guard<std::mutex> lock(shard.mu);
    EntityStateLocked(shard, name).counts = counts;
  }
  for (const auto& [name, counts] : snapshot.relationships) {
    Shard& shard = ShardFor(name);
    std::lock_guard<std::mutex> lock(shard.mu);
    RelationshipStateLocked(shard, name).counts = counts;
  }
  for (const auto& [name, counts] : snapshot.attributes) {
    Shard& shard = ShardFor(name);
    std::lock_guard<std::mutex> lock(shard.mu);
    AttributeStateLocked(shard, name).counts = counts;
  }
  int64_t added = 0;
  for (const WorkloadSnapshot::Shape& shape : snapshot.shapes) {
    Shard& shard = ShardFor(shape.shape);
    std::lock_guard<std::mutex> lock(shard.mu);
    ShapeState& state = shard.shapes[shape.shape];
    state.sample = shape.sample;
    state.kind = shape.kind;
    state.count = shape.count;
    state.total_wall_ns = shape.total_wall_ns;
    ++added;
  }
  g_shapes_.Add(added);
  return Status::OK();
}

}  // namespace obs
}  // namespace erbium
