#ifndef ERBIUM_MAPPING_PHYSICAL_MAPPING_H_
#define ERBIUM_MAPPING_PHYSICAL_MAPPING_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "er/er_graph.h"
#include "er/er_schema.h"
#include "mapping/mapping_spec.h"
#include "storage/schema.h"

namespace erbium {

/// Where an entity class's *own segment* (its full key + the attributes
/// declared on that class) physically lives.
enum class SegmentLocation {
  kOwnTable,          // a table named after the class
  kHierarchySingle,   // the hierarchy root's single table (discriminator)
  kHierarchyDisjoint, // spread over the self+descendant full-width tables
  kFoldedInOwner,     // array-of-struct column on the owner's table (weak)
  kPairLeft,          // left side of a factorized pair
  kPairRight,         // right side of a factorized pair
  kMaterializedLeft,  // left half of a materialized join table
  kMaterializedRight, // right half of a materialized join table
};

/// A mapping compiled against a concrete schema: the physical table
/// schemas, factorized pair definitions, index definitions, resolution
/// helpers used by the runtime, and the induced cover of the E/R graph
/// (paper Figure 2). Compile() also validates the spec against the
/// schema (e.g. single-table hierarchies require disjoint
/// specializations; factorized sides must be leaf classes).
class PhysicalMapping {
 public:
  /// Discriminator column used by single-table hierarchies; holds the
  /// instance's most-specific class name.
  static constexpr const char* kTypeColumn = "_type";

  struct PairDef {
    std::string name;          // "<rel>_pair"
    std::string relationship;
    std::vector<Column> left_columns;
    std::vector<int> left_key;   // positions of the left full key
    std::vector<Column> right_columns;
    std::vector<int> right_key;
  };

  struct IndexDef {
    std::string table;
    std::string index_name;
    std::vector<std::string> columns;
    bool unique;
  };

  static Result<PhysicalMapping> Compile(const ERSchema* schema,
                                         MappingSpec spec);

  const ERSchema& schema() const { return *schema_; }
  const MappingSpec& spec() const { return spec_; }

  const std::vector<TableSchema>& tables() const { return tables_; }
  const std::vector<PairDef>& pairs() const { return pairs_; }
  const std::vector<IndexDef>& indexes() const { return indexes_; }

  // ---- Naming conventions ---------------------------------------------------

  /// Side table for a separately-stored multi-valued attribute.
  static std::string MvTableName(const std::string& entity,
                                 const std::string& attr) {
    return entity + "_" + attr;
  }
  /// Join table of a kJoinTable relationship is named after it; a
  /// materialized join table appends "_joined"; a pair appends "_pair".
  static std::string MaterializedTableName(const std::string& rel) {
    return rel + "_joined";
  }
  static std::string PairName(const std::string& rel) { return rel + "_pair"; }
  /// FK column for one key attribute of the one side.
  static std::string FkColumnName(const std::string& rel,
                                  const std::string& key_attr) {
    return rel + "_" + key_attr;
  }
  /// Role-prefixed key column in join/materialized tables.
  static std::string RoleColumnName(const std::string& role,
                                    const std::string& attr) {
    return role + "_" + attr;
  }

  // ---- Resolution helpers ---------------------------------------------------

  /// Location of a class's own segment under this mapping.
  SegmentLocation segment_location(const std::string& class_name) const;

  /// Name of the table holding the class's own segment. Meaningful for
  /// kOwnTable (the class name), kHierarchySingle (the root name), and
  /// kMaterialized* (the joined table); empty otherwise.
  std::string SegmentTableName(const std::string& class_name) const;

  /// For kPairLeft/kPairRight: the pair name.
  std::string SegmentPairName(const std::string& class_name) const;

  /// The relationship that swallowed this class's segment (factorized or
  /// materialized); empty if none.
  std::string SwallowingRelationship(const std::string& class_name) const;

  /// Physical key columns of a class: names are the key attribute names,
  /// types their scalar types. For weak entities the owner key comes
  /// first (recursively expanded).
  Result<std::vector<Column>> KeyColumns(const std::string& class_name) const;

  /// The columns of a class's own segment: full key followed by own
  /// single-valued attributes (composites as structs) and own
  /// multi-valued attributes chosen as arrays. Excludes FK columns.
  Result<std::vector<Column>> OwnSegmentColumns(
      const std::string& class_name) const;

  /// All FK column names that live on a given class's own-attribute
  /// location because of kForeignKey relationships where the class (or an
  /// ancestor, for disjoint tables) is the many side. Pairs of
  /// (relationship name, columns).
  struct FkPlacement {
    std::string relationship;
    std::vector<Column> columns;  // one per key attr of the one side
  };
  Result<std::vector<FkPlacement>> FkPlacements(
      const std::string& class_name) const;

  /// The struct type used when folding a weak entity into its owner:
  /// partial key fields + own attributes (multi-valued as arrays).
  Result<TypePtr> FoldedStructType(const std::string& weak_entity) const;

  // ---- Cover of the E/R graph (Figure 2) -------------------------------------

  /// Node-id sets, one per physical structure, in table/pair order.
  Result<std::vector<std::set<int>>> Cover(const ERGraph& graph) const;

  /// Checks the paper's structural requirements on a cover: every
  /// subgraph connected, every node covered.
  static Status ValidateCover(const ERGraph& graph,
                              const std::vector<std::set<int>>& cover);

  /// Physical type of an attribute: struct for composites, wrapped in
  /// array when stored multi-valued.
  static TypePtr PhysicalAttrType(const AttributeDef& attr, bool as_array);

 private:
  PhysicalMapping(const ERSchema* schema, MappingSpec spec)
      : schema_(schema), spec_(std::move(spec)) {}

  Status Validate() const;
  Status BuildTables();

  const ERSchema* schema_;
  MappingSpec spec_;
  std::vector<TableSchema> tables_;
  std::vector<PairDef> pairs_;
  std::vector<IndexDef> indexes_;
};

}  // namespace erbium

#endif  // ERBIUM_MAPPING_PHYSICAL_MAPPING_H_
