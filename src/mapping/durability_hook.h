#ifndef ERBIUM_MAPPING_DURABILITY_HOOK_H_
#define ERBIUM_MAPPING_DURABILITY_HOOK_H_

#include <string>

#include "common/status.h"
#include "common/value.h"
#include "storage/index.h"

namespace erbium {

/// Write-ahead-log sink for the logical CRUD choke points of a
/// MappedDatabase. The durability subsystem (src/durability) implements
/// this; keeping the interface here lets the mapping layer log every
/// applied mutation without depending on the durability library (which
/// itself depends on mapping for snapshot/recovery).
///
/// Contract: a Log* method is called exactly once per *successfully
/// applied* logical operation, after the in-memory apply and before the
/// operation is acknowledged to the caller. A non-OK return is
/// propagated to the caller as the operation's result — the in-memory
/// state holds the change, but the write was never acknowledged and is
/// not guaranteed to survive recovery (this is how simulated crashes
/// surface mid-operation).
class DurabilityHook {
 public:
  virtual ~DurabilityHook() = default;

  virtual Status LogInsertEntity(const std::string& class_name,
                                 const Value& entity) = 0;
  virtual Status LogDeleteEntity(const std::string& class_name,
                                 const IndexKey& key) = 0;
  virtual Status LogUpdateAttribute(const std::string& class_name,
                                    const IndexKey& key,
                                    const std::string& attr,
                                    const Value& value) = 0;
  virtual Status LogInsertRelationship(const std::string& rel_name,
                                       const IndexKey& left_key,
                                       const IndexKey& right_key,
                                       const Value& attrs) = 0;
  virtual Status LogDeleteRelationship(const std::string& rel_name,
                                       const IndexKey& left_key,
                                       const IndexKey& right_key) = 0;

  /// CHECKPOINT statement support (wired through the query engine):
  /// snapshot the database and truncate the log. Returns a one-line
  /// human-readable summary on success.
  virtual Result<std::string> Checkpoint() = 0;
};

}  // namespace erbium

#endif  // ERBIUM_MAPPING_DURABILITY_HOOK_H_
