#include "mapping/database.h"

#include <algorithm>

#include "common/union_find.h"
#include "obs/metrics.h"

namespace erbium {

namespace {

/// Value of a named column in a table row; Internal error if absent.
Result<Value> ColumnValue(const Table& table, const Row& row,
                          const std::string& column) {
  int idx = table.schema().ColumnIndex(column);
  if (idx < 0) {
    return Status::Internal("table " + table.name() + " has no column " +
                            column);
  }
  return row[idx];
}

/// Builds a row for a table by asking `provider` for each column value.
template <typename Provider>
Result<Row> BuildRow(const TableSchema& schema, Provider&& provider) {
  Row row;
  row.reserve(schema.num_columns());
  for (const Column& col : schema.columns()) {
    ERBIUM_ASSIGN_OR_RETURN(Value v, provider(col));
    row.push_back(std::move(v));
  }
  return row;
}

}  // namespace

Status MappedDatabase::Counted(Status s, const char* counter_name) {
  if (s.ok()) {
    obs::MetricsRegistry::Global().counter(counter_name).Increment();
  }
  return s;
}

// ---- logical CRUD choke points -------------------------------------------------
//
// Each public mutation applies in memory first, then bumps its crud.*
// counter and reports the operation to the durability hook (when one is
// attached) *before* acknowledging the caller. A hook failure — real I/O
// trouble or an injected crash — is returned to the caller: the write was
// applied in memory but never acknowledged, so recovery is free to drop
// it.

Status MappedDatabase::InsertEntity(const std::string& class_name,
                                    const Value& entity) {
  std::lock_guard<std::recursive_mutex> domain(LockDomain(class_name));
  Status s = Counted(InsertEntityImpl(class_name, entity),
                     "crud.entity_inserts");
  if (s.ok() && durability_ != nullptr) {
    return durability_->LogInsertEntity(class_name, entity);
  }
  return s;
}

Status MappedDatabase::DeleteEntity(const std::string& class_name,
                                    const IndexKey& key) {
  std::lock_guard<std::recursive_mutex> domain(LockDomain(class_name));
  Status s = Counted(DeleteEntityImpl(class_name, key), "crud.entity_deletes");
  if (s.ok() && durability_ != nullptr) {
    return durability_->LogDeleteEntity(class_name, key);
  }
  return s;
}

Status MappedDatabase::UpdateAttribute(const std::string& class_name,
                                       const IndexKey& key,
                                       const std::string& attr,
                                       const Value& value) {
  std::lock_guard<std::recursive_mutex> domain(LockDomain(class_name));
  Status s = Counted(UpdateAttributeImpl(class_name, key, attr, value),
                     "crud.attribute_updates");
  if (s.ok() && durability_ != nullptr) {
    return durability_->LogUpdateAttribute(class_name, key, attr, value);
  }
  return s;
}

Status MappedDatabase::InsertRelationship(const std::string& rel_name,
                                          const IndexKey& left_key,
                                          const IndexKey& right_key,
                                          const Value& attrs) {
  std::lock_guard<std::recursive_mutex> domain(LockDomain(rel_name));
  Status s = Counted(InsertRelationshipImpl(rel_name, left_key, right_key,
                                            attrs),
                     "crud.relationship_inserts");
  if (s.ok() && durability_ != nullptr) {
    return durability_->LogInsertRelationship(rel_name, left_key, right_key,
                                              attrs);
  }
  return s;
}

Status MappedDatabase::DeleteRelationship(const std::string& rel_name,
                                          const IndexKey& left_key,
                                          const IndexKey& right_key) {
  std::lock_guard<std::recursive_mutex> domain(LockDomain(rel_name));
  Status s = Counted(DeleteRelationshipImpl(rel_name, left_key, right_key),
                     "crud.relationship_deletes");
  if (s.ok() && durability_ != nullptr) {
    return durability_->LogDeleteRelationship(rel_name, left_key, right_key);
  }
  return s;
}

Result<std::unique_ptr<MappedDatabase>> MappedDatabase::Create(
    const ERSchema* schema, MappingSpec spec) {
  ERBIUM_ASSIGN_OR_RETURN(PhysicalMapping mapping,
                          PhysicalMapping::Compile(schema, std::move(spec)));
  std::unique_ptr<MappedDatabase> db(new MappedDatabase(std::move(mapping)));
  ERBIUM_RETURN_NOT_OK(db->Initialize());
  return db;
}

Status MappedDatabase::Initialize() {
  for (const TableSchema& schema : mapping_.tables()) {
    ERBIUM_RETURN_NOT_OK(catalog_.CreateTable(schema).status());
  }
  for (const PhysicalMapping::IndexDef& index : mapping_.indexes()) {
    Table* table = catalog_.GetTable(index.table);
    if (table == nullptr) {
      return Status::Internal("index on missing table " + index.table);
    }
    ERBIUM_RETURN_NOT_OK(table->CreateIndex(index.index_name, index.columns,
                                            index.unique));
  }
  for (const PhysicalMapping::PairDef& def : mapping_.pairs()) {
    pairs_.emplace(def.name, std::make_unique<FactorizedPair>(
                                 def.name, def.left_columns, def.left_key,
                                 def.right_columns, def.right_key));
  }
  // The chosen mapping is persisted inside the database itself as a JSON
  // object, mirroring the paper's prototype ("maintained in a table in
  // the database ... read into memory at initialization time").
  ERBIUM_ASSIGN_OR_RETURN(
      Table * mapping_catalog,
      catalog_.CreateTable(TableSchema(
          kMappingCatalogTable,
          {Column{"name", Type::String(), false},
           Column{"spec_json", Type::String(), false}},
          {0})));
  ERBIUM_RETURN_NOT_OK(
      mapping_catalog
          ->Insert({Value::String(mapping_.spec().name),
                    Value::String(mapping_.spec().ToJson())})
          .status());
  BuildLockDomains();
  return Status::OK();
}

void MappedDatabase::BuildLockDomains() {
  UnionFind components;
  for (const std::string& name : schema().EntitySetNames()) {
    const EntitySetDef* def = schema().FindEntitySet(name);
    components.Find(name);
    if (!def->parent.empty()) components.Unite(name, def->parent);
    if (def->weak && !def->owner.empty()) components.Unite(name, def->owner);
  }
  for (const std::string& name : schema().RelationshipSetNames()) {
    const RelationshipSetDef* def = schema().FindRelationshipSet(name);
    components.Unite(name, def->left.entity);
    components.Unite(name, def->right.entity);
  }

  std::unordered_map<std::string, std::shared_ptr<std::recursive_mutex>>
      by_root;
  lock_domains_.clear();
  for (const std::string& name : components.Names()) {
    std::shared_ptr<std::recursive_mutex>& mu =
        by_root[components.Find(name)];
    if (mu == nullptr) mu = std::make_shared<std::recursive_mutex>();
    lock_domains_.emplace(name, mu);
  }
}

std::recursive_mutex& MappedDatabase::LockDomain(
    const std::string& construct) {
  auto it = lock_domains_.find(construct);
  return it == lock_domains_.end() ? *fallback_domain_ : *it->second;
}

Result<MappingSpec> MappedDatabase::LoadPersistedSpec() const {
  const Table* table = catalog_.GetTable(kMappingCatalogTable);
  if (table == nullptr || table->size() == 0) {
    return Status::NotFound("mapping catalog table missing or empty");
  }
  for (RowId id = 0; id < table->slot_count(); ++id) {
    if (!table->IsLive(id)) continue;
    return MappingSpec::FromJson(table->row(id)[1].as_string());
  }
  return Status::NotFound("mapping catalog table has no live rows");
}

FactorizedPair* MappedDatabase::pair(const std::string& name) {
  auto it = pairs_.find(name);
  return it == pairs_.end() ? nullptr : it->second.get();
}

const FactorizedPair* MappedDatabase::pair(const std::string& name) const {
  auto it = pairs_.find(name);
  return it == pairs_.end() ? nullptr : it->second.get();
}

size_t MappedDatabase::ApproximateDataBytes() const {
  size_t total = catalog_.ApproximateDataBytes();
  for (const auto& [name, pair] : pairs_) {
    total += pair->ApproximateDataBytes();
  }
  return total;
}

// ---- small helpers -----------------------------------------------------------

Result<const AttributeDef*> MappedDatabase::FindVisibleAttribute(
    const std::string& class_name, const std::string& attr) const {
  ERBIUM_ASSIGN_OR_RETURN(std::vector<AttributeDef> attrs,
                          schema().AllAttributes(class_name));
  for (const AttributeDef& a : attrs) {
    if (a.name == attr) {
      // Return a pointer into the schema's stable storage.
      ERBIUM_ASSIGN_OR_RETURN(std::string declaring,
                              DeclaringClass(class_name, attr));
      return FindAttribute(schema().FindEntitySet(declaring)->attributes,
                           attr);
    }
  }
  return Status::AnalysisError("entity set " + class_name +
                               " has no attribute " + attr);
}

Result<std::string> MappedDatabase::DeclaringClass(
    const std::string& class_name, const std::string& attr) const {
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> chain,
                          schema().AncestryChain(class_name));
  for (const std::string& cls : chain) {
    if (FindAttribute(schema().FindEntitySet(cls)->attributes, attr) !=
        nullptr) {
      return cls;
    }
  }
  return Status::AnalysisError("entity set " + class_name +
                               " has no attribute " + attr);
}

Result<std::vector<std::string>> MappedDatabase::KeyColumnNames(
    const std::string& class_name) const {
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> cols,
                          mapping_.KeyColumns(class_name));
  std::vector<std::string> names;
  names.reserve(cols.size());
  for (const Column& c : cols) names.push_back(c.name);
  return names;
}

Result<IndexKey> MappedDatabase::ExtractFullKey(const std::string& class_name,
                                                const Value& entity) const {
  if (entity.kind() != TypeKind::kStruct) {
    return Status::InvalidArgument("entity value must be a struct");
  }
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> names,
                          KeyColumnNames(class_name));
  IndexKey key;
  for (const std::string& name : names) {
    const Value* v = entity.FindField(name);
    if (v == nullptr || v->is_null()) {
      return Status::ConstraintViolation("missing key attribute " + name +
                                         " for entity set " + class_name);
    }
    key.push_back(*v);
  }
  return key;
}

Result<std::vector<int>> MappedDatabase::ColumnPositions(
    const Table& table, const std::vector<std::string>& names) const {
  std::vector<int> out;
  for (const std::string& name : names) {
    int idx = table.schema().ColumnIndex(name);
    if (idx < 0) {
      return Status::Internal("table " + table.name() + " has no column " +
                              name);
    }
    out.push_back(idx);
  }
  return out;
}

Result<MappedDatabase::SegmentRef> MappedDatabase::FindSegmentRow(
    const std::string& class_name, const IndexKey& key) {
  SegmentLocation loc = mapping_.segment_location(class_name);
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                          KeyColumnNames(class_name));
  auto lookup = [&](const std::string& table_name,
                    const std::vector<std::string>& cols)
      -> Result<SegmentRef> {
    Table* table = catalog_.GetTable(table_name);
    if (table == nullptr) {
      return Status::Internal("missing table " + table_name);
    }
    ERBIUM_ASSIGN_OR_RETURN(std::vector<int> positions,
                            ColumnPositions(*table, cols));
    std::vector<RowId> ids;
    table->LookupEqual(positions, key, &ids);
    if (ids.empty()) {
      return Status::NotFound("no " + class_name + " instance with given key");
    }
    return SegmentRef{table, ids.front()};
  };
  switch (loc) {
    case SegmentLocation::kOwnTable:
      return lookup(class_name, key_names);
    case SegmentLocation::kHierarchySingle:
      return lookup(mapping_.SegmentTableName(class_name), key_names);
    case SegmentLocation::kHierarchyDisjoint: {
      for (const std::string& cls : schema().SelfAndDescendants(class_name)) {
        Result<SegmentRef> ref = lookup(cls, key_names);
        if (ref.ok()) return ref;
      }
      return Status::NotFound("no " + class_name +
                              " instance with given key");
    }
    case SegmentLocation::kMaterializedLeft:
    case SegmentLocation::kMaterializedRight: {
      std::string rel_name = mapping_.SwallowingRelationship(class_name);
      const RelationshipSetDef* rel = schema().FindRelationshipSet(rel_name);
      const std::string& role = loc == SegmentLocation::kMaterializedLeft
                                    ? rel->left.role
                                    : rel->right.role;
      std::vector<std::string> cols;
      for (const std::string& name : key_names) {
        cols.push_back(PhysicalMapping::RoleColumnName(role, name));
      }
      return lookup(PhysicalMapping::MaterializedTableName(rel_name), cols);
    }
    default:
      return Status::Internal(
          "FindSegmentRow does not apply to the storage of " + class_name);
  }
}

// ---- membership --------------------------------------------------------------

Result<bool> MappedDatabase::EntityExists(const std::string& class_name,
                                          const IndexKey& key) {
  const EntitySetDef* def = schema().FindEntitySet(class_name);
  if (def == nullptr) {
    return Status::NotFound("no entity set named " + class_name);
  }
  SegmentLocation loc = mapping_.segment_location(class_name);
  if (loc == SegmentLocation::kPairLeft || loc == SegmentLocation::kPairRight) {
    FactorizedPair* p = pair(mapping_.SegmentPairName(class_name));
    return loc == SegmentLocation::kPairLeft ? p->FindLeft(key) >= 0
                                             : p->FindRight(key) >= 0;
  }
  if (loc == SegmentLocation::kFoldedInOwner) {
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> owner_cols,
                            mapping_.KeyColumns(def->owner));
    IndexKey owner_key(key.begin(), key.begin() + owner_cols.size());
    Result<SegmentRef> owner = FindSegmentRow(def->owner, owner_key);
    if (!owner.ok()) return false;
    ERBIUM_ASSIGN_OR_RETURN(
        Value folded,
        ColumnValue(*owner->table, owner->table->row(owner->row), class_name));
    if (folded.kind() != TypeKind::kArray) return false;
    for (const Value& element : folded.array()) {
      bool match = true;
      for (size_t i = 0; i < def->partial_key.size(); ++i) {
        const Value* field = element.FindField(def->partial_key[i]);
        if (field == nullptr ||
            *field != key[owner_cols.size() + i]) {
          match = false;
          break;
        }
      }
      if (match) return true;
    }
    return false;
  }
  if (loc == SegmentLocation::kHierarchySingle) {
    Result<SegmentRef> ref = FindSegmentRow(class_name, key);
    if (!ref.ok()) return false;
    ERBIUM_ASSIGN_OR_RETURN(
        Value type_value,
        ColumnValue(*ref->table, ref->table->row(ref->row),
                    PhysicalMapping::kTypeColumn));
    if (type_value.kind() != TypeKind::kString) return false;
    for (const std::string& cls : schema().SelfAndDescendants(class_name)) {
      if (type_value.as_string() == cls) return true;
    }
    return false;
  }
  Result<SegmentRef> ref = FindSegmentRow(class_name, key);
  return ref.ok();
}

Result<std::string> MappedDatabase::SpecificClassOf(
    const std::string& class_name, const IndexKey& key) {
  ERBIUM_ASSIGN_OR_RETURN(bool exists, EntityExists(class_name, key));
  if (!exists) {
    return Status::NotFound("no " + class_name + " instance with given key");
  }
  const EntitySetDef* def = schema().FindEntitySet(class_name);
  if (def->weak) return class_name;
  SegmentLocation loc = mapping_.segment_location(class_name);
  if (loc == SegmentLocation::kHierarchySingle) {
    ERBIUM_ASSIGN_OR_RETURN(SegmentRef ref, FindSegmentRow(class_name, key));
    ERBIUM_ASSIGN_OR_RETURN(
        Value type_value,
        ColumnValue(*ref.table, ref.table->row(ref.row),
                    PhysicalMapping::kTypeColumn));
    return type_value.as_string();
  }
  // Class-table / disjoint / pair-backed: walk down while a subclass holds
  // the key. (With overlapping specializations the first-found deepest
  // class is returned.)
  std::string current = class_name;
  while (true) {
    bool descended = false;
    for (const std::string& child : schema().DirectSubclasses(current)) {
      ERBIUM_ASSIGN_OR_RETURN(bool in_child, EntityExists(child, key));
      if (in_child) {
        current = child;
        descended = true;
        break;
      }
    }
    if (!descended) return current;
  }
}

// ---- insert -------------------------------------------------------------------

Status MappedDatabase::InsertEntityImpl(const std::string& class_name,
                                    const Value& entity) {
  const EntitySetDef* def = schema().FindEntitySet(class_name);
  if (def == nullptr) {
    return Status::NotFound("no entity set named " + class_name);
  }
  ERBIUM_ASSIGN_OR_RETURN(IndexKey key, ExtractFullKey(class_name, entity));
  // Uniqueness across the whole hierarchy.
  std::string uniqueness_scope = class_name;
  if (!def->weak) {
    ERBIUM_ASSIGN_OR_RETURN(uniqueness_scope,
                            schema().HierarchyRoot(class_name));
  }
  ERBIUM_ASSIGN_OR_RETURN(bool exists, EntityExists(uniqueness_scope, key));
  if (exists) {
    return Status::AlreadyExists("an instance of " + uniqueness_scope +
                                 " with this key already exists");
  }
  // Weak entities require their owner (referential integrity of the
  // identifying relationship).
  if (def->weak) {
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> owner_cols,
                            mapping_.KeyColumns(def->owner));
    IndexKey owner_key(key.begin(), key.begin() + owner_cols.size());
    ERBIUM_ASSIGN_OR_RETURN(bool owner_exists,
                            EntityExists(def->owner, owner_key));
    if (!owner_exists) {
      return Status::ConstraintViolation("owner instance of weak entity " +
                                         class_name + " does not exist");
    }
  }
  ERBIUM_RETURN_NOT_OK(InsertSegments(class_name, entity, key));
  return InsertMultiValued(class_name, entity, key);
}

Status MappedDatabase::InsertSegments(const std::string& class_name,
                                      const Value& entity,
                                      const IndexKey& key) {
  const EntitySetDef* def = schema().FindEntitySet(class_name);
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                          KeyColumnNames(class_name));

  // Provides a value for one physical column of a segment table.
  auto provider = [&](const Column& col) -> Result<Value> {
    for (size_t i = 0; i < key_names.size(); ++i) {
      if (col.name == key_names[i]) return key[i];
    }
    if (col.name == PhysicalMapping::kTypeColumn) {
      return Value::String(class_name);
    }
    const Value* field = entity.FindField(col.name);
    if (field != nullptr && !field->is_null()) return *field;
    // Missing multi-valued array -> empty array; folded weak column ->
    // empty array; anything else -> null.
    if (col.type != nullptr && col.type->kind() == TypeKind::kArray) {
      return Value::Array({});
    }
    return Value::Null();
  };

  // For strong classes under class-table storage, every class on the
  // ancestry chain contributes its own segment (the leaf may live in a
  // pair or materialized table); single-table and disjoint storage write
  // exactly one row. Weak entities are a single segment.
  SegmentLocation loc = mapping_.segment_location(class_name);
  if (!def->weak && loc != SegmentLocation::kHierarchySingle &&
      loc != SegmentLocation::kHierarchyDisjoint) {
    ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> chain,
                            schema().AncestryChain(class_name));
    if (chain.size() > 1) {
      // Insert ancestor segments first (they are never swallowed), then
      // fall through to the leaf's own segment below.
      for (size_t i = 0; i + 1 < chain.size(); ++i) {
        Table* table = catalog_.GetTable(chain[i]);
        if (table == nullptr) {
          return Status::Internal("missing segment table " + chain[i]);
        }
        ERBIUM_ASSIGN_OR_RETURN(Row row, BuildRow(table->schema(), provider));
        ERBIUM_RETURN_NOT_OK(table->Insert(std::move(row)).status());
      }
    }
  }
  switch (loc) {
    case SegmentLocation::kFoldedInOwner: {
      // Append a struct to the owner's folded array column.
      ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> owner_cols,
                              mapping_.KeyColumns(def->owner));
      IndexKey owner_key(key.begin(), key.begin() + owner_cols.size());
      ERBIUM_ASSIGN_OR_RETURN(SegmentRef owner,
                              FindSegmentRow(def->owner, owner_key));
      int col = owner.table->schema().ColumnIndex(class_name);
      Row row = owner.table->row(owner.row);
      Value::ArrayData elements;
      if (row[col].kind() == TypeKind::kArray) elements = row[col].array();
      Value::StructData fields;
      for (const AttributeDef& attr : def->attributes) {
        const Value* v = entity.FindField(attr.name);
        Value field_value = v == nullptr ? Value::Null() : *v;
        if (attr.multi_valued && field_value.is_null()) {
          field_value = Value::Array({});
        }
        fields.emplace_back(attr.name, std::move(field_value));
      }
      elements.push_back(Value::Struct(std::move(fields)));
      row[col] = Value::Array(std::move(elements));
      return owner.table->Update(owner.row, std::move(row));
    }
    case SegmentLocation::kPairLeft:
    case SegmentLocation::kPairRight: {
      FactorizedPair* p = pair(mapping_.SegmentPairName(class_name));
      const std::vector<Column>& cols = loc == SegmentLocation::kPairLeft
                                            ? p->left_columns()
                                            : p->right_columns();
      Row row;
      for (const Column& col : cols) {
        ERBIUM_ASSIGN_OR_RETURN(Value v, provider(col));
        row.push_back(std::move(v));
      }
      if (loc == SegmentLocation::kPairLeft) {
        return p->InsertLeft(std::move(row)).status();
      }
      return p->InsertRight(std::move(row)).status();
    }
    case SegmentLocation::kMaterializedLeft:
    case SegmentLocation::kMaterializedRight: {
      // A lone row: this side's columns set, the other side null.
      std::string rel_name = mapping_.SwallowingRelationship(class_name);
      const RelationshipSetDef* rel = schema().FindRelationshipSet(rel_name);
      const std::string& role = loc == SegmentLocation::kMaterializedLeft
                                    ? rel->left.role
                                    : rel->right.role;
      Table* table = catalog_.GetTable(
          PhysicalMapping::MaterializedTableName(rel_name));
      std::string prefix = role + "_";
      ERBIUM_ASSIGN_OR_RETURN(
          Row row, BuildRow(table->schema(),
                            [&](const Column& col) -> Result<Value> {
                              if (col.name.rfind(prefix, 0) == 0) {
                                Column unprefixed = col;
                                unprefixed.name =
                                    col.name.substr(prefix.size());
                                return provider(unprefixed);
                              }
                              return Value::Null();
                            }));
      return table->Insert(std::move(row)).status();
    }
    case SegmentLocation::kHierarchySingle:
    case SegmentLocation::kOwnTable:
    case SegmentLocation::kHierarchyDisjoint: {
      std::string table_name =
          loc == SegmentLocation::kHierarchySingle
              ? mapping_.SegmentTableName(class_name)
              : class_name;
      Table* table = catalog_.GetTable(table_name);
      if (table == nullptr) {
        return Status::Internal("missing segment table " + table_name);
      }
      ERBIUM_ASSIGN_OR_RETURN(Row row, BuildRow(table->schema(), provider));
      return table->Insert(std::move(row)).status();
    }
  }
  return Status::Internal("unreachable segment location");
}

Status MappedDatabase::InsertMultiValued(const std::string& class_name,
                                         const Value& entity,
                                         const IndexKey& key) {
  const EntitySetDef* def = schema().FindEntitySet(class_name);
  if (def->weak && mapping_.spec().weak_storage(class_name) ==
                       WeakEntityStorage::kFoldedArray) {
    return Status::OK();  // inside the folded struct
  }
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> chain,
                          schema().AncestryChain(class_name));
  for (const std::string& cls : chain) {
    const EntitySetDef* cls_def = schema().FindEntitySet(cls);
    for (const AttributeDef& attr : cls_def->attributes) {
      if (!attr.multi_valued) continue;
      if (mapping_.spec().multi_valued_storage(cls, attr.name) !=
          MultiValuedStorage::kSeparateTable) {
        continue;
      }
      const Value* field = entity.FindField(attr.name);
      if (field == nullptr || field->is_null()) continue;
      if (field->kind() != TypeKind::kArray) {
        return Status::InvalidArgument("multi-valued attribute " + attr.name +
                                       " must be an array");
      }
      Table* table =
          catalog_.GetTable(PhysicalMapping::MvTableName(cls, attr.name));
      for (const Value& element : field->array()) {
        Row row = key;
        row.push_back(element);
        ERBIUM_RETURN_NOT_OK(table->Insert(std::move(row)).status());
      }
    }
  }
  return Status::OK();
}

// ---- delete helpers ------------------------------------------------------------

Status MappedDatabase::DeleteWhereKey(Table* table,
                                      const std::vector<std::string>& key_cols,
                                      const IndexKey& key) {
  ERBIUM_ASSIGN_OR_RETURN(std::vector<int> positions,
                          ColumnPositions(*table, key_cols));
  std::vector<RowId> ids;
  table->LookupEqual(positions, key, &ids);
  for (RowId id : ids) {
    ERBIUM_RETURN_NOT_OK(table->Delete(id));
  }
  return Status::OK();
}

Status MappedDatabase::ClearForeignKeysReferencing(
    const std::string& one_class, const IndexKey& key) {
  for (const std::string& rel_name : schema().RelationshipSetNames()) {
    const RelationshipSetDef* rel = schema().FindRelationshipSet(rel_name);
    if (mapping_.spec().relationship_storage(*rel) !=
        RelationshipStorage::kForeignKey) {
      continue;
    }
    if (!schema().IsSelfOrDescendant(one_class, rel->one_side().entity) &&
        rel->one_side().entity != one_class) {
      continue;
    }
    // FK columns live on the many side's own-attribute location(s).
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> one_key,
                            mapping_.KeyColumns(rel->one_side().entity));
    if (one_key.size() != key.size()) continue;  // different key shape
    std::vector<std::string> fk_names;
    for (const Column& c : one_key) {
      fk_names.push_back(PhysicalMapping::FkColumnName(rel_name, c.name));
    }
    const std::string& many = rel->many_side().entity;
    std::vector<std::string> carriers;
    switch (mapping_.segment_location(many)) {
      case SegmentLocation::kOwnTable:
        carriers.push_back(many);
        break;
      case SegmentLocation::kHierarchySingle:
        carriers.push_back(mapping_.SegmentTableName(many));
        break;
      case SegmentLocation::kHierarchyDisjoint:
        for (const std::string& cls : schema().SelfAndDescendants(many)) {
          carriers.push_back(cls);
        }
        break;
      default:
        return Status::Internal("FK carrier for " + many + " missing");
    }
    for (const std::string& carrier : carriers) {
      Table* table = catalog_.GetTable(carrier);
      ERBIUM_ASSIGN_OR_RETURN(std::vector<int> positions,
                              ColumnPositions(*table, fk_names));
      std::vector<RowId> ids;
      table->LookupEqual(positions, key, &ids);
      for (RowId id : ids) {
        Row row = table->row(id);
        for (int pos : positions) row[pos] = Value::Null();
        // Also clear folded relationship attribute columns.
        for (const AttributeDef& attr : rel->attributes) {
          int attr_pos = table->schema().ColumnIndex(
              PhysicalMapping::FkColumnName(rel_name, attr.name));
          if (attr_pos >= 0) row[attr_pos] = Value::Null();
        }
        ERBIUM_RETURN_NOT_OK(table->Update(id, std::move(row)));
      }
    }
  }
  return Status::OK();
}

// ---- delete -------------------------------------------------------------------

Status MappedDatabase::DeleteEntityImpl(const std::string& class_name,
                                    const IndexKey& key) {
  const EntitySetDef* def = schema().FindEntitySet(class_name);
  if (def == nullptr) {
    return Status::NotFound("no entity set named " + class_name);
  }
  ERBIUM_ASSIGN_OR_RETURN(bool exists, EntityExists(class_name, key));
  if (!exists) {
    return Status::NotFound("no " + class_name + " instance with given key");
  }
  // Deleting through any handle removes the whole instance: start from the
  // hierarchy root so every segment goes.
  std::string root = class_name;
  if (!def->weak) {
    ERBIUM_ASSIGN_OR_RETURN(root, schema().HierarchyRoot(class_name));
  }
  // Member classes (root-down) the instance belongs to.
  std::vector<std::string> members;
  for (const std::string& cls : schema().SelfAndDescendants(root)) {
    ERBIUM_ASSIGN_OR_RETURN(bool member, EntityExists(cls, key));
    if (member) members.push_back(cls);
  }

  // 1. Cascade to owned weak entities.
  for (const std::string& cls : members) {
    for (const std::string& weak : schema().WeakEntitiesOwnedBy(cls)) {
      WeakEntityStorage ws = mapping_.spec().weak_storage(weak);
      if (ws == WeakEntityStorage::kFoldedArray) {
        continue;  // dies with the owner segment row
      }
      const EntitySetDef* weak_def = schema().FindEntitySet(weak);
      ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> owner_key_names,
                              KeyColumnNames(cls));
      SegmentLocation weak_loc = mapping_.segment_location(weak);
      // Enumerate this owner's weak instances, then recurse.
      std::vector<IndexKey> weak_keys;
      if (weak_loc == SegmentLocation::kOwnTable) {
        Table* table = catalog_.GetTable(weak);
        ERBIUM_ASSIGN_OR_RETURN(std::vector<int> positions,
                                ColumnPositions(*table, owner_key_names));
        std::vector<RowId> ids;
        table->LookupEqual(positions, key, &ids);
        ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> weak_key_names,
                                KeyColumnNames(weak));
        ERBIUM_ASSIGN_OR_RETURN(std::vector<int> weak_key_positions,
                                ColumnPositions(*table, weak_key_names));
        for (RowId id : ids) {
          const Row& row = table->row(id);
          IndexKey weak_key;
          for (int pos : weak_key_positions) weak_key.push_back(row[pos]);
          weak_keys.push_back(std::move(weak_key));
        }
      } else {
        // Pair- or materialized-backed weak entity: scan its side.
        ERBIUM_ASSIGN_OR_RETURN(OperatorPtr scan, ScanEntity(weak, {}));
        ERBIUM_ASSIGN_OR_RETURN(std::vector<Row> rows,
                                CollectRows(scan.get()));
        for (const Row& row : rows) {
          IndexKey weak_key(row.begin(),
                            row.begin() + owner_key_names.size() +
                                weak_def->partial_key.size());
          bool owned = true;
          for (size_t i = 0; i < key.size(); ++i) {
            if (weak_key[i] != key[i]) {
              owned = false;
              break;
            }
          }
          if (owned) weak_keys.push_back(std::move(weak_key));
        }
      }
      for (const IndexKey& weak_key : weak_keys) {
        ERBIUM_RETURN_NOT_OK(DeleteEntity(weak, weak_key));
      }
    }
  }

  // 2. Remove relationship instances touching the entity.
  for (const std::string& rel_name : schema().RelationshipSetNames()) {
    const RelationshipSetDef* rel = schema().FindRelationshipSet(rel_name);
    RelationshipStorage storage = mapping_.spec().relationship_storage(*rel);
    for (bool left : {true, false}) {
      const Participant& p = left ? rel->left : rel->right;
      bool participates = false;
      for (const std::string& cls : members) {
        if (schema().IsSelfOrDescendant(cls, p.entity) || cls == p.entity) {
          participates = true;
        }
      }
      if (!participates) continue;
      ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> side_key,
                              mapping_.KeyColumns(p.entity));
      if (side_key.size() != key.size()) continue;
      switch (storage) {
        case RelationshipStorage::kJoinTable: {
          Table* table = catalog_.GetTable(rel_name);
          std::vector<std::string> cols;
          for (const Column& c : side_key) {
            cols.push_back(PhysicalMapping::RoleColumnName(p.role, c.name));
          }
          ERBIUM_RETURN_NOT_OK(DeleteWhereKey(table, cols, key));
          break;
        }
        case RelationshipStorage::kForeignKey:
          // Many side: FK columns die with the segment row. One side:
          // null out referencing FKs.
          if (p.role == rel->one_side().role) {
            ERBIUM_RETURN_NOT_OK(
                ClearForeignKeysReferencing(p.entity, key));
          }
          break;
        case RelationshipStorage::kMaterializedJoin: {
          Table* table = catalog_.GetTable(
              PhysicalMapping::MaterializedTableName(rel_name));
          std::vector<std::string> cols;
          for (const Column& c : side_key) {
            cols.push_back(PhysicalMapping::RoleColumnName(p.role, c.name));
          }
          ERBIUM_ASSIGN_OR_RETURN(std::vector<int> positions,
                                  ColumnPositions(*table, cols));
          // The other side's key columns decide lone vs joined rows.
          const Participant& other = left ? rel->right : rel->left;
          ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> other_key,
                                  mapping_.KeyColumns(other.entity));
          std::vector<std::string> other_cols;
          for (const Column& c : other_key) {
            other_cols.push_back(
                PhysicalMapping::RoleColumnName(other.role, c.name));
          }
          ERBIUM_ASSIGN_OR_RETURN(std::vector<int> other_positions,
                                  ColumnPositions(*table, other_cols));
          std::vector<RowId> ids;
          table->LookupEqual(positions, key, &ids);
          for (RowId id : ids) {
            Row row = table->row(id);
            bool other_present = !row[other_positions.front()].is_null();
            if (!other_present) {
              ERBIUM_RETURN_NOT_OK(table->Delete(id));
              continue;
            }
            // Null out this side entirely (the partner becomes lone,
            // but duplicates of the partner may remain on other rows —
            // deduplicate: if the partner already appears on another
            // row, drop this row instead).
            std::vector<RowId> partner_rows;
            IndexKey partner_key;
            for (int pos : other_positions) {
              partner_key.push_back(row[pos]);
            }
            table->LookupEqual(other_positions, partner_key, &partner_rows);
            if (partner_rows.size() > 1) {
              ERBIUM_RETURN_NOT_OK(table->Delete(id));
            } else {
              std::string prefix = p.role + "_";
              for (size_t c = 0; c < table->schema().num_columns(); ++c) {
                if (table->schema().column(c).name.rfind(prefix, 0) == 0) {
                  row[c] = Value::Null();
                }
              }
              ERBIUM_RETURN_NOT_OK(table->Update(id, std::move(row)));
            }
          }
          break;
        }
        case RelationshipStorage::kFactorized: {
          FactorizedPair* p_pair =
              pair(PhysicalMapping::PairName(rel_name));
          // Row + edges die together below (segment deletion) when the
          // entity lives in this pair; otherwise it cannot be factorized
          // (both sides are always swallowed).
          (void)p_pair;
          break;
        }
      }
    }
  }

  // 3. Multi-valued side tables.
  for (const std::string& cls : members) {
    const EntitySetDef* cls_def = schema().FindEntitySet(cls);
    for (const AttributeDef& attr : cls_def->attributes) {
      if (!attr.multi_valued) continue;
      if (mapping_.spec().multi_valued_storage(cls, attr.name) !=
          MultiValuedStorage::kSeparateTable) {
        continue;
      }
      Table* table =
          catalog_.GetTable(PhysicalMapping::MvTableName(cls, attr.name));
      if (table == nullptr) continue;  // folded weak: no side table
      ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                              KeyColumnNames(cls));
      ERBIUM_RETURN_NOT_OK(DeleteWhereKey(table, key_names, key));
    }
  }

  // 4. Segments.
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    const std::string& cls = *it;
    SegmentLocation loc = mapping_.segment_location(cls);
    switch (loc) {
      case SegmentLocation::kOwnTable:
      case SegmentLocation::kHierarchySingle:
      case SegmentLocation::kHierarchyDisjoint: {
        Result<SegmentRef> ref = FindSegmentRow(cls, key);
        if (ref.ok()) {
          // Single-table rows are shared by the whole chain: delete once
          // (when processing the root member).
          if (loc == SegmentLocation::kHierarchySingle && cls != members.front()) {
            break;
          }
          ERBIUM_RETURN_NOT_OK(ref->table->Delete(ref->row));
        }
        break;
      }
      case SegmentLocation::kFoldedInOwner: {
        const EntitySetDef* weak_def = schema().FindEntitySet(cls);
        ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> owner_cols,
                                mapping_.KeyColumns(weak_def->owner));
        IndexKey owner_key(key.begin(), key.begin() + owner_cols.size());
        ERBIUM_ASSIGN_OR_RETURN(SegmentRef owner,
                                FindSegmentRow(weak_def->owner, owner_key));
        int col = owner.table->schema().ColumnIndex(cls);
        Row row = owner.table->row(owner.row);
        Value::ArrayData remaining;
        if (row[col].kind() == TypeKind::kArray) {
          for (const Value& element : row[col].array()) {
            bool match = true;
            for (size_t i = 0; i < weak_def->partial_key.size(); ++i) {
              const Value* field =
                  element.FindField(weak_def->partial_key[i]);
              if (field == nullptr ||
                  *field != key[owner_cols.size() + i]) {
                match = false;
                break;
              }
            }
            if (!match) remaining.push_back(element);
          }
        }
        row[col] = Value::Array(std::move(remaining));
        ERBIUM_RETURN_NOT_OK(owner.table->Update(owner.row, std::move(row)));
        break;
      }
      case SegmentLocation::kPairLeft:
        ERBIUM_RETURN_NOT_OK(
            pair(mapping_.SegmentPairName(cls))->EraseLeft(key));
        break;
      case SegmentLocation::kPairRight:
        ERBIUM_RETURN_NOT_OK(
            pair(mapping_.SegmentPairName(cls))->EraseRight(key));
        break;
      case SegmentLocation::kMaterializedLeft:
      case SegmentLocation::kMaterializedRight: {
        // Handled like relationship removal plus lone-row cleanup: drop
        // every row of this side; partners without other rows become
        // lone rows (other side already nulled by step 2 merge logic —
        // here remove remaining rows carrying this segment).
        std::string rel_name = mapping_.SwallowingRelationship(cls);
        const RelationshipSetDef* rel =
            schema().FindRelationshipSet(rel_name);
        bool is_left = loc == SegmentLocation::kMaterializedLeft;
        const Participant& self = is_left ? rel->left : rel->right;
        const Participant& other = is_left ? rel->right : rel->left;
        Table* table = catalog_.GetTable(
            PhysicalMapping::MaterializedTableName(rel_name));
        ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> self_key,
                                mapping_.KeyColumns(self.entity));
        std::vector<std::string> self_cols;
        for (const Column& c : self_key) {
          self_cols.push_back(
              PhysicalMapping::RoleColumnName(self.role, c.name));
        }
        ERBIUM_ASSIGN_OR_RETURN(std::vector<int> self_positions,
                                ColumnPositions(*table, self_cols));
        ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> other_key,
                                mapping_.KeyColumns(other.entity));
        std::vector<std::string> other_cols;
        for (const Column& c : other_key) {
          other_cols.push_back(
              PhysicalMapping::RoleColumnName(other.role, c.name));
        }
        ERBIUM_ASSIGN_OR_RETURN(std::vector<int> other_positions,
                                ColumnPositions(*table, other_cols));
        std::vector<RowId> ids;
        table->LookupEqual(self_positions, key, &ids);
        for (RowId id : ids) {
          Row row = table->row(id);
          bool has_partner = !row[other_positions.front()].is_null();
          if (!has_partner) {
            ERBIUM_RETURN_NOT_OK(table->Delete(id));
            continue;
          }
          IndexKey partner_key;
          for (int pos : other_positions) partner_key.push_back(row[pos]);
          std::vector<RowId> partner_rows;
          table->LookupEqual(other_positions, partner_key, &partner_rows);
          if (partner_rows.size() > 1) {
            ERBIUM_RETURN_NOT_OK(table->Delete(id));
          } else {
            std::string prefix = self.role + "_";
            for (size_t c = 0; c < table->schema().num_columns(); ++c) {
              if (table->schema().column(c).name.rfind(prefix, 0) == 0) {
                row[c] = Value::Null();
              }
            }
            ERBIUM_RETURN_NOT_OK(table->Update(id, std::move(row)));
          }
        }
        break;
      }
    }
  }
  return Status::OK();
}

// ---- get / update / count ------------------------------------------------------

Result<Value> MappedDatabase::GetEntity(const std::string& class_name,
                                        const IndexKey& key) {
  ERBIUM_ASSIGN_OR_RETURN(bool exists, EntityExists(class_name, key));
  if (!exists) {
    return Status::NotFound("no " + class_name + " instance with given key");
  }
  ERBIUM_ASSIGN_OR_RETURN(std::string specific,
                          SpecificClassOf(class_name, key));
  ERBIUM_ASSIGN_OR_RETURN(std::vector<AttributeDef> attrs,
                          schema().AllAttributes(specific));
  std::vector<std::string> attr_names;
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                          KeyColumnNames(class_name));
  std::set<std::string> key_set(key_names.begin(), key_names.end());
  for (const AttributeDef& attr : attrs) {
    if (key_set.count(attr.name) == 0) attr_names.push_back(attr.name);
  }
  ERBIUM_ASSIGN_OR_RETURN(OperatorPtr plan,
                          LookupEntity(specific, key, attr_names));
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Row> rows, CollectRows(plan.get()));
  if (rows.empty()) {
    return Status::Internal("instance disappeared during GetEntity");
  }
  const Row& row = rows.front();
  Value::StructData fields;
  fields.emplace_back("_class", Value::String(specific));
  for (size_t i = 0; i < key_names.size(); ++i) {
    fields.emplace_back(key_names[i], key[i]);
  }
  for (size_t i = 0; i < attr_names.size(); ++i) {
    fields.emplace_back(attr_names[i], row[key_names.size() + i]);
  }
  return Value::Struct(std::move(fields));
}

Status MappedDatabase::UpdateAttributeImpl(const std::string& class_name,
                                       const IndexKey& key,
                                       const std::string& attr,
                                       const Value& value) {
  ERBIUM_ASSIGN_OR_RETURN(std::string declaring,
                          DeclaringClass(class_name, attr));
  ERBIUM_ASSIGN_OR_RETURN(const AttributeDef* attr_def,
                          FindVisibleAttribute(class_name, attr));
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                          KeyColumnNames(class_name));
  for (const std::string& key_name : key_names) {
    if (key_name == attr) {
      return Status::InvalidArgument("key attribute " + attr +
                                     " cannot be updated");
    }
  }
  ERBIUM_ASSIGN_OR_RETURN(bool exists, EntityExists(declaring, key));
  if (!exists) {
    return Status::NotFound("no " + declaring + " instance with given key");
  }
  const EntitySetDef* def = schema().FindEntitySet(declaring);
  bool folded_weak =
      def->weak && mapping_.spec().weak_storage(declaring) ==
                       WeakEntityStorage::kFoldedArray;
  if (attr_def->multi_valued && !folded_weak &&
      mapping_.spec().multi_valued_storage(declaring, attr) ==
          MultiValuedStorage::kSeparateTable) {
    if (!value.is_null() && value.kind() != TypeKind::kArray) {
      return Status::InvalidArgument("multi-valued attribute " + attr +
                                     " must be set to an array");
    }
    Table* table =
        catalog_.GetTable(PhysicalMapping::MvTableName(declaring, attr));
    ERBIUM_RETURN_NOT_OK(DeleteWhereKey(table, key_names, key));
    if (!value.is_null()) {
      for (const Value& element : value.array()) {
        Row row = key;
        row.push_back(element);
        ERBIUM_RETURN_NOT_OK(table->Insert(std::move(row)).status());
      }
    }
    return Status::OK();
  }
  if (folded_weak) {
    // Update the field inside the folded struct element.
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> owner_cols,
                            mapping_.KeyColumns(def->owner));
    IndexKey owner_key(key.begin(), key.begin() + owner_cols.size());
    ERBIUM_ASSIGN_OR_RETURN(SegmentRef owner,
                            FindSegmentRow(def->owner, owner_key));
    int col = owner.table->schema().ColumnIndex(declaring);
    Row row = owner.table->row(owner.row);
    Value::ArrayData elements;
    if (row[col].kind() == TypeKind::kArray) elements = row[col].array();
    for (Value& element : elements) {
      bool match = true;
      for (size_t i = 0; i < def->partial_key.size(); ++i) {
        const Value* field = element.FindField(def->partial_key[i]);
        if (field == nullptr || *field != key[owner_cols.size() + i]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      Value::StructData fields = element.struct_fields();
      for (auto& [name, v] : fields) {
        if (name == attr) v = value;
      }
      element = Value::Struct(std::move(fields));
    }
    row[col] = Value::Array(std::move(elements));
    return owner.table->Update(owner.row, std::move(row));
  }
  // Inline column on the declaring class's segment location.
  SegmentLocation loc = mapping_.segment_location(declaring);
  if (loc == SegmentLocation::kPairLeft ||
      loc == SegmentLocation::kPairRight) {
    FactorizedPair* p = pair(mapping_.SegmentPairName(declaring));
    bool left = loc == SegmentLocation::kPairLeft;
    const std::vector<Column>& cols =
        left ? p->left_columns() : p->right_columns();
    int64_t idx = left ? p->FindLeft(key) : p->FindRight(key);
    Row row = left ? p->left_row(idx) : p->right_row(idx);
    for (size_t c = 0; c < cols.size(); ++c) {
      if (cols[c].name == attr) row[c] = value;
    }
    return left ? p->UpdateLeft(key, std::move(row))
                : p->UpdateRight(key, std::move(row));
  }
  if (loc == SegmentLocation::kMaterializedLeft ||
      loc == SegmentLocation::kMaterializedRight) {
    // Duplicated storage: every row of this side must be updated (the
    // paper's M6 update-cost point).
    std::string rel_name = mapping_.SwallowingRelationship(declaring);
    const RelationshipSetDef* rel = schema().FindRelationshipSet(rel_name);
    const std::string& role = loc == SegmentLocation::kMaterializedLeft
                                  ? rel->left.role
                                  : rel->right.role;
    Table* table =
        catalog_.GetTable(PhysicalMapping::MaterializedTableName(rel_name));
    std::vector<std::string> cols;
    for (const std::string& name : key_names) {
      cols.push_back(PhysicalMapping::RoleColumnName(role, name));
    }
    ERBIUM_ASSIGN_OR_RETURN(std::vector<int> positions,
                            ColumnPositions(*table, cols));
    int attr_pos = table->schema().ColumnIndex(
        PhysicalMapping::RoleColumnName(role, attr));
    if (attr_pos < 0) {
      return Status::Internal("missing column for attribute " + attr);
    }
    std::vector<RowId> ids;
    table->LookupEqual(positions, key, &ids);
    for (RowId id : ids) {
      Row row = table->row(id);
      row[attr_pos] = value;
      ERBIUM_RETURN_NOT_OK(table->Update(id, std::move(row)));
    }
    return Status::OK();
  }
  ERBIUM_ASSIGN_OR_RETURN(SegmentRef ref, FindSegmentRow(declaring, key));
  int attr_pos = ref.table->schema().ColumnIndex(attr);
  if (attr_pos < 0) {
    return Status::Internal("missing column for attribute " + attr);
  }
  Row row = ref.table->row(ref.row);
  row[attr_pos] = value;
  return ref.table->Update(ref.row, std::move(row));
}

Result<size_t> MappedDatabase::CountEntities(const std::string& class_name) {
  ERBIUM_ASSIGN_OR_RETURN(OperatorPtr plan, ScanEntity(class_name, {}));
  ERBIUM_RETURN_NOT_OK(plan->Open());
  size_t count = 0;
  Row row;
  while (plan->Next(&row)) ++count;
  return count;
}

}  // namespace erbium
