#include "mapping/physical_mapping.h"

#include <algorithm>
#include <set>

namespace erbium {

namespace {

/// True when the class belongs to a non-trivial ISA hierarchy.
bool InHierarchy(const ERSchema& schema, const std::string& class_name) {
  const EntitySetDef* def = schema.FindEntitySet(class_name);
  if (def == nullptr) return false;
  if (def->is_subclass()) return true;
  return !schema.DirectSubclasses(class_name).empty();
}

/// All specializations from `root` down are disjoint.
bool SubtreeDisjoint(const ERSchema& schema, const std::string& root) {
  for (const std::string& name : schema.SelfAndDescendants(root)) {
    if (!schema.DirectSubclasses(name).empty() &&
        !schema.FindEntitySet(name)->specialization.disjoint) {
      return false;
    }
  }
  return true;
}

}  // namespace

TypePtr PhysicalMapping::PhysicalAttrType(const AttributeDef& attr,
                                          bool as_array) {
  TypePtr type = attr.type;
  if (as_array) type = Type::Array(type);
  return type;
}

Result<PhysicalMapping> PhysicalMapping::Compile(const ERSchema* schema,
                                                 MappingSpec spec) {
  ERBIUM_RETURN_NOT_OK(schema->Validate());
  PhysicalMapping mapping(schema, std::move(spec));
  ERBIUM_RETURN_NOT_OK(mapping.Validate());
  ERBIUM_RETURN_NOT_OK(mapping.BuildTables());
  return mapping;
}

std::string PhysicalMapping::SwallowingRelationship(
    const std::string& class_name) const {
  for (const std::string& rel_name : schema_->RelationshipSetNames()) {
    const RelationshipSetDef* rel = schema_->FindRelationshipSet(rel_name);
    RelationshipStorage storage = spec_.relationship_storage(*rel);
    if (storage != RelationshipStorage::kFactorized &&
        storage != RelationshipStorage::kMaterializedJoin) {
      continue;
    }
    if (rel->left.entity == class_name || rel->right.entity == class_name) {
      return rel_name;
    }
  }
  return "";
}

SegmentLocation PhysicalMapping::segment_location(
    const std::string& class_name) const {
  const EntitySetDef* def = schema_->FindEntitySet(class_name);
  if (def != nullptr && def->weak &&
      spec_.weak_storage(class_name) == WeakEntityStorage::kFoldedArray) {
    return SegmentLocation::kFoldedInOwner;
  }
  std::string swallowed_by = SwallowingRelationship(class_name);
  if (!swallowed_by.empty()) {
    const RelationshipSetDef* rel =
        schema_->FindRelationshipSet(swallowed_by);
    bool left = rel->left.entity == class_name;
    if (spec_.relationship_storage(*rel) == RelationshipStorage::kFactorized) {
      return left ? SegmentLocation::kPairLeft : SegmentLocation::kPairRight;
    }
    return left ? SegmentLocation::kMaterializedLeft
                : SegmentLocation::kMaterializedRight;
  }
  if (InHierarchy(*schema_, class_name)) {
    std::string root = schema_->HierarchyRoot(class_name).value();
    switch (spec_.hierarchy_storage(root)) {
      case HierarchyStorage::kClassTable:
        return SegmentLocation::kOwnTable;
      case HierarchyStorage::kSingleTable:
        return SegmentLocation::kHierarchySingle;
      case HierarchyStorage::kDisjointTables:
        return SegmentLocation::kHierarchyDisjoint;
    }
  }
  return SegmentLocation::kOwnTable;
}

std::string PhysicalMapping::SegmentTableName(
    const std::string& class_name) const {
  switch (segment_location(class_name)) {
    case SegmentLocation::kOwnTable:
      return class_name;
    case SegmentLocation::kHierarchySingle:
      return schema_->HierarchyRoot(class_name).value();
    case SegmentLocation::kMaterializedLeft:
    case SegmentLocation::kMaterializedRight:
      return MaterializedTableName(SwallowingRelationship(class_name));
    default:
      return "";
  }
}

std::string PhysicalMapping::SegmentPairName(
    const std::string& class_name) const {
  SegmentLocation loc = segment_location(class_name);
  if (loc == SegmentLocation::kPairLeft ||
      loc == SegmentLocation::kPairRight) {
    return PairName(SwallowingRelationship(class_name));
  }
  return "";
}

Result<std::vector<Column>> PhysicalMapping::KeyColumns(
    const std::string& class_name) const {
  const EntitySetDef* def = schema_->FindEntitySet(class_name);
  if (def == nullptr) {
    return Status::NotFound("no entity set named " + class_name);
  }
  std::vector<Column> out;
  if (def->weak) {
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> owner_key,
                            KeyColumns(def->owner));
    out = std::move(owner_key);
    for (const std::string& attr_name : def->partial_key) {
      const AttributeDef* attr = FindAttribute(def->attributes, attr_name);
      if (attr == nullptr) {
        return Status::Internal("missing partial key attribute " + attr_name);
      }
      out.push_back(Column{attr->name, attr->type, /*nullable=*/false});
    }
    return out;
  }
  ERBIUM_ASSIGN_OR_RETURN(std::string root,
                          schema_->HierarchyRoot(class_name));
  const EntitySetDef* root_def = schema_->FindEntitySet(root);
  for (const std::string& attr_name : root_def->key) {
    const AttributeDef* attr = FindAttribute(root_def->attributes, attr_name);
    if (attr == nullptr) {
      return Status::Internal("missing key attribute " + attr_name);
    }
    out.push_back(Column{attr->name, attr->type, /*nullable=*/false});
  }
  return out;
}

Result<std::vector<Column>> PhysicalMapping::OwnSegmentColumns(
    const std::string& class_name) const {
  const EntitySetDef* def = schema_->FindEntitySet(class_name);
  if (def == nullptr) {
    return Status::NotFound("no entity set named " + class_name);
  }
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> out, KeyColumns(class_name));
  std::set<std::string> present;
  for (const Column& c : out) present.insert(c.name);
  for (const AttributeDef& attr : def->attributes) {
    if (present.count(attr.name) > 0) continue;  // key attrs already there
    if (attr.multi_valued) {
      if (spec_.multi_valued_storage(class_name, attr.name) ==
          MultiValuedStorage::kArray) {
        out.push_back(Column{attr.name, PhysicalAttrType(attr, true), true});
      }
      continue;  // separate table
    }
    out.push_back(
        Column{attr.name, PhysicalAttrType(attr, false), attr.nullable});
  }
  return out;
}

Result<std::vector<PhysicalMapping::FkPlacement>>
PhysicalMapping::FkPlacements(const std::string& class_name) const {
  std::vector<FkPlacement> out;
  for (const std::string& rel_name : schema_->RelationshipSetNames()) {
    const RelationshipSetDef* rel = schema_->FindRelationshipSet(rel_name);
    if (spec_.relationship_storage(*rel) != RelationshipStorage::kForeignKey) {
      continue;
    }
    if (rel->many_side().entity != class_name) continue;
    const std::string& one_entity = rel->one_side().entity;
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> one_key,
                            KeyColumns(one_entity));
    FkPlacement placement;
    placement.relationship = rel_name;
    for (const Column& key_col : one_key) {
      placement.columns.push_back(Column{FkColumnName(rel_name, key_col.name),
                                         key_col.type, /*nullable=*/true});
    }
    // Descriptive attributes of a 1:N relationship fold into the many
    // side next to the FK.
    for (const AttributeDef& attr : rel->attributes) {
      placement.columns.push_back(Column{FkColumnName(rel_name, attr.name),
                                         PhysicalAttrType(attr, false),
                                         true});
    }
    out.push_back(std::move(placement));
  }
  return out;
}

Result<TypePtr> PhysicalMapping::FoldedStructType(
    const std::string& weak_entity) const {
  const EntitySetDef* def = schema_->FindEntitySet(weak_entity);
  if (def == nullptr || !def->weak) {
    return Status::InvalidArgument(weak_entity + " is not a weak entity set");
  }
  std::vector<Field> fields;
  for (const AttributeDef& attr : def->attributes) {
    fields.push_back(
        Field{attr.name, PhysicalAttrType(attr, attr.multi_valued)});
  }
  return Type::Struct(std::move(fields));
}

Status PhysicalMapping::Validate() const {
  // Keys must be scalar.
  for (const std::string& name : schema_->EntitySetNames()) {
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> key, KeyColumns(name));
    for (const Column& c : key) {
      if (c.type == nullptr || !c.type->is_scalar()) {
        return Status::AnalysisError("key attribute " + c.name + " of " +
                                     name + " must be scalar");
      }
    }
  }
  // Hierarchy storage constraints.
  for (const std::string& name : schema_->EntitySetNames()) {
    const EntitySetDef* def = schema_->FindEntitySet(name);
    if (def->is_subclass()) continue;
    if (schema_->DirectSubclasses(name).empty()) continue;
    HierarchyStorage hs = spec_.hierarchy_storage(name);
    if (hs != HierarchyStorage::kClassTable && !SubtreeDisjoint(*schema_, name)) {
      return Status::AnalysisError(
          "hierarchy at " + name + " uses " + erbium::ToString(hs) +
          " storage, which requires disjoint specializations (a single "
          "discriminator cannot represent overlapping membership)");
    }
    if (hs == HierarchyStorage::kSingleTable) {
      // Attribute names must be unique across the whole subtree: they
      // share one table.
      std::set<std::string> seen;
      for (const std::string& cls : schema_->SelfAndDescendants(name)) {
        for (const AttributeDef& attr :
             schema_->FindEntitySet(cls)->attributes) {
          if (!seen.insert(attr.name).second) {
            return Status::AnalysisError(
                "single-table hierarchy at " + name +
                " has colliding attribute name " + attr.name);
          }
        }
      }
    }
  }
  // Relationship constraints.
  std::map<std::string, std::string> swallowed;  // class -> rel
  for (const std::string& rel_name : schema_->RelationshipSetNames()) {
    const RelationshipSetDef* rel = schema_->FindRelationshipSet(rel_name);
    for (const AttributeDef& attr : rel->attributes) {
      if (attr.multi_valued) {
        return Status::AnalysisError(
            "multi-valued attribute " + attr.name + " on relationship " +
            rel_name + " is not supported; model it as a weak entity");
      }
    }
    RelationshipStorage storage = spec_.relationship_storage(*rel);
    if (storage == RelationshipStorage::kForeignKey) {
      if (rel->many_to_many()) {
        return Status::AnalysisError(
            "relationship " + rel_name +
            " is many-to-many and cannot use foreign-key storage");
      }
      const std::string& many = rel->many_side().entity;
      const EntitySetDef* many_def = schema_->FindEntitySet(many);
      if (many_def->weak &&
          spec_.weak_storage(many) == WeakEntityStorage::kFoldedArray) {
        return Status::AnalysisError(
            "relationship " + rel_name + " folds a foreign key into " + many +
            ", which is itself folded into its owner; use join-table "
            "storage");
      }
      if (!SwallowingRelationship(many).empty()) {
        return Status::AnalysisError(
            "relationship " + rel_name + " folds a foreign key into " + many +
            ", whose segment is stored inside a joined structure; use "
            "join-table storage");
      }
      continue;
    }
    if (storage == RelationshipStorage::kFactorized ||
        storage == RelationshipStorage::kMaterializedJoin) {
      if (storage == RelationshipStorage::kFactorized &&
          !rel->attributes.empty()) {
        return Status::AnalysisError(
            "factorized storage of " + rel_name +
            " does not support relationship attributes yet");
      }
      for (const Participant* p : {&rel->left, &rel->right}) {
        const std::string& cls = p->entity;
        auto [it, inserted] = swallowed.emplace(cls, rel_name);
        if (!inserted) {
          return Status::AnalysisError(
              "entity set " + cls + " cannot be stored inside both " +
              it->second + " and " + rel_name);
        }
        if (!schema_->DirectSubclasses(cls).empty()) {
          return Status::AnalysisError(
              "entity set " + cls + " has subclasses and cannot be stored "
              "inside relationship " + rel_name);
        }
        const EntitySetDef* def = schema_->FindEntitySet(cls);
        if (def->is_subclass()) {
          std::string root = schema_->HierarchyRoot(cls).value();
          if (spec_.hierarchy_storage(root) != HierarchyStorage::kClassTable) {
            return Status::AnalysisError(
                "entity set " + cls + " can only be stored inside " +
                rel_name + " when its hierarchy uses class-table storage");
          }
        }
        if (def->weak &&
            spec_.weak_storage(cls) == WeakEntityStorage::kFoldedArray) {
          return Status::AnalysisError(
              "entity set " + cls + " is folded into its owner and cannot "
              "also be stored inside relationship " + rel_name);
        }
        if (!schema_->WeakEntitiesOwnedBy(cls).empty()) {
          for (const std::string& weak : schema_->WeakEntitiesOwnedBy(cls)) {
            if (spec_.weak_storage(weak) == WeakEntityStorage::kFoldedArray) {
              return Status::AnalysisError(
                  "entity set " + cls + " folds weak entity " + weak +
                  " and cannot be stored inside relationship " + rel_name);
            }
          }
        }
      }
    }
  }
  // FK relationships cannot target swallowed many sides (checked above),
  // and swallowed classes cannot be the many side of an FK relationship.
  for (const std::string& rel_name : schema_->RelationshipSetNames()) {
    const RelationshipSetDef* rel = schema_->FindRelationshipSet(rel_name);
    if (spec_.relationship_storage(*rel) != RelationshipStorage::kForeignKey) {
      continue;
    }
    if (swallowed.count(rel->many_side().entity) > 0) {
      return Status::AnalysisError(
          "relationship " + rel_name + " cannot fold a foreign key into " +
          rel->many_side().entity + " (stored inside " +
          swallowed[rel->many_side().entity] + ")");
    }
  }
  // Folded weak entities.
  for (const std::string& name : schema_->EntitySetNames()) {
    const EntitySetDef* def = schema_->FindEntitySet(name);
    if (!def->weak ||
        spec_.weak_storage(name) != WeakEntityStorage::kFoldedArray) {
      continue;
    }
    if (!schema_->WeakEntitiesOwnedBy(name).empty()) {
      return Status::AnalysisError(
          "weak entity set " + name +
          " owns weak entity sets and cannot be folded into its owner");
    }
    SegmentLocation owner_loc = segment_location(def->owner);
    if (owner_loc != SegmentLocation::kOwnTable &&
        owner_loc != SegmentLocation::kHierarchySingle &&
        owner_loc != SegmentLocation::kHierarchyDisjoint) {
      return Status::AnalysisError(
          "weak entity set " + name + " cannot be folded into " + def->owner +
          " whose own segment is not a plain table");
    }
  }
  return Status::OK();
}

Status PhysicalMapping::BuildTables() {
  std::set<std::string> table_names;
  auto add_table = [&](TableSchema schema) -> Status {
    if (!table_names.insert(schema.name()).second) {
      return Status::AnalysisError("physical table name collision: " +
                                   schema.name());
    }
    tables_.push_back(std::move(schema));
    return Status::OK();
  };
  auto key_index = [&](const std::string& table,
                       const std::vector<Column>& key_cols, bool unique) {
    std::vector<std::string> names;
    for (const Column& c : key_cols) names.push_back(c.name);
    indexes_.push_back(IndexDef{table, table + "_pk", names, unique});
  };

  // Folded weak entity columns attach to the owner's own-attribute
  // location; collect them first.
  std::map<std::string, std::vector<Column>> folded_columns;  // owner -> cols
  for (const std::string& name : schema_->EntitySetNames()) {
    const EntitySetDef* def = schema_->FindEntitySet(name);
    if (def->weak &&
        spec_.weak_storage(name) == WeakEntityStorage::kFoldedArray) {
      ERBIUM_ASSIGN_OR_RETURN(TypePtr folded, FoldedStructType(name));
      folded_columns[def->owner].push_back(
          Column{name, Type::Array(folded), true});
    }
  }

  auto own_payload = [&](const std::string& cls,
                         std::vector<Column>* cols) -> Status {
    // FK placements, then folded weak arrays for this class.
    ERBIUM_ASSIGN_OR_RETURN(std::vector<FkPlacement> fks, FkPlacements(cls));
    for (const FkPlacement& fk : fks) {
      cols->insert(cols->end(), fk.columns.begin(), fk.columns.end());
    }
    auto folded_it = folded_columns.find(cls);
    if (folded_it != folded_columns.end()) {
      cols->insert(cols->end(), folded_it->second.begin(),
                   folded_it->second.end());
    }
    return Status::OK();
  };

  // ---- Entity storage -------------------------------------------------------
  for (const std::string& name : schema_->EntitySetNames()) {
    const EntitySetDef* def = schema_->FindEntitySet(name);
    if (def->is_subclass()) continue;  // handled with the root below
    if (def->weak) {
      SegmentLocation loc = segment_location(name);
      if (loc == SegmentLocation::kOwnTable) {
        ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> cols,
                                OwnSegmentColumns(name));
        ERBIUM_RETURN_NOT_OK(own_payload(name, &cols));
        ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> key, KeyColumns(name));
        std::vector<int> key_positions;
        for (size_t i = 0; i < key.size(); ++i) {
          key_positions.push_back(static_cast<int>(i));
        }
        ERBIUM_RETURN_NOT_OK(
            add_table(TableSchema(name, cols, key_positions)));
        key_index(name, key, /*unique=*/true);
        // Secondary index on the owner-key prefix, for owner->weak walks.
        ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> owner_key,
                                KeyColumns(def->owner));
        std::vector<std::string> owner_key_names;
        for (const Column& c : owner_key) owner_key_names.push_back(c.name);
        indexes_.push_back(
            IndexDef{name, name + "_owner", owner_key_names, false});
      }
      // kFoldedInOwner handled via folded_columns; pair/materialized below.
      continue;
    }
    // Strong hierarchy root (possibly trivial).
    HierarchyStorage hs = spec_.hierarchy_storage(name);
    std::vector<std::string> subtree = schema_->SelfAndDescendants(name);
    bool trivial = subtree.size() == 1;
    if (trivial || hs == HierarchyStorage::kClassTable) {
      for (const std::string& cls : subtree) {
        if (segment_location(cls) != SegmentLocation::kOwnTable) {
          continue;  // swallowed into a pair/materialized table
        }
        ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> cols,
                                OwnSegmentColumns(cls));
        ERBIUM_RETURN_NOT_OK(own_payload(cls, &cols));
        ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> key, KeyColumns(cls));
        std::vector<int> key_positions;
        for (size_t i = 0; i < key.size(); ++i) {
          key_positions.push_back(static_cast<int>(i));
        }
        ERBIUM_RETURN_NOT_OK(add_table(TableSchema(cls, cols, key_positions)));
        key_index(cls, key, /*unique=*/true);
      }
    } else if (hs == HierarchyStorage::kSingleTable) {
      ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> cols, KeyColumns(name));
      size_t key_size = cols.size();
      cols.push_back(Column{kTypeColumn, Type::String(), false});
      for (const std::string& cls : subtree) {
        const EntitySetDef* cls_def = schema_->FindEntitySet(cls);
        for (const AttributeDef& attr : cls_def->attributes) {
          bool is_key = false;
          for (size_t i = 0; i < key_size; ++i) {
            if (cols[i].name == attr.name) is_key = true;
          }
          if (is_key) continue;
          if (attr.multi_valued) {
            if (spec_.multi_valued_storage(cls, attr.name) ==
                MultiValuedStorage::kArray) {
              cols.push_back(
                  Column{attr.name, PhysicalAttrType(attr, true), true});
            }
            continue;
          }
          // Subclass attributes are nullable in the single table.
          cols.push_back(Column{attr.name, PhysicalAttrType(attr, false),
                                true});
        }
        ERBIUM_RETURN_NOT_OK(own_payload(cls, &cols));
      }
      std::vector<int> key_positions;
      for (size_t i = 0; i < key_size; ++i) {
        key_positions.push_back(static_cast<int>(i));
      }
      ERBIUM_RETURN_NOT_OK(add_table(TableSchema(name, cols, key_positions)));
      ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> key, KeyColumns(name));
      key_index(name, key, /*unique=*/true);
    } else {  // kDisjointTables
      for (const std::string& cls : subtree) {
        ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> cols, KeyColumns(cls));
        size_t key_size = cols.size();
        ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> chain,
                                schema_->AncestryChain(cls));
        for (const std::string& ancestor : chain) {
          const EntitySetDef* a_def = schema_->FindEntitySet(ancestor);
          for (const AttributeDef& attr : a_def->attributes) {
            bool is_key = false;
            for (size_t i = 0; i < key_size; ++i) {
              if (cols[i].name == attr.name) is_key = true;
            }
            if (is_key) continue;
            if (attr.multi_valued) {
              if (spec_.multi_valued_storage(ancestor, attr.name) ==
                  MultiValuedStorage::kArray) {
                cols.push_back(
                    Column{attr.name, PhysicalAttrType(attr, true), true});
              }
              continue;
            }
            cols.push_back(Column{attr.name, PhysicalAttrType(attr, false),
                                  attr.nullable});
          }
          ERBIUM_RETURN_NOT_OK(own_payload(ancestor == cls ? cls : ancestor,
                                           &cols));
        }
        std::vector<int> key_positions;
        for (size_t i = 0; i < key_size; ++i) {
          key_positions.push_back(static_cast<int>(i));
        }
        ERBIUM_RETURN_NOT_OK(add_table(TableSchema(cls, cols, key_positions)));
        ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> key, KeyColumns(cls));
        key_index(cls, key, /*unique=*/true);
      }
    }
  }

  // ---- Multi-valued side tables ----------------------------------------------
  for (const std::string& name : schema_->EntitySetNames()) {
    const EntitySetDef* def = schema_->FindEntitySet(name);
    bool folded = def->weak && spec_.weak_storage(name) ==
                                   WeakEntityStorage::kFoldedArray;
    if (folded) continue;  // multi-valued attrs live inside the struct
    for (const AttributeDef& attr : def->attributes) {
      if (!attr.multi_valued) continue;
      if (spec_.multi_valued_storage(name, attr.name) !=
          MultiValuedStorage::kSeparateTable) {
        continue;
      }
      ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> cols, KeyColumns(name));
      size_t key_size = cols.size();
      cols.push_back(Column{attr.name, PhysicalAttrType(attr, false), false});
      std::string table_name = MvTableName(name, attr.name);
      ERBIUM_RETURN_NOT_OK(add_table(TableSchema(table_name, cols, {})));
      std::vector<std::string> key_names;
      for (size_t i = 0; i < key_size; ++i) key_names.push_back(cols[i].name);
      indexes_.push_back(
          IndexDef{table_name, table_name + "_key", key_names, false});
    }
  }

  // ---- Relationship storage ----------------------------------------------------
  for (const std::string& rel_name : schema_->RelationshipSetNames()) {
    const RelationshipSetDef* rel = schema_->FindRelationshipSet(rel_name);
    RelationshipStorage storage = spec_.relationship_storage(*rel);
    if (storage == RelationshipStorage::kForeignKey) {
      // Columns already placed; add a (non-unique) index on the FK columns
      // of every table that carries them.
      ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> one_key,
                              KeyColumns(rel->one_side().entity));
      std::vector<std::string> fk_names;
      for (const Column& c : one_key) {
        fk_names.push_back(FkColumnName(rel_name, c.name));
      }
      const std::string& many = rel->many_side().entity;
      std::vector<std::string> carrier_tables;
      switch (segment_location(many)) {
        case SegmentLocation::kOwnTable:
          carrier_tables.push_back(many);
          break;
        case SegmentLocation::kHierarchySingle:
          carrier_tables.push_back(SegmentTableName(many));
          break;
        case SegmentLocation::kHierarchyDisjoint:
          for (const std::string& cls : schema_->SelfAndDescendants(many)) {
            carrier_tables.push_back(cls);
          }
          break;
        default:
          return Status::Internal("FK carrier for " + many +
                                  " has no physical table");
      }
      for (const std::string& table : carrier_tables) {
        indexes_.push_back(IndexDef{table, table + "_" + rel_name + "_fk",
                                    fk_names, rel->one_to_one()});
      }
      continue;
    }
    // Key columns for both sides, role-prefixed.
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> left_key,
                            KeyColumns(rel->left.entity));
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> right_key,
                            KeyColumns(rel->right.entity));
    auto prefixed = [](const std::string& role,
                       const std::vector<Column>& cols) {
      std::vector<Column> out;
      for (const Column& c : cols) {
        out.push_back(
            Column{RoleColumnName(role, c.name), c.type, /*nullable=*/false});
      }
      return out;
    };
    if (storage == RelationshipStorage::kJoinTable) {
      std::vector<Column> cols = prefixed(rel->left.role, left_key);
      std::vector<Column> right_cols = prefixed(rel->right.role, right_key);
      size_t left_size = cols.size();
      cols.insert(cols.end(), right_cols.begin(), right_cols.end());
      for (const AttributeDef& attr : rel->attributes) {
        cols.push_back(
            Column{attr.name, PhysicalAttrType(attr, false), true});
      }
      ERBIUM_RETURN_NOT_OK(add_table(TableSchema(rel_name, cols, {})));
      std::vector<std::string> left_names, right_names;
      for (size_t i = 0; i < left_size; ++i) left_names.push_back(cols[i].name);
      for (size_t i = left_size; i < left_size + right_key.size(); ++i) {
        right_names.push_back(cols[i].name);
      }
      // The "one" side of a 1:N relationship admits at most one partner
      // per instance of the other side: unique index there.
      bool left_unique = rel->right.cardinality == Cardinality::kOne;
      bool right_unique = rel->left.cardinality == Cardinality::kOne;
      indexes_.push_back(IndexDef{rel_name, rel_name + "_left", left_names,
                                  left_unique});
      indexes_.push_back(IndexDef{rel_name, rel_name + "_right", right_names,
                                  right_unique});
      continue;
    }
    // Materialized join or factorized pair: both own segments together.
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> left_seg,
                            OwnSegmentColumns(rel->left.entity));
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> right_seg,
                            OwnSegmentColumns(rel->right.entity));
    if (storage == RelationshipStorage::kMaterializedJoin) {
      std::vector<Column> cols = prefixed(rel->left.role, left_seg);
      for (Column& c : cols) c.nullable = true;  // full-outer rows
      size_t left_size = cols.size();
      std::vector<Column> right_cols = prefixed(rel->right.role, right_seg);
      for (Column& c : right_cols) c.nullable = true;
      cols.insert(cols.end(), right_cols.begin(), right_cols.end());
      for (const AttributeDef& attr : rel->attributes) {
        cols.push_back(
            Column{attr.name, PhysicalAttrType(attr, false), true});
      }
      std::string table_name = MaterializedTableName(rel_name);
      ERBIUM_RETURN_NOT_OK(add_table(TableSchema(table_name, cols, {})));
      std::vector<std::string> left_names, right_names;
      for (size_t i = 0; i < left_key.size(); ++i) {
        left_names.push_back(cols[i].name);
      }
      for (size_t i = 0; i < right_key.size(); ++i) {
        right_names.push_back(cols[left_size + i].name);
      }
      indexes_.push_back(
          IndexDef{table_name, table_name + "_left", left_names, false});
      indexes_.push_back(
          IndexDef{table_name, table_name + "_right", right_names, false});
      continue;
    }
    // kFactorized.
    PairDef pair;
    pair.name = PairName(rel_name);
    pair.relationship = rel_name;
    pair.left_columns = left_seg;
    pair.right_columns = right_seg;
    for (size_t i = 0; i < left_key.size(); ++i) {
      pair.left_key.push_back(static_cast<int>(i));
    }
    for (size_t i = 0; i < right_key.size(); ++i) {
      pair.right_key.push_back(static_cast<int>(i));
    }
    pairs_.push_back(std::move(pair));
  }
  return Status::OK();
}

// ---- Cover -------------------------------------------------------------------

namespace {

/// Adds the nodes that make a structure holding `class_name`'s key
/// connected in the E/R graph: the class itself, its ancestry chain up to
/// the root, the root's key attribute nodes; for weak entities also the
/// owner's closure and the partial key attribute nodes.
Status AddKeyClosure(const ERSchema& schema, const ERGraph& graph,
                     const std::string& class_name, std::set<int>* nodes) {
  const EntitySetDef* def = schema.FindEntitySet(class_name);
  if (def == nullptr) {
    return Status::NotFound("no entity set named " + class_name);
  }
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> chain,
                          schema.AncestryChain(class_name));
  for (const std::string& cls : chain) nodes->insert(graph.FindNode(cls));
  if (def->weak) {
    for (const std::string& key_attr : def->partial_key) {
      nodes->insert(graph.FindNode(class_name + "." + key_attr));
    }
    return AddKeyClosure(schema, graph, def->owner, nodes);
  }
  const std::string& root = chain.front();
  const EntitySetDef* root_def = schema.FindEntitySet(root);
  for (const std::string& key_attr : root_def->key) {
    nodes->insert(graph.FindNode(root + "." + key_attr));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::set<int>>> PhysicalMapping::Cover(
    const ERGraph& graph) const {
  std::vector<std::set<int>> cover;
  auto attr_node = [&](const std::string& owner, const std::string& attr) {
    return graph.FindNode(owner + "." + attr);
  };

  // Per-class "own segment" node groups (class + stored own attrs).
  auto own_segment_nodes = [&](const std::string& cls,
                               std::set<int>* nodes) -> Status {
    const EntitySetDef* def = schema_->FindEntitySet(cls);
    nodes->insert(graph.FindNode(cls));
    for (const AttributeDef& attr : def->attributes) {
      if (attr.multi_valued &&
          !def->weak &&
          spec_.multi_valued_storage(cls, attr.name) ==
              MultiValuedStorage::kSeparateTable) {
        continue;  // covered by its side table
      }
      if (attr.multi_valued && def->weak &&
          spec_.weak_storage(cls) != WeakEntityStorage::kFoldedArray &&
          spec_.multi_valued_storage(cls, attr.name) ==
              MultiValuedStorage::kSeparateTable) {
        continue;
      }
      nodes->insert(attr_node(cls, attr.name));
    }
    // FK relationships folded here cover the relationship node + attrs.
    ERBIUM_ASSIGN_OR_RETURN(std::vector<FkPlacement> fks, FkPlacements(cls));
    for (const FkPlacement& fk : fks) {
      nodes->insert(graph.FindNode(fk.relationship));
      const RelationshipSetDef* rel =
          schema_->FindRelationshipSet(fk.relationship);
      for (const AttributeDef& attr : rel->attributes) {
        nodes->insert(attr_node(fk.relationship, attr.name));
      }
      // The one side's key closure keeps the subgraph connected through
      // the relationship node.
      ERBIUM_RETURN_NOT_OK(AddKeyClosure(*schema_, graph,
                                         rel->one_side().entity, nodes));
    }
    return Status::OK();
  };

  for (const TableSchema& table : tables_) {
    const std::string& name = table.name();
    std::set<int> nodes;
    // Entity own-segment table (class-table storage or plain entity)?
    const EntitySetDef* def = schema_->FindEntitySet(name);
    if (def != nullptr) {
      SegmentLocation loc = segment_location(name);
      if (loc == SegmentLocation::kOwnTable) {
        ERBIUM_RETURN_NOT_OK(AddKeyClosure(*schema_, graph, name, &nodes));
        ERBIUM_RETURN_NOT_OK(own_segment_nodes(name, &nodes));
      } else if (loc == SegmentLocation::kHierarchySingle) {
        for (const std::string& cls : schema_->SelfAndDescendants(name)) {
          ERBIUM_RETURN_NOT_OK(AddKeyClosure(*schema_, graph, cls, &nodes));
          ERBIUM_RETURN_NOT_OK(own_segment_nodes(cls, &nodes));
        }
      } else if (loc == SegmentLocation::kHierarchyDisjoint) {
        ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> chain,
                                schema_->AncestryChain(name));
        for (const std::string& cls : chain) {
          ERBIUM_RETURN_NOT_OK(AddKeyClosure(*schema_, graph, cls, &nodes));
          ERBIUM_RETURN_NOT_OK(own_segment_nodes(cls, &nodes));
        }
      }
      // Folded weak entities stored on this table.
      for (const std::string& weak : schema_->WeakEntitiesOwnedBy(name)) {
        if (spec_.weak_storage(weak) == WeakEntityStorage::kFoldedArray) {
          nodes.insert(graph.FindNode(weak));
          const EntitySetDef* weak_def = schema_->FindEntitySet(weak);
          for (const AttributeDef& attr : weak_def->attributes) {
            nodes.insert(attr_node(weak, attr.name));
          }
        }
      }
      cover.push_back(std::move(nodes));
      continue;
    }
    // Multi-valued side table?
    bool handled = false;
    for (const std::string& entity : schema_->EntitySetNames()) {
      const EntitySetDef* e_def = schema_->FindEntitySet(entity);
      for (const AttributeDef& attr : e_def->attributes) {
        if (attr.multi_valued && MvTableName(entity, attr.name) == name) {
          ERBIUM_RETURN_NOT_OK(AddKeyClosure(*schema_, graph, entity, &nodes));
          nodes.insert(attr_node(entity, attr.name));
          cover.push_back(std::move(nodes));
          handled = true;
          break;
        }
      }
      if (handled) break;
    }
    if (handled) continue;
    // Join table or materialized join table.
    for (const std::string& rel_name : schema_->RelationshipSetNames()) {
      const RelationshipSetDef* rel = schema_->FindRelationshipSet(rel_name);
      RelationshipStorage storage = spec_.relationship_storage(*rel);
      bool join_table =
          storage == RelationshipStorage::kJoinTable && rel_name == name;
      bool materialized = storage == RelationshipStorage::kMaterializedJoin &&
                          MaterializedTableName(rel_name) == name;
      if (!join_table && !materialized) continue;
      nodes.insert(graph.FindNode(rel_name));
      for (const AttributeDef& attr : rel->attributes) {
        nodes.insert(attr_node(rel_name, attr.name));
      }
      ERBIUM_RETURN_NOT_OK(
          AddKeyClosure(*schema_, graph, rel->left.entity, &nodes));
      ERBIUM_RETURN_NOT_OK(
          AddKeyClosure(*schema_, graph, rel->right.entity, &nodes));
      if (materialized) {
        ERBIUM_RETURN_NOT_OK(own_segment_nodes(rel->left.entity, &nodes));
        ERBIUM_RETURN_NOT_OK(own_segment_nodes(rel->right.entity, &nodes));
      }
      cover.push_back(std::move(nodes));
      handled = true;
      break;
    }
    if (!handled) {
      return Status::Internal("cover derivation missed table " + name);
    }
  }
  for (const PairDef& pair : pairs_) {
    const RelationshipSetDef* rel =
        schema_->FindRelationshipSet(pair.relationship);
    std::set<int> nodes;
    nodes.insert(graph.FindNode(pair.relationship));
    ERBIUM_RETURN_NOT_OK(
        AddKeyClosure(*schema_, graph, rel->left.entity, &nodes));
    ERBIUM_RETURN_NOT_OK(
        AddKeyClosure(*schema_, graph, rel->right.entity, &nodes));
    ERBIUM_RETURN_NOT_OK(own_segment_nodes(rel->left.entity, &nodes));
    ERBIUM_RETURN_NOT_OK(own_segment_nodes(rel->right.entity, &nodes));
    cover.push_back(std::move(nodes));
  }
  return cover;
}

Status PhysicalMapping::ValidateCover(const ERGraph& graph,
                                      const std::vector<std::set<int>>& cover) {
  std::set<int> covered;
  for (size_t i = 0; i < cover.size(); ++i) {
    if (cover[i].count(-1) > 0) {
      return Status::Internal("cover subgraph " + std::to_string(i) +
                              " references an unknown node");
    }
    if (!graph.IsConnected(cover[i])) {
      return Status::AnalysisError(
          "cover subgraph " + std::to_string(i) +
          " is not connected (mapping requirement, paper Section 4)");
    }
    covered.insert(cover[i].begin(), cover[i].end());
  }
  for (int node : graph.AllNodeIds()) {
    if (covered.count(node) == 0) {
      return Status::AnalysisError("E/R graph node '" +
                                   graph.nodes()[node].name +
                                   "' is not covered by any structure");
    }
  }
  return Status::OK();
}

}  // namespace erbium
