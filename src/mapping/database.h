#ifndef ERBIUM_MAPPING_DATABASE_H_
#define ERBIUM_MAPPING_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/operator.h"
#include "factorized/factorized.h"
#include "mapping/durability_hook.h"
#include "mapping/physical_mapping.h"
#include "storage/catalog.h"

namespace erbium {

/// A database instance = an E/R schema + a chosen physical mapping +
/// the physical storage it compiles to. This is the runtime object of
/// the paper's Figure 3: CRUD statements against entities/relationships
/// are compiled into updates on the physical tables, and the query layer
/// obtains physical access plans for logical constructs from it.
///
/// Entity values are structs keyed by attribute name; multi-valued
/// attributes are arrays; composite attributes are structs. Weak entity
/// values must also include their owner's key attributes (the inherited
/// part of their full key).
class MappedDatabase {
 public:
  static Result<std::unique_ptr<MappedDatabase>> Create(const ERSchema* schema,
                                                        MappingSpec spec);

  const ERSchema& schema() const { return mapping_.schema(); }
  const PhysicalMapping& mapping() const { return mapping_; }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  FactorizedPair* pair(const std::string& name);
  const FactorizedPair* pair(const std::string& name) const;

  /// Total approximate bytes across tables and pairs.
  size_t ApproximateDataBytes() const;

  /// Name of the catalog table holding the active mapping as JSON (the
  /// paper persists the chosen mapping inside the database).
  static constexpr const char* kMappingCatalogTable = "_erbium_mappings";

  /// Reads the persisted mapping spec back from the catalog table.
  Result<MappingSpec> LoadPersistedSpec() const;

  /// Attaches (or detaches, with nullptr) the write-ahead-log sink. Every
  /// successfully applied logical CRUD operation below is reported to the
  /// hook before being acknowledged; these five methods are the single
  /// choke point all writers (EntityStore, workloads, migration) funnel
  /// through. Not owned.
  void set_durability_hook(DurabilityHook* hook) { durability_ = hook; }
  DurabilityHook* durability_hook() const { return durability_; }

  /// Cross-shard referential existence. When this database is one shard
  /// of a partitioned engine, a relationship participant may legitimately
  /// live on a sibling shard: InsertRelationship consults the hook after
  /// a local EntityExists miss before declaring a constraint violation.
  /// The hook must be a pure read (sibling EntityExists is a versioned
  /// read taking no writer locks, so cross-shard probes cannot deadlock).
  using RemoteEntityCheck =
      std::function<Result<bool>(const std::string&, const IndexKey&)>;
  void set_remote_entity_check(RemoteEntityCheck check) {
    remote_entity_check_ = std::move(check);
  }
  bool has_remote_entity_check() const {
    return static_cast<bool>(remote_entity_check_);
  }

  // ---- Entity CRUD -----------------------------------------------------------

  /// Inserts an instance whose most-specific class is `class_name`.
  /// `entity` must provide non-null values for all full-key attributes;
  /// other attributes default to null / empty arrays.
  Status InsertEntity(const std::string& class_name, const Value& entity);

  /// Assembles the full logical view of an instance: every visible
  /// attribute (inherited + own), multi-valued ones as arrays. The
  /// instance must belong to `class_name` (or a descendant).
  Result<Value> GetEntity(const std::string& class_name, const IndexKey& key);

  /// True if an instance with this key belongs to the class (or below).
  Result<bool> EntityExists(const std::string& class_name,
                            const IndexKey& key);

  /// Most-specific class of the instance.
  Result<std::string> SpecificClassOf(const std::string& class_name,
                                      const IndexKey& key);

  /// Entity-centric delete (paper Section 1.1(2)): removes all segments,
  /// multi-valued rows, relationship instances touching the entity, and
  /// (recursively) owned weak entities.
  Status DeleteEntity(const std::string& class_name, const IndexKey& key);

  /// Replaces the value of one attribute (multi-valued: pass the whole
  /// new array). Key attributes cannot be updated.
  Status UpdateAttribute(const std::string& class_name, const IndexKey& key,
                         const std::string& attr, const Value& value);

  /// Number of instances of the class (including descendant instances).
  Result<size_t> CountEntities(const std::string& class_name);

  // ---- Relationship CRUD -------------------------------------------------------

  /// Connects two existing instances. Enforces cardinality constraints
  /// and referential existence of both sides (note: this is enforceable
  /// under every mapping here, unlike the raw relational schemas the
  /// paper discusses for M3). `attrs` may be a null Value when the
  /// relationship has no attributes.
  Status InsertRelationship(const std::string& rel_name,
                            const IndexKey& left_key, const IndexKey& right_key,
                            const Value& attrs = Value::Null());

  Status DeleteRelationship(const std::string& rel_name,
                            const IndexKey& left_key,
                            const IndexKey& right_key);

  Result<size_t> CountRelationships(const std::string& rel_name);

  // ---- Access plans for the query layer -----------------------------------------

  /// Stream of instances of the class: output columns are the full-key
  /// attributes followed by `attrs` in order (multi-valued as arrays).
  /// Every requested attribute must be visible at the class.
  Result<OperatorPtr> ScanEntity(const std::string& class_name,
                                 const std::vector<std::string>& attrs);

  /// Point-access variant of ScanEntity driven through key indexes.
  Result<OperatorPtr> LookupEntity(const std::string& class_name,
                                   const IndexKey& key,
                                   const std::vector<std::string>& attrs);

  /// Unnested multi-valued attribute stream: full key columns + one
  /// element column named after the attribute.
  Result<OperatorPtr> ScanMultiValued(const std::string& class_name,
                                      const std::string& attr);

  /// Relationship instance stream: role-prefixed key columns of both
  /// sides ("<role>_<keyattr>") followed by relationship attributes.
  Result<OperatorPtr> ScanRelationship(const std::string& rel_name);

  /// Fused scan over a relationship *and* both participants' attributes
  /// in a single pass — only available when the relationship is stored
  /// joined (kMaterializedJoin: one scan of the wide table;
  /// kFactorized: pointer-chasing join enumeration). Output columns:
  /// left full key, `left_attrs` in order, right full key, `right_attrs`
  /// in order. Returns NotImplemented for other storages or for
  /// separately-stored multi-valued attributes (callers fall back to
  /// composing ScanEntity + ScanRelationship).
  Result<OperatorPtr> ScanRelationshipJoined(
      const std::string& rel_name, const std::vector<std::string>& left_attrs,
      const std::vector<std::string>& right_attrs);

  /// Stream of a weak entity set's instances belonging to one owner
  /// instance, through the owner-key index (own-table storage) or the
  /// owner's folded array (folded storage). Columns as ScanEntity.
  Result<OperatorPtr> LookupWeakByOwner(const std::string& weak_entity,
                                        const IndexKey& owner_key,
                                        const std::vector<std::string>& attrs);

 private:
  /// Bumps the named logical-CRUD counter when the operation succeeded,
  /// so counters reflect applied changes, not attempts.
  static Status Counted(Status s, const char* counter_name);

  Status InsertEntityImpl(const std::string& class_name, const Value& entity);
  Status DeleteEntityImpl(const std::string& class_name, const IndexKey& key);
  Status UpdateAttributeImpl(const std::string& class_name,
                             const IndexKey& key, const std::string& attr,
                             const Value& value);
  Status InsertRelationshipImpl(const std::string& rel_name,
                                const IndexKey& left_key,
                                const IndexKey& right_key, const Value& attrs);
  Status DeleteRelationshipImpl(const std::string& rel_name,
                                const IndexKey& left_key,
                                const IndexKey& right_key);

  explicit MappedDatabase(PhysicalMapping mapping)
      : mapping_(std::move(mapping)) {}

  Status Initialize();

  // -- helpers (database.cc) --
  Result<const AttributeDef*> FindVisibleAttribute(
      const std::string& class_name, const std::string& attr) const;
  /// Class (in the ancestry chain of `class_name`) that declares `attr`.
  Result<std::string> DeclaringClass(const std::string& class_name,
                                     const std::string& attr) const;
  Result<IndexKey> ExtractFullKey(const std::string& class_name,
                                  const Value& entity) const;
  /// Positions of the key columns in a table, by key column names.
  Result<std::vector<int>> ColumnPositions(
      const Table& table, const std::vector<std::string>& names) const;
  Result<std::vector<std::string>> KeyColumnNames(
      const std::string& class_name) const;

  /// Segment row ids of an instance in its own-segment table, "" table ok.
  struct SegmentRef {
    Table* table = nullptr;
    RowId row = 0;
  };
  Result<SegmentRef> FindSegmentRow(const std::string& class_name,
                                    const IndexKey& key);

  // -- scan helpers (database_scan.cc) --
  /// Base stream over instances of the class: full key columns plus the
  /// own-location columns needed for `needed_attrs` that are inline
  /// (arrays / scalars / FK cols are handled by the callers). The
  /// `key_filter` (may be null) restricts to one key for point access.
  Result<OperatorPtr> BuildSegmentStream(const std::string& class_name,
                                         const std::vector<std::string>& attrs,
                                         const IndexKey* key_filter);

  Result<OperatorPtr> BuildEntityPlan(const std::string& class_name,
                                      const std::vector<std::string>& attrs,
                                      const IndexKey* key_filter);

  // -- CRUD helpers (database.cc / database_rel.cc) --
  Status InsertSegments(const std::string& class_name, const Value& entity,
                        const IndexKey& key);
  Status InsertMultiValued(const std::string& class_name, const Value& entity,
                           const IndexKey& key);
  Status DeleteWhereKey(Table* table, const std::vector<std::string>& key_cols,
                        const IndexKey& key);
  Status ClearForeignKeysReferencing(const std::string& one_class,
                                     const IndexKey& key);

  /// The writer lock domain of an entity or relationship set. Unknown
  /// names (analysis errors surface inside the Impl) fall back to one
  /// shared mutex.
  std::recursive_mutex& LockDomain(const std::string& construct);

  /// Partitions the schema graph into connected components (edges: ISA
  /// parent, weak→owner, relationship→both participants) and assigns one
  /// shared mutex per component. Called at the end of Initialize.
  void BuildLockDomains();

  PhysicalMapping mapping_;
  Catalog catalog_;
  std::map<std::string, std::unique_ptr<FactorizedPair>> pairs_;
  DurabilityHook* durability_ = nullptr;
  /// Writer serialization: the five public CRUD entry points lock their
  /// construct's domain — every physical structure one logical mutation
  /// can reach (hierarchy segments, weak cascades, FK clears, pair
  /// edges) lives inside a single domain, so writers in unrelated parts
  /// of the schema run in parallel. Recursive because DeleteEntity's
  /// weak-entity cascade re-enters through the public entry point.
  /// Readers never take these locks: they pin published versions.
  std::unordered_map<std::string, std::shared_ptr<std::recursive_mutex>>
      lock_domains_;
  std::shared_ptr<std::recursive_mutex> fallback_domain_ =
      std::make_shared<std::recursive_mutex>();
  RemoteEntityCheck remote_entity_check_;
};

}  // namespace erbium

#endif  // ERBIUM_MAPPING_DATABASE_H_
