#include "mapping/advisor.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "erql/query_engine.h"

namespace erbium {

Workload WorkloadFromProfile(const obs::WorkloadSnapshot& snapshot,
                             size_t max_queries) {
  // Snapshot() already sorts shapes by weight (total wall time)
  // descending, so the hottest traffic comes first; we just filter to
  // SELECT statements (the only kind the advisor can replay against a
  // candidate mapping) and cap the count.
  Workload workload;
  for (const obs::WorkloadSnapshot::Shape& shape : snapshot.shapes) {
    if (shape.kind != "select") continue;
    if (workload.queries.size() >= max_queries) break;
    WorkloadQuery query;
    query.erql = shape.sample;
    // Weight by accumulated wall milliseconds so "frequent and slow"
    // dominates exactly as it does live; floor at 1.0 so sub-millisecond
    // shapes still participate.
    query.weight =
        std::max(1.0, static_cast<double>(shape.weight_ns()) / 1e6);
    query.label = shape.shape;
    workload.queries.push_back(std::move(query));
  }
  return workload;
}

std::vector<MappingSpec> MappingAdvisor::EnumerateCandidates(
    const ERSchema& schema, size_t limit) {
  // Feature axes present in this schema.
  bool has_multi_valued = false;
  bool has_weak = false;
  std::vector<std::string> hierarchy_roots;
  std::vector<std::string> many_many_rels;
  for (const std::string& name : schema.EntitySetNames()) {
    const EntitySetDef* def = schema.FindEntitySet(name);
    for (const AttributeDef& attr : def->attributes) {
      if (attr.multi_valued) has_multi_valued = true;
    }
    if (def->weak) has_weak = true;
    if (!def->is_subclass() && !schema.DirectSubclasses(name).empty()) {
      hierarchy_roots.push_back(name);
    }
  }
  for (const std::string& name : schema.RelationshipSetNames()) {
    if (schema.FindRelationshipSet(name)->many_to_many()) {
      many_many_rels.push_back(name);
    }
  }

  std::vector<MappingSpec> base{MappingSpec::Normalized("c0")};
  auto expand = [&](auto&& apply, size_t variants) {
    std::vector<MappingSpec> next;
    for (const MappingSpec& spec : base) {
      for (size_t v = 0; v < variants; ++v) {
        MappingSpec candidate = spec;
        apply(&candidate, v);
        next.push_back(std::move(candidate));
      }
    }
    base = std::move(next);
  };
  if (has_multi_valued) {
    expand(
        [](MappingSpec* spec, size_t v) {
          spec->default_multi_valued = v == 0
                                           ? MultiValuedStorage::kSeparateTable
                                           : MultiValuedStorage::kArray;
        },
        2);
  }
  for (const std::string& root : hierarchy_roots) {
    expand(
        [&root](MappingSpec* spec, size_t v) {
          static const HierarchyStorage kChoices[] = {
              HierarchyStorage::kClassTable, HierarchyStorage::kSingleTable,
              HierarchyStorage::kDisjointTables};
          spec->hierarchy_overrides[root] = kChoices[v];
        },
        3);
  }
  if (has_weak) {
    expand(
        [](MappingSpec* spec, size_t v) {
          spec->default_weak = v == 0 ? WeakEntityStorage::kOwnTable
                                      : WeakEntityStorage::kFoldedArray;
        },
        2);
  }
  // One factorized relationship at a time on top of each combination.
  std::vector<MappingSpec> with_rels = base;
  for (const std::string& rel : many_many_rels) {
    for (const MappingSpec& spec : base) {
      MappingSpec candidate = spec;
      candidate.relationship_overrides[rel] = RelationshipStorage::kFactorized;
      with_rels.push_back(std::move(candidate));
    }
  }
  // Filter to valid specs and assign names.
  std::vector<MappingSpec> out;
  for (MappingSpec& spec : with_rels) {
    if (out.size() >= limit) break;
    Result<PhysicalMapping> compiled = PhysicalMapping::Compile(&schema, spec);
    if (!compiled.ok()) continue;
    spec.name = "cand" + std::to_string(out.size());
    out.push_back(std::move(spec));
  }
  return out;
}

Result<MappingAdvisor::Advice> MappingAdvisor::Advise(
    const ERSchema* schema, const std::vector<MappingSpec>& candidates,
    const std::function<Status(MappedDatabase*)>& populate,
    const Workload& workload, int repetitions) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate mappings to evaluate");
  }
  Advice advice;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const MappingSpec& spec : candidates) {
    Candidate candidate;
    candidate.spec = spec;
    Result<std::unique_ptr<MappedDatabase>> db =
        MappedDatabase::Create(schema, spec);
    if (!db.ok()) {
      candidate.valid = false;
      candidate.invalid_reason = db.status().ToString();
      advice.candidates.push_back(std::move(candidate));
      continue;
    }
    Status populated = populate(db->get());
    if (!populated.ok()) {
      candidate.valid = false;
      candidate.invalid_reason = populated.ToString();
      advice.candidates.push_back(std::move(candidate));
      continue;
    }
    candidate.storage_bytes = (*db)->ApproximateDataBytes();
    bool all_ok = true;
    for (const WorkloadQuery& wq : workload.queries) {
      Result<erql::CompiledQuery> compiled =
          erql::QueryEngine::Compile(db->get(), wq.erql);
      if (!compiled.ok()) {
        candidate.valid = false;
        candidate.invalid_reason =
            "query '" + wq.erql + "': " + compiled.status().ToString();
        all_ok = false;
        break;
      }
      double best_ms = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < repetitions; ++rep) {
        auto start = std::chrono::steady_clock::now();
        Result<std::vector<Row>> rows = CollectRows(compiled->plan.get());
        auto end = std::chrono::steady_clock::now();
        if (!rows.ok()) {
          candidate.valid = false;
          candidate.invalid_reason = rows.status().ToString();
          all_ok = false;
          break;
        }
        double ms = std::chrono::duration<double, std::milli>(end - start)
                        .count();
        best_ms = std::min(best_ms, ms);
      }
      if (!all_ok) break;
      candidate.per_query_ms.push_back(best_ms);
      candidate.total_cost_ms += wq.weight * best_ms;
    }
    if (all_ok && candidate.total_cost_ms < best_cost) {
      best_cost = candidate.total_cost_ms;
      advice.best_index = advice.candidates.size();
    }
    advice.candidates.push_back(std::move(candidate));
  }
  if (best_cost == std::numeric_limits<double>::infinity()) {
    return Status::InvalidArgument("no candidate completed the workload");
  }
  return advice;
}

}  // namespace erbium
