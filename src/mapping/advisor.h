#ifndef ERBIUM_MAPPING_ADVISOR_H_
#define ERBIUM_MAPPING_ADVISOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "er/er_schema.h"
#include "mapping/database.h"
#include "mapping/mapping_spec.h"
#include "obs/workload_profile.h"

namespace erbium {

/// A weighted query workload description for the advisor.
struct WorkloadQuery {
  std::string erql;
  double weight = 1.0;
  std::string label;
};

struct Workload {
  std::vector<WorkloadQuery> queries;
};

/// Converts a captured workload-profile snapshot (obs::WorkloadProfile)
/// into the advisor's weighted Workload: the top `max_queries` SELECT
/// shapes by weight (accumulated wall time), each represented by its
/// stored concrete sample statement. Weights are the shapes' total wall
/// milliseconds, so "frequent and slow" dominates the advice exactly as
/// it dominates the live system. This is the bridge ADVISE uses to feed
/// MappingAdvisor from live traffic.
Workload WorkloadFromProfile(const obs::WorkloadSnapshot& snapshot,
                             size_t max_queries = 8);

/// The workload-aware mapping search the paper calls "the natural
/// optimization problem" (Section 4): enumerate valid covers of the E/R
/// graph (as MappingSpecs), cost each against the workload, return the
/// best. The cost model here is *empirical*: each candidate mapping is
/// instantiated on sampled data and the workload is actually executed —
/// slow but honest, and exactly what a background auto-tuner can afford
/// on a sample.
class MappingAdvisor {
 public:
  struct Candidate {
    MappingSpec spec;
    double total_cost_ms = 0;      // weighted sum over the workload
    size_t storage_bytes = 0;
    std::vector<double> per_query_ms;
    bool valid = true;
    std::string invalid_reason;
  };

  struct Advice {
    size_t best_index = 0;
    std::vector<Candidate> candidates;

    const MappingSpec& best() const { return candidates[best_index].spec; }
  };

  /// Enumerates candidate specs: the cartesian product of the
  /// per-feature storage choices (multi-valued × hierarchy × weak), each
  /// optionally combined with factorizing or materializing one
  /// many-to-many relationship. Invalid combinations (per
  /// PhysicalMapping::Compile) are filtered out. Capped at `limit`.
  static std::vector<MappingSpec> EnumerateCandidates(const ERSchema& schema,
                                                      size_t limit = 64);

  /// Costs every candidate: builds a database per candidate, fills it
  /// via `populate` (sampled data), executes every workload query
  /// `repetitions` times (keeping the minimum), and returns all
  /// measurements with the cheapest candidate marked.
  static Result<Advice> Advise(
      const ERSchema* schema, const std::vector<MappingSpec>& candidates,
      const std::function<Status(MappedDatabase*)>& populate,
      const Workload& workload, int repetitions = 3);
};

}  // namespace erbium

#endif  // ERBIUM_MAPPING_ADVISOR_H_
