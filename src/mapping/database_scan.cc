#include <algorithm>
#include <set>

#include "exec/aggregate.h"
#include "exec/join.h"
#include "mapping/database.h"

namespace erbium {

namespace {

/// Position of a named output column; -1 when absent.
int ColIndex(const Operator& op, const std::string& name) {
  const std::vector<Column>& cols = op.output_columns();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

ExprPtr ColRef(const Operator& op, int index) {
  return MakeColumnRef(index, op.output_columns()[index].name);
}

/// Projects a child to the named columns (all must exist).
Result<OperatorPtr> ProjectTo(OperatorPtr child,
                              const std::vector<std::string>& names) {
  std::vector<ExprPtr> exprs;
  std::vector<Column> out;
  for (const std::string& name : names) {
    int idx = ColIndex(*child, name);
    if (idx < 0) {
      return Status::Internal("projection column " + name + " missing");
    }
    out.push_back(child->output_columns()[idx]);
    exprs.push_back(MakeColumnRef(idx, name));
  }
  return OperatorPtr(
      std::make_unique<ProjectOp>(std::move(child), out, std::move(exprs)));
}

/// Equality predicate `columns == key` over the child's output.
ExprPtr KeyEqualsPredicate(const Operator& op, const std::vector<int>& cols,
                           const IndexKey& key) {
  std::vector<ExprPtr> conjuncts;
  for (size_t i = 0; i < cols.size(); ++i) {
    conjuncts.push_back(MakeCompare(CompareOp::kEq, ColRef(op, cols[i]),
                                    MakeLiteral(key[i])));
  }
  return ConjoinAll(std::move(conjuncts));
}

}  // namespace

// ---- segment/base streams ------------------------------------------------------

Result<OperatorPtr> MappedDatabase::BuildSegmentStream(
    const std::string& class_name, const std::vector<std::string>& attrs,
    const IndexKey* key_filter) {
  // Returns a stream over instances of `class_name` whose columns include
  // the full key (named by key attribute names) and every *inline* column
  // among `attrs` (arrays, scalars). Separate-table multi-valued attrs
  // are joined in by BuildEntityPlan.
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                          KeyColumnNames(class_name));
  SegmentLocation loc = mapping_.segment_location(class_name);
  const EntitySetDef* def = schema().FindEntitySet(class_name);

  // Which inline attrs live on which declaring class (for ancestor joins
  // under class-table storage).
  struct InlineAttr {
    std::string name;
    std::string declaring;
  };
  std::vector<InlineAttr> inline_attrs;
  for (const std::string& attr : attrs) {
    if (std::find(key_names.begin(), key_names.end(), attr) !=
        key_names.end()) {
      continue;  // key columns are always present
    }
    ERBIUM_ASSIGN_OR_RETURN(std::string declaring,
                            DeclaringClass(class_name, attr));
    ERBIUM_ASSIGN_OR_RETURN(const AttributeDef* attr_def,
                            FindVisibleAttribute(class_name, attr));
    bool folded_weak =
        def->weak && mapping_.spec().weak_storage(class_name) ==
                         WeakEntityStorage::kFoldedArray;
    if (attr_def->multi_valued && !folded_weak &&
        mapping_.spec().multi_valued_storage(declaring, attr) ==
            MultiValuedStorage::kSeparateTable) {
      continue;  // joined in later
    }
    inline_attrs.push_back(InlineAttr{attr, declaring});
  }

  auto table_base = [&](const std::string& table_name)
      -> Result<OperatorPtr> {
    Table* table = catalog_.GetTable(table_name);
    if (table == nullptr) {
      return Status::Internal("missing table " + table_name);
    }
    if (key_filter != nullptr) {
      ERBIUM_ASSIGN_OR_RETURN(std::vector<int> positions,
                              ColumnPositions(*table, key_names));
      return OperatorPtr(
          std::make_unique<IndexLookup>(table, positions, *key_filter));
    }
    return OperatorPtr(std::make_unique<SeqScan>(table));
  };

  switch (loc) {
    case SegmentLocation::kOwnTable: {
      ERBIUM_ASSIGN_OR_RETURN(OperatorPtr base, table_base(class_name));
      // Join ancestor segment tables for inherited inline attrs
      // (class-table storage: the paper's multi-way hierarchy joins).
      std::set<std::string> joined;
      for (const InlineAttr& attr : inline_attrs) {
        if (attr.declaring == class_name) continue;
        if (!joined.insert(attr.declaring).second) continue;
        Table* ancestor = catalog_.GetTable(attr.declaring);
        if (ancestor == nullptr) {
          return Status::Internal("missing ancestor segment table " +
                                  attr.declaring);
        }
        std::vector<ExprPtr> left_keys;
        for (const std::string& key_name : key_names) {
          int idx = ColIndex(*base, key_name);
          left_keys.push_back(ColRef(*base, idx));
        }
        ERBIUM_ASSIGN_OR_RETURN(std::vector<int> right_positions,
                                ColumnPositions(*ancestor, key_names));
        base = std::make_unique<IndexJoinOp>(std::move(base), ancestor,
                                             std::move(left_keys),
                                             right_positions);
        // Joined key columns collide by name; later name lookups find the
        // first (left) occurrence, which is correct.
      }
      return base;
    }
    case SegmentLocation::kHierarchySingle: {
      ERBIUM_ASSIGN_OR_RETURN(std::string root,
                              schema().HierarchyRoot(class_name));
      ERBIUM_ASSIGN_OR_RETURN(OperatorPtr base, table_base(root));
      std::vector<std::string> subtree =
          schema().SelfAndDescendants(class_name);
      if (subtree.size() != schema().SelfAndDescendants(root).size()) {
        // Restrict to the subtree through the discriminator.
        int type_idx = ColIndex(*base, PhysicalMapping::kTypeColumn);
        std::vector<Value> members;
        for (const std::string& cls : subtree) {
          members.push_back(Value::String(cls));
        }
        base = std::make_unique<FilterOp>(
            std::move(base),
            MakeInList(ColRef(*base, type_idx), std::move(members)));
      }
      return base;
    }
    case SegmentLocation::kHierarchyDisjoint: {
      std::vector<OperatorPtr> branches;
      std::vector<std::string> projection = key_names;
      for (const InlineAttr& attr : inline_attrs) {
        projection.push_back(attr.name);
      }
      for (const std::string& cls : schema().SelfAndDescendants(class_name)) {
        ERBIUM_ASSIGN_OR_RETURN(OperatorPtr branch, table_base(cls));
        ERBIUM_ASSIGN_OR_RETURN(branch,
                                ProjectTo(std::move(branch), projection));
        branches.push_back(std::move(branch));
      }
      if (branches.size() == 1) return std::move(branches.front());
      return OperatorPtr(
          std::make_unique<UnionAllOp>(std::move(branches)));
    }
    case SegmentLocation::kFoldedInOwner: {
      // Owner stream (restricted by the owner-key prefix when a full key
      // filter is present), unnested over the folded array.
      ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> owner_keys,
                              KeyColumnNames(def->owner));
      std::vector<std::string> owner_attrs;  // just the folded column
      OperatorPtr base;
      if (key_filter != nullptr) {
        IndexKey owner_key(key_filter->begin(),
                           key_filter->begin() + owner_keys.size());
        ERBIUM_ASSIGN_OR_RETURN(
            base, BuildSegmentStream(def->owner, owner_attrs, &owner_key));
      } else {
        ERBIUM_ASSIGN_OR_RETURN(
            base, BuildSegmentStream(def->owner, owner_attrs, nullptr));
      }
      int folded_idx = ColIndex(*base, class_name);
      if (folded_idx < 0) {
        return Status::Internal("missing folded column " + class_name);
      }
      base = std::make_unique<UnnestOp>(std::move(base), folded_idx,
                                        class_name + "_element");
      // Project owner key + struct fields (partial key and attributes).
      int element_idx = folded_idx;
      std::vector<Column> out;
      std::vector<ExprPtr> exprs;
      for (const std::string& key_name : owner_keys) {
        int idx = ColIndex(*base, key_name);
        out.push_back(base->output_columns()[idx]);
        exprs.push_back(MakeColumnRef(idx, key_name));
      }
      ExprPtr element = ColRef(*base, element_idx);
      for (const AttributeDef& attr : def->attributes) {
        out.push_back(Column{attr.name,
                             PhysicalMapping::PhysicalAttrType(
                                 attr, attr.multi_valued),
                             true});
        exprs.push_back(std::make_shared<FieldAccessExpr>(element, attr.name));
      }
      OperatorPtr projected = std::make_unique<ProjectOp>(
          std::move(base), std::move(out), std::move(exprs));
      if (key_filter != nullptr) {
        // Restrict to the exact partial key.
        std::vector<int> partial_positions;
        for (const std::string& pk : def->partial_key) {
          partial_positions.push_back(ColIndex(*projected, pk));
        }
        IndexKey partial(key_filter->begin() + owner_keys.size(),
                         key_filter->end());
        ExprPtr predicate =
            KeyEqualsPredicate(*projected, partial_positions, partial);
        projected = std::make_unique<FilterOp>(std::move(projected),
                                               std::move(predicate));
      }
      return projected;
    }
    case SegmentLocation::kPairLeft:
    case SegmentLocation::kPairRight: {
      FactorizedPair* p = pair(mapping_.SegmentPairName(class_name));
      bool left = loc == SegmentLocation::kPairLeft;
      OperatorPtr base = std::make_unique<FactorizedSideScan>(p, left);
      if (key_filter != nullptr) {
        std::vector<int> positions;
        for (const std::string& key_name : key_names) {
          positions.push_back(ColIndex(*base, key_name));
        }
        base = std::make_unique<FilterOp>(
            std::move(base),
            KeyEqualsPredicate(*base, positions, *key_filter));
      }
      // Inherited attrs come from ancestor tables (class-table storage is
      // validated for swallowed subclasses).
      std::set<std::string> joined;
      for (const InlineAttr& attr : inline_attrs) {
        if (attr.declaring == class_name) continue;
        if (!joined.insert(attr.declaring).second) continue;
        Table* ancestor = catalog_.GetTable(attr.declaring);
        std::vector<ExprPtr> left_keys;
        for (const std::string& key_name : key_names) {
          left_keys.push_back(ColRef(*base, ColIndex(*base, key_name)));
        }
        ERBIUM_ASSIGN_OR_RETURN(std::vector<int> right_positions,
                                ColumnPositions(*ancestor, key_names));
        base = std::make_unique<IndexJoinOp>(std::move(base), ancestor,
                                             std::move(left_keys),
                                             right_positions);
      }
      return base;
    }
    case SegmentLocation::kMaterializedLeft:
    case SegmentLocation::kMaterializedRight: {
      std::string rel_name = mapping_.SwallowingRelationship(class_name);
      const RelationshipSetDef* rel = schema().FindRelationshipSet(rel_name);
      bool left = loc == SegmentLocation::kMaterializedLeft;
      const std::string& role = left ? rel->left.role : rel->right.role;
      Table* table = catalog_.GetTable(
          PhysicalMapping::MaterializedTableName(rel_name));
      OperatorPtr base;
      std::vector<std::string> prefixed_keys;
      for (const std::string& key_name : key_names) {
        prefixed_keys.push_back(
            PhysicalMapping::RoleColumnName(role, key_name));
      }
      if (key_filter != nullptr) {
        ERBIUM_ASSIGN_OR_RETURN(std::vector<int> positions,
                                ColumnPositions(*table, prefixed_keys));
        base = std::make_unique<IndexLookup>(table, positions, *key_filter);
      } else {
        base = std::make_unique<SeqScan>(table);
      }
      // Keep rows that carry this side, strip the prefix, deduplicate
      // (the M:N duplication cost of materialized storage).
      int first_key = ColIndex(*base, prefixed_keys.front());
      base = std::make_unique<FilterOp>(
          std::move(base),
          std::make_shared<IsNullExpr>(ColRef(*base, first_key), true));
      ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> seg_cols,
                              mapping_.OwnSegmentColumns(class_name));
      std::vector<Column> out;
      std::vector<ExprPtr> exprs;
      for (const Column& col : seg_cols) {
        int idx =
            ColIndex(*base, PhysicalMapping::RoleColumnName(role, col.name));
        if (idx < 0) {
          return Status::Internal("materialized column missing: " + col.name);
        }
        out.push_back(Column{col.name, col.type, col.nullable});
        exprs.push_back(MakeColumnRef(idx, col.name));
      }
      base = std::make_unique<ProjectOp>(std::move(base), std::move(out),
                                         std::move(exprs));
      base = std::make_unique<DistinctOp>(std::move(base));
      // Ancestor joins (swallowed subclass under class-table storage).
      std::set<std::string> joined;
      for (const InlineAttr& attr : inline_attrs) {
        if (attr.declaring == class_name) continue;
        if (!joined.insert(attr.declaring).second) continue;
        Table* ancestor = catalog_.GetTable(attr.declaring);
        std::vector<ExprPtr> left_keys;
        for (const std::string& key_name : key_names) {
          left_keys.push_back(ColRef(*base, ColIndex(*base, key_name)));
        }
        ERBIUM_ASSIGN_OR_RETURN(std::vector<int> right_positions,
                                ColumnPositions(*ancestor, key_names));
        base = std::make_unique<IndexJoinOp>(std::move(base), ancestor,
                                             std::move(left_keys),
                                             right_positions);
      }
      return base;
    }
  }
  return Status::Internal("unreachable segment location");
}

Result<OperatorPtr> MappedDatabase::BuildEntityPlan(
    const std::string& class_name, const std::vector<std::string>& attrs,
    const IndexKey* key_filter) {
  if (schema().FindEntitySet(class_name) == nullptr) {
    return Status::NotFound("no entity set named " + class_name);
  }
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                          KeyColumnNames(class_name));
  const EntitySetDef* def = schema().FindEntitySet(class_name);
  bool folded_weak =
      def->weak && mapping_.spec().weak_storage(class_name) ==
                       WeakEntityStorage::kFoldedArray;

  // Partition: which requested attrs need a separate-table join.
  std::vector<std::string> side_attrs;
  for (const std::string& attr : attrs) {
    if (std::find(key_names.begin(), key_names.end(), attr) !=
        key_names.end()) {
      continue;
    }
    ERBIUM_ASSIGN_OR_RETURN(const AttributeDef* attr_def,
                            FindVisibleAttribute(class_name, attr));
    ERBIUM_ASSIGN_OR_RETURN(std::string declaring,
                            DeclaringClass(class_name, attr));
    if (attr_def->multi_valued && !folded_weak &&
        mapping_.spec().multi_valued_storage(declaring, attr) ==
            MultiValuedStorage::kSeparateTable) {
      side_attrs.push_back(attr);
    }
  }

  ERBIUM_ASSIGN_OR_RETURN(OperatorPtr base,
                          BuildSegmentStream(class_name, attrs, key_filter));

  // Join each separate-table multi-valued attribute, grouped into an
  // array per key (the paper's chain of array_agg + group by, and the
  // source of M1's multi-way-join cost in experiment E1).
  for (const std::string& attr : side_attrs) {
    ERBIUM_ASSIGN_OR_RETURN(std::string declaring,
                            DeclaringClass(class_name, attr));
    Table* side =
        catalog_.GetTable(PhysicalMapping::MvTableName(declaring, attr));
    if (side == nullptr) {
      return Status::Internal("missing side table for " + attr);
    }
    OperatorPtr side_scan;
    if (key_filter != nullptr) {
      ERBIUM_ASSIGN_OR_RETURN(std::vector<int> positions,
                              ColumnPositions(*side, key_names));
      side_scan = std::make_unique<IndexLookup>(side, positions, *key_filter);
    } else {
      side_scan = std::make_unique<SeqScan>(side);
    }
    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_names;
    for (const std::string& key_name : key_names) {
      int idx = ColIndex(*side_scan, key_name);
      group_exprs.push_back(ColRef(*side_scan, idx));
      group_names.push_back(key_name);
    }
    int value_idx = ColIndex(*side_scan, attr);
    std::vector<AggregateSpec> aggs;
    aggs.push_back(AggregateSpec{AggKind::kArrayAgg,
                                 ColRef(*side_scan, value_idx), attr, false});
    OperatorPtr grouped = std::make_unique<HashAggregateOp>(
        std::move(side_scan), std::move(group_exprs), std::move(group_names),
        std::move(aggs));
    std::vector<ExprPtr> left_keys;
    std::vector<ExprPtr> right_keys;
    for (size_t i = 0; i < key_names.size(); ++i) {
      left_keys.push_back(
          ColRef(*base, ColIndex(*base, key_names[i])));
      right_keys.push_back(MakeColumnRef(static_cast<int>(i), key_names[i]));
    }
    base = std::make_unique<HashJoinOp>(std::move(base), std::move(grouped),
                                        std::move(left_keys),
                                        std::move(right_keys),
                                        JoinType::kLeftOuter);
  }

  // Final projection: key columns then requested attrs in order; null
  // arrays from outer joins normalize to empty arrays.
  std::vector<Column> out;
  std::vector<ExprPtr> exprs;
  for (const std::string& key_name : key_names) {
    int idx = ColIndex(*base, key_name);
    out.push_back(base->output_columns()[idx]);
    exprs.push_back(MakeColumnRef(idx, key_name));
  }
  for (const std::string& attr : attrs) {
    // The array column appended by the side join is the LAST column with
    // that name; inline columns resolve first-match. Distinguish by
    // whether the attr was a side attr.
    bool is_side = std::find(side_attrs.begin(), side_attrs.end(), attr) !=
                   side_attrs.end();
    int idx = -1;
    if (is_side) {
      const std::vector<Column>& cols = base->output_columns();
      for (size_t i = 0; i < cols.size(); ++i) {
        if (cols[i].name == attr) idx = static_cast<int>(i);
      }
    } else {
      idx = ColIndex(*base, attr);
    }
    if (idx < 0) {
      return Status::AnalysisError("attribute " + attr +
                                   " is not available on " + class_name);
    }
    Column col = base->output_columns()[idx];
    col.name = attr;
    ExprPtr expr = MakeColumnRef(idx, attr);
    if (is_side) {
      expr = MakeFunction(BuiltinFn::kCoalesce,
                          {expr, MakeLiteral(Value::Array({}))});
    }
    out.push_back(col);
    exprs.push_back(std::move(expr));
  }
  return OperatorPtr(std::make_unique<ProjectOp>(std::move(base),
                                                 std::move(out),
                                                 std::move(exprs)));
}

Result<OperatorPtr> MappedDatabase::ScanEntity(
    const std::string& class_name, const std::vector<std::string>& attrs) {
  return BuildEntityPlan(class_name, attrs, nullptr);
}

Result<OperatorPtr> MappedDatabase::LookupEntity(
    const std::string& class_name, const IndexKey& key,
    const std::vector<std::string>& attrs) {
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                          KeyColumnNames(class_name));
  if (key.size() != key_names.size()) {
    return Status::InvalidArgument("key arity mismatch for " + class_name);
  }
  return BuildEntityPlan(class_name, attrs, &key);
}

Result<OperatorPtr> MappedDatabase::ScanMultiValued(
    const std::string& class_name, const std::string& attr) {
  ERBIUM_ASSIGN_OR_RETURN(const AttributeDef* attr_def,
                          FindVisibleAttribute(class_name, attr));
  if (!attr_def->multi_valued) {
    return Status::AnalysisError("attribute " + attr + " of " + class_name +
                                 " is not multi-valued");
  }
  ERBIUM_ASSIGN_OR_RETURN(std::string declaring,
                          DeclaringClass(class_name, attr));
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                          KeyColumnNames(class_name));
  const EntitySetDef* def = schema().FindEntitySet(class_name);
  bool folded_weak =
      def->weak && mapping_.spec().weak_storage(class_name) ==
                       WeakEntityStorage::kFoldedArray;
  if (!folded_weak &&
      mapping_.spec().multi_valued_storage(declaring, attr) ==
          MultiValuedStorage::kSeparateTable) {
    Table* side =
        catalog_.GetTable(PhysicalMapping::MvTableName(declaring, attr));
    OperatorPtr scan = std::make_unique<SeqScan>(side);
    if (class_name == declaring) return scan;
    // Restrict to instances of the narrower class via a semi-join.
    ERBIUM_ASSIGN_OR_RETURN(OperatorPtr members,
                            BuildEntityPlan(class_name, {}, nullptr));
    std::vector<ExprPtr> left_keys;
    std::vector<ExprPtr> right_keys;
    for (const std::string& key_name : key_names) {
      left_keys.push_back(ColRef(*scan, ColIndex(*scan, key_name)));
      right_keys.push_back(
          ColRef(*members, ColIndex(*members, key_name)));
    }
    OperatorPtr joined = std::make_unique<HashJoinOp>(
        std::move(scan), std::move(members), std::move(left_keys),
        std::move(right_keys), JoinType::kInner);
    std::vector<std::string> projection = key_names;
    projection.push_back(attr);
    return ProjectTo(std::move(joined), projection);
  }
  // Array-backed (or folded weak): entity plan + unnest.
  ERBIUM_ASSIGN_OR_RETURN(OperatorPtr base,
                          BuildEntityPlan(class_name, {attr}, nullptr));
  int array_idx = static_cast<int>(key_names.size());
  return OperatorPtr(
      std::make_unique<UnnestOp>(std::move(base), array_idx, attr));
}

Result<OperatorPtr> MappedDatabase::LookupWeakByOwner(
    const std::string& weak_entity, const IndexKey& owner_key,
    const std::vector<std::string>& attrs) {
  const EntitySetDef* def = schema().FindEntitySet(weak_entity);
  if (def == nullptr || !def->weak) {
    return Status::InvalidArgument(weak_entity + " is not a weak entity set");
  }
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> owner_key_names,
                          KeyColumnNames(def->owner));
  if (owner_key.size() != owner_key_names.size()) {
    return Status::InvalidArgument("owner key arity mismatch");
  }
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> key_names,
                          KeyColumnNames(weak_entity));
  SegmentLocation loc = mapping_.segment_location(weak_entity);
  std::vector<std::string> projection = key_names;
  for (const std::string& attr : attrs) {
    if (std::find(projection.begin(), projection.end(), attr) ==
        projection.end()) {
      projection.push_back(attr);
    }
  }
  if (loc == SegmentLocation::kOwnTable) {
    // MV attrs stored separately would need side joins; not supported in
    // this point-access path.
    for (const std::string& attr : attrs) {
      ERBIUM_ASSIGN_OR_RETURN(const AttributeDef* attr_def,
                              FindVisibleAttribute(weak_entity, attr));
      if (attr_def->multi_valued &&
          mapping_.spec().multi_valued_storage(weak_entity, attr) ==
              MultiValuedStorage::kSeparateTable) {
        return Status::NotImplemented(
            "LookupWeakByOwner with separate-table multi-valued attrs");
      }
    }
    Table* table = catalog_.GetTable(weak_entity);
    ERBIUM_ASSIGN_OR_RETURN(std::vector<int> positions,
                            ColumnPositions(*table, owner_key_names));
    OperatorPtr scan =
        std::make_unique<IndexLookup>(table, positions, owner_key);
    return ProjectTo(std::move(scan), projection);
  }
  if (loc == SegmentLocation::kFoldedInOwner) {
    // One owner-row lookup, then unnest the folded array column.
    SegmentLocation owner_loc = mapping_.segment_location(def->owner);
    std::string owner_table_name = mapping_.SegmentTableName(def->owner);
    if (owner_loc != SegmentLocation::kOwnTable &&
        owner_loc != SegmentLocation::kHierarchySingle) {
      return Status::NotImplemented(
          "LookupWeakByOwner through this owner storage");
    }
    Table* owner_table = catalog_.GetTable(owner_table_name);
    ERBIUM_ASSIGN_OR_RETURN(std::vector<int> positions,
                            ColumnPositions(*owner_table, owner_key_names));
    OperatorPtr base =
        std::make_unique<IndexLookup>(owner_table, positions, owner_key);
    int folded_idx = ColIndex(*base, weak_entity);
    if (folded_idx < 0) {
      return Status::Internal("missing folded column " + weak_entity);
    }
    base = std::make_unique<UnnestOp>(std::move(base), folded_idx,
                                      weak_entity + "_element");
    std::vector<Column> out;
    std::vector<ExprPtr> exprs;
    for (const std::string& key_name : owner_key_names) {
      int idx = ColIndex(*base, key_name);
      out.push_back(base->output_columns()[idx]);
      exprs.push_back(MakeColumnRef(idx, key_name));
    }
    ExprPtr element = ColRef(*base, folded_idx);
    for (const AttributeDef& attr : def->attributes) {
      out.push_back(Column{attr.name,
                           PhysicalMapping::PhysicalAttrType(
                               attr, attr.multi_valued),
                           true});
      exprs.push_back(std::make_shared<FieldAccessExpr>(element, attr.name));
    }
    OperatorPtr projected = std::make_unique<ProjectOp>(
        std::move(base), std::move(out), std::move(exprs));
    return ProjectTo(std::move(projected), projection);
  }
  return Status::NotImplemented(
      "LookupWeakByOwner through this weak-entity storage");
}

Result<OperatorPtr> MappedDatabase::ScanRelationshipJoined(
    const std::string& rel_name, const std::vector<std::string>& left_attrs,
    const std::vector<std::string>& right_attrs) {
  const RelationshipSetDef* rel = schema().FindRelationshipSet(rel_name);
  if (rel == nullptr) {
    return Status::NotFound("no relationship set named " + rel_name);
  }
  RelationshipStorage storage = mapping_.spec().relationship_storage(*rel);
  if (storage != RelationshipStorage::kMaterializedJoin &&
      storage != RelationshipStorage::kFactorized) {
    return Status::NotImplemented(
        "relationship " + rel_name + " is not stored joined");
  }
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> left_keys,
                          KeyColumnNames(rel->left.entity));
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> right_keys,
                          KeyColumnNames(rel->right.entity));
  // Partition requested attrs per side: own-segment (available in the
  // joined structure) vs inherited (ancestor joins afterwards). MV
  // side-table attrs are unsupported here.
  struct SideAttrs {
    std::vector<std::string> own;
    std::vector<std::pair<std::string, std::string>> inherited;  // attr,cls
  };
  auto partition = [&](const std::string& cls,
                       const std::vector<std::string>& attrs,
                       const std::vector<std::string>& keys)
      -> Result<SideAttrs> {
    SideAttrs out;
    for (const std::string& attr : attrs) {
      if (std::find(keys.begin(), keys.end(), attr) != keys.end()) continue;
      ERBIUM_ASSIGN_OR_RETURN(const AttributeDef* attr_def,
                              FindVisibleAttribute(cls, attr));
      ERBIUM_ASSIGN_OR_RETURN(std::string declaring,
                              DeclaringClass(cls, attr));
      if (attr_def->multi_valued &&
          mapping_.spec().multi_valued_storage(declaring, attr) ==
              MultiValuedStorage::kSeparateTable) {
        return Status::NotImplemented(
            "joined scan with separate-table multi-valued attribute " + attr);
      }
      if (declaring == cls) {
        out.own.push_back(attr);
      } else {
        out.inherited.emplace_back(attr, declaring);
      }
    }
    return out;
  };
  ERBIUM_ASSIGN_OR_RETURN(
      SideAttrs left_side,
      partition(rel->left.entity, left_attrs, left_keys));
  ERBIUM_ASSIGN_OR_RETURN(
      SideAttrs right_side,
      partition(rel->right.entity, right_attrs, right_keys));

  OperatorPtr base;
  std::map<std::string, int> left_pos;   // name -> position in base
  std::map<std::string, int> right_pos;
  if (storage == RelationshipStorage::kFactorized) {
    FactorizedPair* p = pair(PhysicalMapping::PairName(rel_name));
    base = std::make_unique<FactorizedJoinScan>(p);
    size_t left_arity = p->left_columns().size();
    for (size_t i = 0; i < p->left_columns().size(); ++i) {
      left_pos[p->left_columns()[i].name] = static_cast<int>(i);
    }
    for (size_t i = 0; i < p->right_columns().size(); ++i) {
      right_pos[p->right_columns()[i].name] =
          static_cast<int>(left_arity + i);
    }
  } else {
    Table* table =
        catalog_.GetTable(PhysicalMapping::MaterializedTableName(rel_name));
    base = std::make_unique<SeqScan>(table);
    auto locate = [&](const std::string& role, const std::string& name) {
      return table->schema().ColumnIndex(
          PhysicalMapping::RoleColumnName(role, name));
    };
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> left_seg,
                            mapping_.OwnSegmentColumns(rel->left.entity));
    ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> right_seg,
                            mapping_.OwnSegmentColumns(rel->right.entity));
    for (const Column& c : left_seg) {
      left_pos[c.name] = locate(rel->left.role, c.name);
    }
    for (const Column& c : right_seg) {
      right_pos[c.name] = locate(rel->right.role, c.name);
    }
    // One pass over the wide table: joined rows only.
    ExprPtr both = MakeAnd(
        std::make_shared<IsNullExpr>(
            ColRef(*base, left_pos[left_keys.front()]), true),
        std::make_shared<IsNullExpr>(
            ColRef(*base, right_pos[right_keys.front()]), true));
    base = std::make_unique<FilterOp>(std::move(base), std::move(both));
  }

  // Project into canonical order: left key, left own+inherited slots,
  // right key, right own attrs. Inherited attrs join after projection.
  std::vector<Column> out;
  std::vector<ExprPtr> exprs;
  auto emit = [&](const std::map<std::string, int>& pos,
                  const std::string& name) -> Status {
    auto it = pos.find(name);
    if (it == pos.end()) {
      return Status::Internal("joined scan missing column " + name);
    }
    Column col = base->output_columns()[it->second];
    col.name = name;
    out.push_back(col);
    exprs.push_back(MakeColumnRef(it->second, name));
    return Status::OK();
  };
  for (const std::string& k : left_keys) ERBIUM_RETURN_NOT_OK(emit(left_pos, k));
  for (const std::string& a : left_side.own) {
    ERBIUM_RETURN_NOT_OK(emit(left_pos, a));
  }
  for (const std::string& k : right_keys) {
    ERBIUM_RETURN_NOT_OK(emit(right_pos, k));
  }
  for (const std::string& a : right_side.own) {
    ERBIUM_RETURN_NOT_OK(emit(right_pos, a));
  }
  base = std::make_unique<ProjectOp>(std::move(base), std::move(out),
                                     std::move(exprs));

  // Inherited attributes via ancestor index joins (left side keys are at
  // positions 0.., right side keys follow the left block).
  auto join_ancestors = [&](const SideAttrs& side,
                            const std::vector<std::string>& keys,
                            size_t key_offset) -> Status {
    std::set<std::string> joined;
    for (const auto& [attr, declaring] : side.inherited) {
      if (!joined.insert(declaring).second) continue;
      Table* ancestor = catalog_.GetTable(declaring);
      if (ancestor == nullptr) {
        return Status::Internal("missing ancestor table " + declaring);
      }
      std::vector<ExprPtr> probe;
      for (size_t i = 0; i < keys.size(); ++i) {
        probe.push_back(MakeColumnRef(static_cast<int>(key_offset + i),
                                      keys[i]));
      }
      ERBIUM_ASSIGN_OR_RETURN(std::vector<int> right_positions,
                              ColumnPositions(*ancestor, keys));
      base = std::make_unique<IndexJoinOp>(std::move(base), ancestor,
                                           std::move(probe), right_positions);
    }
    return Status::OK();
  };
  size_t left_block = left_keys.size() + left_side.own.size();
  ERBIUM_RETURN_NOT_OK(join_ancestors(left_side, left_keys, 0));
  ERBIUM_RETURN_NOT_OK(join_ancestors(right_side, right_keys, left_block));

  // Final canonical projection: left key + left_attrs + right key +
  // right_attrs (requested order).
  std::vector<std::string> final_names = left_keys;
  final_names.insert(final_names.end(), left_attrs.begin(), left_attrs.end());
  final_names.insert(final_names.end(), right_keys.begin(), right_keys.end());
  final_names.insert(final_names.end(), right_attrs.begin(),
                     right_attrs.end());
  // Deduplicate while preserving order (requested attrs may repeat keys).
  std::vector<std::string> unique_names;
  std::set<std::string> seen;
  for (const std::string& name : final_names) {
    if (seen.insert(name).second) unique_names.push_back(name);
  }
  return ProjectTo(std::move(base), unique_names);
}

Result<OperatorPtr> MappedDatabase::ScanRelationship(
    const std::string& rel_name) {
  const RelationshipSetDef* rel = schema().FindRelationshipSet(rel_name);
  if (rel == nullptr) {
    return Status::NotFound("no relationship set named " + rel_name);
  }
  RelationshipStorage storage = mapping_.spec().relationship_storage(*rel);
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> left_key,
                          mapping_.KeyColumns(rel->left.entity));
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> right_key,
                          mapping_.KeyColumns(rel->right.entity));
  std::vector<std::string> role_columns;
  for (const Column& c : left_key) {
    role_columns.push_back(
        PhysicalMapping::RoleColumnName(rel->left.role, c.name));
  }
  for (const Column& c : right_key) {
    role_columns.push_back(
        PhysicalMapping::RoleColumnName(rel->right.role, c.name));
  }
  switch (storage) {
    case RelationshipStorage::kJoinTable: {
      Table* table = catalog_.GetTable(rel_name);
      return OperatorPtr(std::make_unique<SeqScan>(table));
    }
    case RelationshipStorage::kForeignKey: {
      // Stream over the many side's FK carrier, filtered to linked rows.
      const Participant& many = rel->many_side();
      const Participant& one = rel->one_side();
      ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> many_keys,
                              KeyColumnNames(many.entity));
      std::vector<std::string> fk_names;
      for (const Column& c : one.entity == rel->left.entity ? left_key
                                                            : right_key) {
        fk_names.push_back(PhysicalMapping::FkColumnName(rel_name, c.name));
      }
      // Scan the FK carrier tables directly so the FK columns survive.
      std::vector<std::string> needed = many_keys;
      needed.insert(needed.end(), fk_names.begin(), fk_names.end());
      for (const AttributeDef& attr : rel->attributes) {
        needed.push_back(PhysicalMapping::FkColumnName(rel_name, attr.name));
      }
      std::vector<std::string> carrier_tables;
      switch (mapping_.segment_location(many.entity)) {
        case SegmentLocation::kOwnTable:
          carrier_tables.push_back(many.entity);
          break;
        case SegmentLocation::kHierarchySingle:
          // Rows of other classes carry null FKs and are filtered below.
          carrier_tables.push_back(mapping_.SegmentTableName(many.entity));
          break;
        case SegmentLocation::kHierarchyDisjoint:
          for (const std::string& cls :
               schema().SelfAndDescendants(many.entity)) {
            carrier_tables.push_back(cls);
          }
          break;
        default:
          return Status::Internal("FK carrier for " + many.entity +
                                  " has no physical table");
      }
      std::vector<OperatorPtr> branches;
      for (const std::string& carrier : carrier_tables) {
        Table* table = catalog_.GetTable(carrier);
        if (table == nullptr) {
          return Status::Internal("missing carrier table " + carrier);
        }
        OperatorPtr scan = std::make_unique<SeqScan>(table);
        ERBIUM_ASSIGN_OR_RETURN(scan, ProjectTo(std::move(scan), needed));
        branches.push_back(std::move(scan));
      }
      OperatorPtr base =
          branches.size() == 1
              ? std::move(branches.front())
              : OperatorPtr(std::make_unique<UnionAllOp>(std::move(branches)));
      int first_fk = ColIndex(*base, fk_names.front());
      if (first_fk < 0) {
        return Status::Internal("missing FK column " + fk_names.front());
      }
      base = std::make_unique<FilterOp>(
          std::move(base),
          std::make_shared<IsNullExpr>(ColRef(*base, first_fk), true));
      // Project to role-prefixed output: left role columns then right.
      std::vector<Column> out;
      std::vector<ExprPtr> exprs;
      auto emit = [&](const Participant& p, const std::vector<Column>& key,
                      bool is_many) -> Status {
        for (size_t i = 0; i < key.size(); ++i) {
          std::string source =
              is_many ? many_keys[i]
                      : PhysicalMapping::FkColumnName(rel_name, key[i].name);
          int idx = ColIndex(*base, source);
          if (idx < 0) return Status::Internal("missing column " + source);
          out.push_back(
              Column{PhysicalMapping::RoleColumnName(p.role, key[i].name),
                     key[i].type, false});
          exprs.push_back(MakeColumnRef(idx, out.back().name));
        }
        return Status::OK();
      };
      bool left_is_many = many.role == rel->left.role;
      ERBIUM_RETURN_NOT_OK(emit(rel->left, left_key, left_is_many));
      ERBIUM_RETURN_NOT_OK(emit(rel->right, right_key, !left_is_many));
      for (const AttributeDef& attr : rel->attributes) {
        int idx = ColIndex(
            *base, PhysicalMapping::FkColumnName(rel_name, attr.name));
        if (idx < 0) {
          return Status::Internal("missing FK attribute column " + attr.name);
        }
        out.push_back(Column{attr.name, attr.type, true});
        exprs.push_back(MakeColumnRef(idx, attr.name));
      }
      return OperatorPtr(std::make_unique<ProjectOp>(
          std::move(base), std::move(out), std::move(exprs)));
    }
    case RelationshipStorage::kMaterializedJoin: {
      Table* table = catalog_.GetTable(
          PhysicalMapping::MaterializedTableName(rel_name));
      OperatorPtr base = std::make_unique<SeqScan>(table);
      int left_idx = ColIndex(*base, role_columns.front());
      int right_idx = ColIndex(*base, role_columns[left_key.size()]);
      ExprPtr both_present =
          MakeAnd(std::make_shared<IsNullExpr>(ColRef(*base, left_idx), true),
                  std::make_shared<IsNullExpr>(ColRef(*base, right_idx), true));
      base = std::make_unique<FilterOp>(std::move(base),
                                        std::move(both_present));
      std::vector<std::string> projection = role_columns;
      for (const AttributeDef& attr : rel->attributes) {
        projection.push_back(attr.name);
      }
      return ProjectTo(std::move(base), projection);
    }
    case RelationshipStorage::kFactorized: {
      FactorizedPair* p = pair(PhysicalMapping::PairName(rel_name));
      OperatorPtr base = std::make_unique<FactorizedJoinScan>(p);
      // Key columns are the leading columns of each side's segment.
      std::vector<Column> out;
      std::vector<ExprPtr> exprs;
      size_t left_arity = p->left_columns().size();
      for (size_t i = 0; i < left_key.size(); ++i) {
        out.push_back(Column{role_columns[i], left_key[i].type, false});
        exprs.push_back(MakeColumnRef(static_cast<int>(i), out.back().name));
      }
      for (size_t i = 0; i < right_key.size(); ++i) {
        out.push_back(Column{role_columns[left_key.size() + i],
                             right_key[i].type, false});
        exprs.push_back(MakeColumnRef(static_cast<int>(left_arity + i),
                                      out.back().name));
      }
      return OperatorPtr(std::make_unique<ProjectOp>(
          std::move(base), std::move(out), std::move(exprs)));
    }
  }
  return Status::Internal("unreachable relationship storage");
}

}  // namespace erbium
