#include "mapping/database.h"

namespace erbium {

namespace {

/// Copies all `<role>_`-prefixed column values from `src` into `dst`.
void CopyRoleColumns(const TableSchema& schema, const std::string& role,
                     const Row& src, Row* dst) {
  std::string prefix = role + "_";
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (schema.column(i).name.rfind(prefix, 0) == 0) {
      (*dst)[i] = src[i];
    }
  }
}

}  // namespace

Result<size_t> MappedDatabase::CountRelationships(
    const std::string& rel_name) {
  ERBIUM_ASSIGN_OR_RETURN(OperatorPtr plan, ScanRelationship(rel_name));
  ERBIUM_RETURN_NOT_OK(plan->Open());
  size_t count = 0;
  Row row;
  while (plan->Next(&row)) ++count;
  return count;
}

Status MappedDatabase::InsertRelationshipImpl(const std::string& rel_name,
                                          const IndexKey& left_key,
                                          const IndexKey& right_key,
                                          const Value& attrs) {
  const RelationshipSetDef* rel = schema().FindRelationshipSet(rel_name);
  if (rel == nullptr) {
    return Status::NotFound("no relationship set named " + rel_name);
  }
  // Referential integrity on both sides — enforceable under every
  // mapping here (the paper notes this is hard on raw relational M3).
  ERBIUM_ASSIGN_OR_RETURN(bool left_exists,
                          EntityExists(rel->left.entity, left_key));
  if (!left_exists && remote_entity_check_) {
    ERBIUM_ASSIGN_OR_RETURN(left_exists,
                            remote_entity_check_(rel->left.entity, left_key));
  }
  if (!left_exists) {
    return Status::ConstraintViolation("left participant of " + rel_name +
                                       " does not exist");
  }
  ERBIUM_ASSIGN_OR_RETURN(bool right_exists,
                          EntityExists(rel->right.entity, right_key));
  if (!right_exists && remote_entity_check_) {
    ERBIUM_ASSIGN_OR_RETURN(
        right_exists, remote_entity_check_(rel->right.entity, right_key));
  }
  if (!right_exists) {
    return Status::ConstraintViolation("right participant of " + rel_name +
                                       " does not exist");
  }

  RelationshipStorage storage = mapping_.spec().relationship_storage(*rel);
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> left_cols,
                          mapping_.KeyColumns(rel->left.entity));
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> right_cols,
                          mapping_.KeyColumns(rel->right.entity));

  // Cardinality: a kOne participant admits at most one instance per
  // instance of the other side. Foreign-key storage enforces this through
  // FK occupancy, join tables through their unique indexes; the
  // joined-storage variants are probed explicitly here.
  if (storage == RelationshipStorage::kFactorized) {
    FactorizedPair* p = pair(PhysicalMapping::PairName(rel_name));
    if (rel->left.cardinality == Cardinality::kOne) {
      int64_t r = p->FindRight(right_key);
      if (r >= 0 && !p->left_neighbors(r).empty()) {
        return Status::ConstraintViolation(
            "cardinality violation: right participant already linked in " +
            rel_name);
      }
    }
    if (rel->right.cardinality == Cardinality::kOne) {
      int64_t l = p->FindLeft(left_key);
      if (l >= 0 && !p->right_neighbors(l).empty()) {
        return Status::ConstraintViolation(
            "cardinality violation: left participant already linked in " +
            rel_name);
      }
    }
  } else if (storage == RelationshipStorage::kMaterializedJoin) {
    Table* table =
        catalog_.GetTable(PhysicalMapping::MaterializedTableName(rel_name));
    auto linked = [&](const Participant& p, const std::vector<Column>& cols,
                      const IndexKey& key, const Participant& other,
                      const std::vector<Column>& other_cols) -> Result<bool> {
      std::vector<std::string> names;
      for (const Column& c : cols) {
        names.push_back(PhysicalMapping::RoleColumnName(p.role, c.name));
      }
      ERBIUM_ASSIGN_OR_RETURN(std::vector<int> positions,
                              ColumnPositions(*table, names));
      std::vector<std::string> other_names;
      for (const Column& c : other_cols) {
        other_names.push_back(
            PhysicalMapping::RoleColumnName(other.role, c.name));
      }
      ERBIUM_ASSIGN_OR_RETURN(std::vector<int> other_positions,
                              ColumnPositions(*table, other_names));
      std::vector<RowId> ids;
      table->LookupEqual(positions, key, &ids);
      for (RowId id : ids) {
        if (!table->row(id)[other_positions.front()].is_null()) return true;
      }
      return false;
    };
    if (rel->left.cardinality == Cardinality::kOne) {
      ERBIUM_ASSIGN_OR_RETURN(
          bool right_linked,
          linked(rel->right, right_cols, right_key, rel->left, left_cols));
      if (right_linked) {
        return Status::ConstraintViolation(
            "cardinality violation: right participant already linked in " +
            rel_name);
      }
    }
    if (rel->right.cardinality == Cardinality::kOne) {
      ERBIUM_ASSIGN_OR_RETURN(
          bool left_linked,
          linked(rel->left, left_cols, left_key, rel->right, right_cols));
      if (left_linked) {
        return Status::ConstraintViolation(
            "cardinality violation: left participant already linked in " +
            rel_name);
      }
    }
  }

  auto attr_value = [&](const std::string& name) -> Value {
    if (attrs.kind() != TypeKind::kStruct) return Value::Null();
    const Value* v = attrs.FindField(name);
    return v == nullptr ? Value::Null() : *v;
  };

  switch (storage) {
    case RelationshipStorage::kForeignKey: {
      bool many_is_left = rel->many_side().role == rel->left.role;
      const IndexKey& many_key = many_is_left ? left_key : right_key;
      const IndexKey& one_key = many_is_left ? right_key : left_key;
      const std::vector<Column>& one_cols =
          many_is_left ? right_cols : left_cols;
      ERBIUM_ASSIGN_OR_RETURN(
          SegmentRef ref, FindSegmentRow(rel->many_side().entity, many_key));
      Row row = ref.table->row(ref.row);
      for (size_t i = 0; i < one_cols.size(); ++i) {
        int pos = ref.table->schema().ColumnIndex(
            PhysicalMapping::FkColumnName(rel_name, one_cols[i].name));
        if (pos < 0) return Status::Internal("missing FK column");
        if (!row[pos].is_null()) {
          return Status::ConstraintViolation(
              "participant already linked through " + rel_name);
        }
        row[pos] = one_key[i];
      }
      for (const AttributeDef& attr : rel->attributes) {
        int pos = ref.table->schema().ColumnIndex(
            PhysicalMapping::FkColumnName(rel_name, attr.name));
        if (pos >= 0) row[pos] = attr_value(attr.name);
      }
      return ref.table->Update(ref.row, std::move(row));
    }
    case RelationshipStorage::kJoinTable: {
      Table* table = catalog_.GetTable(rel_name);
      // Reject duplicate edges.
      std::vector<std::string> left_names;
      for (const Column& c : left_cols) {
        left_names.push_back(
            PhysicalMapping::RoleColumnName(rel->left.role, c.name));
      }
      ERBIUM_ASSIGN_OR_RETURN(std::vector<int> left_positions,
                              ColumnPositions(*table, left_names));
      std::vector<RowId> candidates;
      table->LookupEqual(left_positions, left_key, &candidates);
      for (RowId id : candidates) {
        const Row& existing = table->row(id);
        bool same = true;
        for (size_t i = 0; i < right_key.size(); ++i) {
          if (existing[left_cols.size() + i] != right_key[i]) {
            same = false;
            break;
          }
        }
        if (same) {
          return Status::AlreadyExists("relationship instance already exists");
        }
      }
      Row row = left_key;
      row.insert(row.end(), right_key.begin(), right_key.end());
      for (const AttributeDef& attr : rel->attributes) {
        row.push_back(attr_value(attr.name));
      }
      return table->Insert(std::move(row)).status();
    }
    case RelationshipStorage::kMaterializedJoin: {
      Table* table = catalog_.GetTable(
          PhysicalMapping::MaterializedTableName(rel_name));
      const TableSchema& ts = table->schema();
      std::vector<std::string> left_names, right_names;
      for (const Column& c : left_cols) {
        left_names.push_back(
            PhysicalMapping::RoleColumnName(rel->left.role, c.name));
      }
      for (const Column& c : right_cols) {
        right_names.push_back(
            PhysicalMapping::RoleColumnName(rel->right.role, c.name));
      }
      ERBIUM_ASSIGN_OR_RETURN(std::vector<int> left_positions,
                              ColumnPositions(*table, left_names));
      ERBIUM_ASSIGN_OR_RETURN(std::vector<int> right_positions,
                              ColumnPositions(*table, right_names));
      std::vector<RowId> left_rows, right_rows;
      table->LookupEqual(left_positions, left_key, &left_rows);
      table->LookupEqual(right_positions, right_key, &right_rows);
      if (left_rows.empty() || right_rows.empty()) {
        return Status::Internal("materialized segment rows missing");
      }
      // Duplicate edge?
      for (RowId lid : left_rows) {
        const Row& row = table->row(lid);
        bool same = true;
        for (size_t i = 0; i < right_positions.size(); ++i) {
          if (row[right_positions[i]] != right_key[i]) {
            same = false;
            break;
          }
        }
        if (same) {
          return Status::AlreadyExists("relationship instance already exists");
        }
      }
      auto is_lone = [&](RowId id, const std::vector<int>& other_side) {
        return table->row(id)[other_side.front()].is_null();
      };
      RowId lone_left = 0;
      bool has_lone_left = false;
      for (RowId id : left_rows) {
        if (is_lone(id, right_positions)) {
          lone_left = id;
          has_lone_left = true;
          break;
        }
      }
      RowId lone_right = 0;
      bool has_lone_right = false;
      for (RowId id : right_rows) {
        if (is_lone(id, left_positions)) {
          lone_right = id;
          has_lone_right = true;
          break;
        }
      }
      const Row left_source = table->row(left_rows.front());
      const Row right_source = table->row(right_rows.front());
      Row merged(ts.num_columns(), Value::Null());
      CopyRoleColumns(ts, rel->left.role, left_source, &merged);
      CopyRoleColumns(ts, rel->right.role, right_source, &merged);
      for (const AttributeDef& attr : rel->attributes) {
        int pos = ts.ColumnIndex(attr.name);
        if (pos >= 0) merged[pos] = attr_value(attr.name);
      }
      if (has_lone_left && has_lone_right) {
        ERBIUM_RETURN_NOT_OK(table->Update(lone_left, std::move(merged)));
        return table->Delete(lone_right);
      }
      if (has_lone_left) {
        return table->Update(lone_left, std::move(merged));
      }
      if (has_lone_right) {
        return table->Update(lone_right, std::move(merged));
      }
      return table->Insert(std::move(merged)).status();
    }
    case RelationshipStorage::kFactorized: {
      FactorizedPair* p = pair(PhysicalMapping::PairName(rel_name));
      return p->Connect(left_key, right_key);
    }
  }
  return Status::Internal("unreachable relationship storage");
}

Status MappedDatabase::DeleteRelationshipImpl(const std::string& rel_name,
                                          const IndexKey& left_key,
                                          const IndexKey& right_key) {
  const RelationshipSetDef* rel = schema().FindRelationshipSet(rel_name);
  if (rel == nullptr) {
    return Status::NotFound("no relationship set named " + rel_name);
  }
  RelationshipStorage storage = mapping_.spec().relationship_storage(*rel);
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> left_cols,
                          mapping_.KeyColumns(rel->left.entity));
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Column> right_cols,
                          mapping_.KeyColumns(rel->right.entity));
  switch (storage) {
    case RelationshipStorage::kForeignKey: {
      bool many_is_left = rel->many_side().role == rel->left.role;
      const IndexKey& many_key = many_is_left ? left_key : right_key;
      const IndexKey& one_key = many_is_left ? right_key : left_key;
      const std::vector<Column>& one_cols =
          many_is_left ? right_cols : left_cols;
      ERBIUM_ASSIGN_OR_RETURN(
          SegmentRef ref, FindSegmentRow(rel->many_side().entity, many_key));
      Row row = ref.table->row(ref.row);
      for (size_t i = 0; i < one_cols.size(); ++i) {
        int pos = ref.table->schema().ColumnIndex(
            PhysicalMapping::FkColumnName(rel_name, one_cols[i].name));
        if (pos < 0 || row[pos].is_null() || row[pos] != one_key[i]) {
          return Status::NotFound("relationship instance not found");
        }
      }
      for (size_t i = 0; i < one_cols.size(); ++i) {
        int pos = ref.table->schema().ColumnIndex(
            PhysicalMapping::FkColumnName(rel_name, one_cols[i].name));
        row[pos] = Value::Null();
      }
      for (const AttributeDef& attr : rel->attributes) {
        int pos = ref.table->schema().ColumnIndex(
            PhysicalMapping::FkColumnName(rel_name, attr.name));
        if (pos >= 0) row[pos] = Value::Null();
      }
      return ref.table->Update(ref.row, std::move(row));
    }
    case RelationshipStorage::kJoinTable: {
      Table* table = catalog_.GetTable(rel_name);
      std::vector<std::string> left_names;
      for (const Column& c : left_cols) {
        left_names.push_back(
            PhysicalMapping::RoleColumnName(rel->left.role, c.name));
      }
      ERBIUM_ASSIGN_OR_RETURN(std::vector<int> left_positions,
                              ColumnPositions(*table, left_names));
      std::vector<RowId> candidates;
      table->LookupEqual(left_positions, left_key, &candidates);
      for (RowId id : candidates) {
        const Row& row = table->row(id);
        bool same = true;
        for (size_t i = 0; i < right_key.size(); ++i) {
          if (row[left_cols.size() + i] != right_key[i]) {
            same = false;
            break;
          }
        }
        if (same) return table->Delete(id);
      }
      return Status::NotFound("relationship instance not found");
    }
    case RelationshipStorage::kMaterializedJoin: {
      Table* table = catalog_.GetTable(
          PhysicalMapping::MaterializedTableName(rel_name));
      const TableSchema& ts = table->schema();
      std::vector<std::string> left_names, right_names;
      for (const Column& c : left_cols) {
        left_names.push_back(
            PhysicalMapping::RoleColumnName(rel->left.role, c.name));
      }
      for (const Column& c : right_cols) {
        right_names.push_back(
            PhysicalMapping::RoleColumnName(rel->right.role, c.name));
      }
      ERBIUM_ASSIGN_OR_RETURN(std::vector<int> left_positions,
                              ColumnPositions(*table, left_names));
      ERBIUM_ASSIGN_OR_RETURN(std::vector<int> right_positions,
                              ColumnPositions(*table, right_names));
      std::vector<RowId> left_rows;
      table->LookupEqual(left_positions, left_key, &left_rows);
      RowId edge_row = 0;
      bool found = false;
      for (RowId id : left_rows) {
        const Row& row = table->row(id);
        bool same = true;
        for (size_t i = 0; i < right_positions.size(); ++i) {
          if (row[right_positions[i]].is_null() ||
              row[right_positions[i]] != right_key[i]) {
            same = false;
            break;
          }
        }
        if (same) {
          edge_row = id;
          found = true;
          break;
        }
      }
      if (!found) return Status::NotFound("relationship instance not found");
      // Preserve lone segments when this was their last row.
      std::vector<RowId> right_rows;
      table->LookupEqual(right_positions, right_key, &right_rows);
      Row original = table->row(edge_row);
      ERBIUM_RETURN_NOT_OK(table->Delete(edge_row));
      if (left_rows.size() == 1) {
        Row lone(ts.num_columns(), Value::Null());
        CopyRoleColumns(ts, rel->left.role, original, &lone);
        ERBIUM_RETURN_NOT_OK(table->Insert(std::move(lone)).status());
      }
      if (right_rows.size() == 1) {
        Row lone(ts.num_columns(), Value::Null());
        CopyRoleColumns(ts, rel->right.role, original, &lone);
        ERBIUM_RETURN_NOT_OK(table->Insert(std::move(lone)).status());
      }
      return Status::OK();
    }
    case RelationshipStorage::kFactorized: {
      FactorizedPair* p = pair(PhysicalMapping::PairName(rel_name));
      return p->Disconnect(left_key, right_key);
    }
  }
  return Status::Internal("unreachable relationship storage");
}

}  // namespace erbium
