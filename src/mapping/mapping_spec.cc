#include "mapping/mapping_spec.h"

#include <cctype>

namespace erbium {

Result<MultiValuedStorage> MultiValuedStorageFromString(const std::string& s) {
  if (s == "separate_table") return MultiValuedStorage::kSeparateTable;
  if (s == "array") return MultiValuedStorage::kArray;
  return Status::ParseError("unknown multi-valued storage: " + s);
}

Result<HierarchyStorage> HierarchyStorageFromString(const std::string& s) {
  if (s == "class_table") return HierarchyStorage::kClassTable;
  if (s == "single_table") return HierarchyStorage::kSingleTable;
  if (s == "disjoint_tables") return HierarchyStorage::kDisjointTables;
  return Status::ParseError("unknown hierarchy storage: " + s);
}

Result<WeakEntityStorage> WeakEntityStorageFromString(const std::string& s) {
  if (s == "own_table") return WeakEntityStorage::kOwnTable;
  if (s == "folded_array") return WeakEntityStorage::kFoldedArray;
  return Status::ParseError("unknown weak-entity storage: " + s);
}

Result<RelationshipStorage> RelationshipStorageFromString(
    const std::string& s) {
  if (s == "foreign_key") return RelationshipStorage::kForeignKey;
  if (s == "join_table") return RelationshipStorage::kJoinTable;
  if (s == "materialized_join") return RelationshipStorage::kMaterializedJoin;
  if (s == "factorized") return RelationshipStorage::kFactorized;
  return Status::ParseError("unknown relationship storage: " + s);
}

const char* ToString(MultiValuedStorage v) {
  switch (v) {
    case MultiValuedStorage::kSeparateTable:
      return "separate_table";
    case MultiValuedStorage::kArray:
      return "array";
  }
  return "?";
}

const char* ToString(HierarchyStorage v) {
  switch (v) {
    case HierarchyStorage::kClassTable:
      return "class_table";
    case HierarchyStorage::kSingleTable:
      return "single_table";
    case HierarchyStorage::kDisjointTables:
      return "disjoint_tables";
  }
  return "?";
}

const char* ToString(WeakEntityStorage v) {
  switch (v) {
    case WeakEntityStorage::kOwnTable:
      return "own_table";
    case WeakEntityStorage::kFoldedArray:
      return "folded_array";
  }
  return "?";
}

const char* ToString(RelationshipStorage v) {
  switch (v) {
    case RelationshipStorage::kForeignKey:
      return "foreign_key";
    case RelationshipStorage::kJoinTable:
      return "join_table";
    case RelationshipStorage::kMaterializedJoin:
      return "materialized_join";
    case RelationshipStorage::kFactorized:
      return "factorized";
  }
  return "?";
}

MappingSpec MappingSpec::Normalized(std::string name) {
  MappingSpec spec;
  spec.name = std::move(name);
  return spec;
}

MultiValuedStorage MappingSpec::multi_valued_storage(
    const std::string& entity, const std::string& attr) const {
  auto it = multi_valued_overrides.find(entity + "." + attr);
  return it == multi_valued_overrides.end() ? default_multi_valued
                                            : it->second;
}

HierarchyStorage MappingSpec::hierarchy_storage(const std::string& root) const {
  auto it = hierarchy_overrides.find(root);
  return it == hierarchy_overrides.end() ? default_hierarchy : it->second;
}

WeakEntityStorage MappingSpec::weak_storage(
    const std::string& weak_entity) const {
  auto it = weak_overrides.find(weak_entity);
  return it == weak_overrides.end() ? default_weak : it->second;
}

RelationshipStorage MappingSpec::relationship_storage(
    const RelationshipSetDef& rel) const {
  auto it = relationship_overrides.find(rel.name);
  if (it != relationship_overrides.end()) return it->second;
  if (rel.many_to_many() || rel.one_to_one()) return default_many_many;
  return default_many_one;
}

std::string MappingSpec::ToString() const {
  // Complete one-line summary: every default group plus every override,
  // so EXPLAIN headers and bench labels fully identify the mapping.
  std::string out = name + "{mv=" + erbium::ToString(default_multi_valued);
  for (const auto& [attr, storage] : multi_valued_overrides) {
    out += "," + attr + ":" + erbium::ToString(storage);
  }
  out += ", hier=";
  out += erbium::ToString(default_hierarchy);
  for (const auto& [root, storage] : hierarchy_overrides) {
    out += "," + root + ":" + erbium::ToString(storage);
  }
  out += ", weak=";
  out += erbium::ToString(default_weak);
  for (const auto& [weak, storage] : weak_overrides) {
    out += "," + weak + ":" + erbium::ToString(storage);
  }
  out += ", rel=";
  out += erbium::ToString(default_many_many);
  out += "/";
  out += erbium::ToString(default_many_one);
  for (const auto& [rel, storage] : relationship_overrides) {
    out += "," + rel + ":" + erbium::ToString(storage);
  }
  out += "}";
  return out;
}

std::string MappingSpec::ToJson() const {
  auto quote = [](const std::string& s) { return "\"" + s + "\""; };
  std::string out = "{";
  out += quote("name") + ": " + quote(name);
  out += ", " + quote("default_multi_valued") + ": " +
         quote(erbium::ToString(default_multi_valued));
  out += ", " + quote("default_hierarchy") + ": " +
         quote(erbium::ToString(default_hierarchy));
  out += ", " + quote("default_weak") + ": " +
         quote(erbium::ToString(default_weak));
  out += ", " + quote("default_many_many") + ": " +
         quote(erbium::ToString(default_many_many));
  out += ", " + quote("default_many_one") + ": " +
         quote(erbium::ToString(default_many_one));
  auto emit_map = [&](const char* key, const auto& map) {
    out += ", " + quote(key) + ": {";
    bool first = true;
    for (const auto& [k, v] : map) {
      if (!first) out += ", ";
      first = false;
      out += quote(k) + ": " + quote(erbium::ToString(v));
    }
    out += "}";
  };
  emit_map("multi_valued_overrides", multi_valued_overrides);
  emit_map("hierarchy_overrides", hierarchy_overrides);
  emit_map("weak_overrides", weak_overrides);
  emit_map("relationship_overrides", relationship_overrides);
  out += "}";
  return out;
}

namespace {

/// Minimal parser for the flat JSON shape ToJson emits: one object of
/// string values and string->string sub-objects.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& text) : text_(text) {}

  Status Parse(std::map<std::string, std::string>* scalars,
               std::map<std::string, std::map<std::string, std::string>>*
                   objects) {
    SkipSpace();
    ERBIUM_RETURN_NOT_OK(Expect('{'));
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      ERBIUM_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      ERBIUM_RETURN_NOT_OK(Expect(':'));
      SkipSpace();
      if (Peek() == '{') {
        ++pos_;
        std::map<std::string, std::string> nested;
        SkipSpace();
        if (Peek() != '}') {
          while (true) {
            ERBIUM_ASSIGN_OR_RETURN(std::string nested_key, ParseString());
            SkipSpace();
            ERBIUM_RETURN_NOT_OK(Expect(':'));
            SkipSpace();
            ERBIUM_ASSIGN_OR_RETURN(std::string nested_value, ParseString());
            nested[nested_key] = nested_value;
            SkipSpace();
            if (Peek() == ',') {
              ++pos_;
              SkipSpace();
              continue;
            }
            break;
          }
        }
        ERBIUM_RETURN_NOT_OK(Expect('}'));
        (*objects)[key] = std::move(nested);
      } else {
        ERBIUM_ASSIGN_OR_RETURN(std::string value, ParseString());
        (*scalars)[key] = value;
      }
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        SkipSpace();
        continue;
      }
      break;
    }
    return Expect('}');
  }

 private:
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    if (Peek() != c) {
      return Status::ParseError(std::string("expected '") + c +
                                "' in mapping JSON at offset " +
                                std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::string> ParseString() {
    ERBIUM_RETURN_NOT_OK(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out.push_back(text_[pos_++]);
    }
    ERBIUM_RETURN_NOT_OK(Expect('"'));
    return out;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<MappingSpec> MappingSpec::FromJson(const std::string& json) {
  std::map<std::string, std::string> scalars;
  std::map<std::string, std::map<std::string, std::string>> objects;
  FlatJsonParser parser(json);
  ERBIUM_RETURN_NOT_OK(parser.Parse(&scalars, &objects));
  MappingSpec spec;
  auto scalar = [&](const char* key) -> Result<std::string> {
    auto it = scalars.find(key);
    if (it == scalars.end()) {
      return Status::ParseError(std::string("mapping JSON missing ") + key);
    }
    return it->second;
  };
  ERBIUM_ASSIGN_OR_RETURN(spec.name, scalar("name"));
  {
    ERBIUM_ASSIGN_OR_RETURN(std::string v, scalar("default_multi_valued"));
    ERBIUM_ASSIGN_OR_RETURN(spec.default_multi_valued,
                            MultiValuedStorageFromString(v));
  }
  {
    ERBIUM_ASSIGN_OR_RETURN(std::string v, scalar("default_hierarchy"));
    ERBIUM_ASSIGN_OR_RETURN(spec.default_hierarchy,
                            HierarchyStorageFromString(v));
  }
  {
    ERBIUM_ASSIGN_OR_RETURN(std::string v, scalar("default_weak"));
    ERBIUM_ASSIGN_OR_RETURN(spec.default_weak,
                            WeakEntityStorageFromString(v));
  }
  {
    ERBIUM_ASSIGN_OR_RETURN(std::string v, scalar("default_many_many"));
    ERBIUM_ASSIGN_OR_RETURN(spec.default_many_many,
                            RelationshipStorageFromString(v));
  }
  {
    ERBIUM_ASSIGN_OR_RETURN(std::string v, scalar("default_many_one"));
    ERBIUM_ASSIGN_OR_RETURN(spec.default_many_one,
                            RelationshipStorageFromString(v));
  }
  for (const auto& [key, value] : objects["multi_valued_overrides"]) {
    ERBIUM_ASSIGN_OR_RETURN(spec.multi_valued_overrides[key],
                            MultiValuedStorageFromString(value));
  }
  for (const auto& [key, value] : objects["hierarchy_overrides"]) {
    ERBIUM_ASSIGN_OR_RETURN(spec.hierarchy_overrides[key],
                            HierarchyStorageFromString(value));
  }
  for (const auto& [key, value] : objects["weak_overrides"]) {
    ERBIUM_ASSIGN_OR_RETURN(spec.weak_overrides[key],
                            WeakEntityStorageFromString(value));
  }
  for (const auto& [key, value] : objects["relationship_overrides"]) {
    ERBIUM_ASSIGN_OR_RETURN(spec.relationship_overrides[key],
                            RelationshipStorageFromString(value));
  }
  return spec;
}

}  // namespace erbium
