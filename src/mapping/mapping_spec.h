#ifndef ERBIUM_MAPPING_MAPPING_SPEC_H_
#define ERBIUM_MAPPING_MAPPING_SPEC_H_

#include <map>
#include <string>

#include "common/status.h"
#include "er/er_schema.h"

namespace erbium {

/// Physical storage of a multi-valued attribute (paper Figure 2 / M1 vs
/// M2): a separate (full-key, value) side table, or an array column on
/// the owning entity's table.
enum class MultiValuedStorage { kSeparateTable, kArray };

/// Physical storage of an ISA hierarchy (paper Section 3 / M1, M3, M4):
///   kClassTable      root table with common attributes + one delta table
///                    per subclass holding key + subclass-only attributes;
///   kSingleTable     one table for the whole hierarchy with a type
///                    discriminator column (requires disjoint
///                    specializations);
///   kDisjointTables  one full-width table per class, each holding only
///                    the entities whose most-specific class it is
///                    (requires disjoint specializations).
enum class HierarchyStorage { kClassTable, kSingleTable, kDisjointTables };

/// Physical storage of a weak entity set (M1 vs M5): its own table keyed
/// by owner key + partial key, or folded into the owner's table as an
/// array of composite values.
enum class WeakEntityStorage { kOwnTable, kFoldedArray };

/// Physical storage of a relationship set (M1 vs M6):
///   kForeignKey        1:N only; key of the one side folded into the
///                      many side's table;
///   kJoinTable         a separate (left key, right key, attrs) table;
///   kMaterializedJoin  both entities' own segments stored together in a
///                      single wide table, one row per relationship
///                      instance (full-outer so lone entities survive) —
///                      the PostgreSQL-style M6 with its duplication;
///   kFactorized        both segments stored once in a compressed
///                      multi-relational structure connected by physical
///                      pointers (the representation the paper argues is
///                      needed to make M6 viable).
enum class RelationshipStorage {
  kForeignKey,
  kJoinTable,
  kMaterializedJoin,
  kFactorized,
};

const char* ToString(MultiValuedStorage v);
const char* ToString(HierarchyStorage v);
const char* ToString(WeakEntityStorage v);
const char* ToString(RelationshipStorage v);

/// A logical-to-physical mapping choice for every feature of an E/R
/// schema: defaults plus per-feature overrides. A MappingSpec plus an
/// ERSchema compiles (PhysicalMapping::Compile) into concrete table
/// schemas and a cover of the E/R graph.
struct MappingSpec {
  std::string name = "custom";

  MultiValuedStorage default_multi_valued = MultiValuedStorage::kSeparateTable;
  /// Keyed by "<entity>.<attr>".
  std::map<std::string, MultiValuedStorage> multi_valued_overrides;

  HierarchyStorage default_hierarchy = HierarchyStorage::kClassTable;
  /// Keyed by hierarchy root entity set name.
  std::map<std::string, HierarchyStorage> hierarchy_overrides;

  WeakEntityStorage default_weak = WeakEntityStorage::kOwnTable;
  std::map<std::string, WeakEntityStorage> weak_overrides;

  /// Default for many-to-many (and 1:1) relationship sets.
  RelationshipStorage default_many_many = RelationshipStorage::kJoinTable;
  /// Default for 1:N relationship sets.
  RelationshipStorage default_many_one = RelationshipStorage::kForeignKey;
  std::map<std::string, RelationshipStorage> relationship_overrides;

  /// Fully normalized baseline (paper M1).
  static MappingSpec Normalized(std::string name = "M1");

  MultiValuedStorage multi_valued_storage(const std::string& entity,
                                          const std::string& attr) const;
  HierarchyStorage hierarchy_storage(const std::string& root) const;
  WeakEntityStorage weak_storage(const std::string& weak_entity) const;
  RelationshipStorage relationship_storage(const RelationshipSetDef& rel) const;

  /// One-line summary for logs/benchmark labels.
  std::string ToString() const;

  /// JSON serialization, persisted in the mapping catalog table (the
  /// paper stores the chosen mapping "in a table in the database as a
  /// JSON object").
  std::string ToJson() const;

  /// Parses the ToJson format back into a spec (used when a database is
  /// re-initialized from its catalog).
  static Result<MappingSpec> FromJson(const std::string& json);
};

/// Parses a storage-kind name emitted by ToString(...) back to its enum.
Result<MultiValuedStorage> MultiValuedStorageFromString(const std::string& s);
Result<HierarchyStorage> HierarchyStorageFromString(const std::string& s);
Result<WeakEntityStorage> WeakEntityStorageFromString(const std::string& s);
Result<RelationshipStorage> RelationshipStorageFromString(
    const std::string& s);

}  // namespace erbium

#endif  // ERBIUM_MAPPING_MAPPING_SPEC_H_
