#ifndef ERBIUM_EXEC_SORT_H_
#define ERBIUM_EXEC_SORT_H_

#include <string>
#include <vector>

#include "exec/operator.h"

namespace erbium {

struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

/// Full materializing sort (stable).
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SortKey> keys);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t next_ = 0;
};

}  // namespace erbium

#endif  // ERBIUM_EXEC_SORT_H_
