#include "exec/snapshot.h"

namespace erbium {
namespace exec {

thread_local ReadSnapshot* ReadSnapshot::tls_current_ = nullptr;

}  // namespace exec
}  // namespace erbium
