#include "exec/join.h"

#include "exec/parallel.h"
#include "exec/snapshot.h"

namespace erbium {

namespace {

/// Appends src to dst.
void AppendRow(const Row& src, Row* dst) {
  dst->insert(dst->end(), src.begin(), src.end());
}

void AppendNulls(size_t n, Row* dst) {
  for (size_t i = 0; i < n; ++i) dst->push_back(Value::Null());
}

bool KeyHasNull(const std::vector<Value>& key) {
  for (const Value& v : key) {
    if (v.is_null()) return true;
  }
  return false;
}

std::vector<Value> EvalKeys(const std::vector<ExprPtr>& exprs,
                            const Row& row) {
  std::vector<Value> key;
  key.reserve(exprs.size());
  for (const ExprPtr& e : exprs) key.push_back(e->Eval(row));
  return key;
}

std::vector<Column> ConcatColumns(const std::vector<Column>& a,
                                  const std::vector<Column>& b) {
  std::vector<Column> out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

// ---- HashJoinOp -------------------------------------------------------------

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right,
                       std::vector<ExprPtr> left_keys,
                       std::vector<ExprPtr> right_keys, JoinType join_type)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      join_type_(join_type) {
  right_arity_ = right_->output_columns().size();
  output_ = ConcatColumns(left_->output_columns(), right_->output_columns());
  if (join_type_ == JoinType::kLeftOuter) {
    for (size_t i = left_->output_columns().size(); i < output_.size(); ++i) {
      output_[i].nullable = true;
    }
  }
}

Status HashJoinOp::OpenImpl() {
  hash_table_.clear();
  current_matches_ = nullptr;
  match_index_ = 0;
  ERBIUM_RETURN_NOT_OK(right_->Open());
  // Pre-size the build table from the child's cardinality estimate to
  // avoid rehashing during the build (the estimate is an upper bound; a
  // key-duplicate-heavy build just ends up with spare buckets).
  size_t build_hint = right_->EstimatedRowCount();
  if (build_hint > 0) hash_table_.reserve(build_hint);
  Row row;
  while (right_->Next(&row)) {
    std::vector<Value> key = EvalKeys(right_keys_, row);
    if (KeyHasNull(key)) continue;  // null never joins
    hash_table_[std::move(key)].push_back(std::move(row));
  }
  return left_->Open();
}

bool HashJoinOp::NextImpl(Row* out) {
  while (true) {
    if (current_matches_ != nullptr && match_index_ < current_matches_->size()) {
      *out = current_left_;
      AppendRow((*current_matches_)[match_index_++], out);
      return true;
    }
    current_matches_ = nullptr;
    if (!left_->Next(&current_left_)) return false;
    std::vector<Value> key = EvalKeys(left_keys_, current_left_);
    bool null_key = KeyHasNull(key);
    auto it = null_key ? hash_table_.end() : hash_table_.find(key);
    if (it == hash_table_.end()) {
      if (join_type_ == JoinType::kLeftOuter) {
        *out = current_left_;
        AppendNulls(right_arity_, out);
        return true;
      }
      continue;
    }
    current_matches_ = &it->second;
    match_index_ = 0;
  }
}

OperatorPtr HashJoinOp::CloneForWorker(ParallelContext* ctx) const {
  // Inside a join-build pipeline a probe would make a pool task wait on
  // another pool task; decline and let that join run serially.
  if (!ctx->allow_join_probe()) return nullptr;
  OperatorPtr probe = left_->CloneForWorker(ctx);
  if (probe == nullptr) return nullptr;
  std::shared_ptr<JoinBuildState> state =
      ctx->JoinStateFor(this, right_.get(), right_keys_);
  return std::make_unique<HashJoinProbeOp>(
      std::move(probe), left_keys_, std::move(state), join_type_, output_,
      right_arity_, "Parallel" + name());
}

std::string HashJoinOp::name() const {
  std::string out =
      join_type_ == JoinType::kLeftOuter ? "HashLeftJoin(" : "HashJoin(";
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += left_keys_[i]->ToString() + " = " + right_keys_[i]->ToString();
  }
  out += ")";
  return out;
}

// ---- NestedLoopJoinOp --------------------------------------------------------

NestedLoopJoinOp::NestedLoopJoinOp(OperatorPtr left, OperatorPtr right,
                                   ExprPtr predicate, JoinType join_type)
    : left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)),
      join_type_(join_type) {
  right_arity_ = right_->output_columns().size();
  output_ = ConcatColumns(left_->output_columns(), right_->output_columns());
}

Status NestedLoopJoinOp::OpenImpl() {
  if (!right_materialized_) {
    ERBIUM_RETURN_NOT_OK(right_->Open());
    Row row;
    while (right_->Next(&row)) right_rows_.push_back(std::move(row));
    right_materialized_ = true;
  }
  has_left_ = false;
  return left_->Open();
}

bool NestedLoopJoinOp::NextImpl(Row* out) {
  while (true) {
    if (!has_left_) {
      if (!left_->Next(&current_left_)) return false;
      has_left_ = true;
      left_matched_ = false;
      right_index_ = 0;
    }
    while (right_index_ < right_rows_.size()) {
      const Row& right_row = right_rows_[right_index_++];
      Row combined = current_left_;
      AppendRow(right_row, &combined);
      if (predicate_ == nullptr || EvalPredicate(*predicate_, combined)) {
        left_matched_ = true;
        *out = std::move(combined);
        return true;
      }
    }
    has_left_ = false;
    if (join_type_ == JoinType::kLeftOuter && !left_matched_) {
      *out = current_left_;
      AppendNulls(right_arity_, out);
      return true;
    }
  }
}

std::string NestedLoopJoinOp::name() const {
  std::string out = join_type_ == JoinType::kLeftOuter ? "NestedLoopLeftJoin"
                                                       : "NestedLoopJoin";
  if (predicate_ != nullptr) out += "(" + predicate_->ToString() + ")";
  return out;
}

// ---- IndexJoinOp -------------------------------------------------------------

IndexJoinOp::IndexJoinOp(OperatorPtr left, const Table* right,
                         std::vector<ExprPtr> left_keys,
                         std::vector<int> right_key_columns, JoinType join_type)
    : left_(std::move(left)),
      right_(right),
      left_keys_(std::move(left_keys)),
      right_key_columns_(std::move(right_key_columns)),
      join_type_(join_type) {
  right_arity_ = right->schema().num_columns();
  output_ =
      ConcatColumns(left_->output_columns(), right->schema().columns());
}

Status IndexJoinOp::OpenImpl() {
  right_version_ = exec::ResolveVersion(right_, &owned_pin_);
  has_left_ = false;
  matches_.clear();
  match_index_ = 0;
  return left_->Open();
}

bool IndexJoinOp::NextImpl(Row* out) {
  while (true) {
    if (has_left_ && match_index_ < matches_.size()) {
      *out = current_left_;
      AppendRow(*right_version_->row(matches_[match_index_++]), out);
      return true;
    }
    has_left_ = false;
    if (!left_->Next(&current_left_)) return false;
    matches_.clear();
    match_index_ = 0;
    std::vector<Value> key = EvalKeys(left_keys_, current_left_);
    if (!KeyHasNull(key)) {
      right_->LookupEqualIn(*right_version_, right_key_columns_, key,
                            &matches_);
    }
    if (matches_.empty()) {
      if (join_type_ == JoinType::kLeftOuter) {
        *out = current_left_;
        AppendNulls(right_arity_, out);
        return true;
      }
      continue;
    }
    has_left_ = true;
  }
}

OperatorPtr IndexJoinOp::CloneForWorker(ParallelContext* ctx) const {
  OperatorPtr left = left_->CloneForWorker(ctx);
  if (left == nullptr) return nullptr;
  // Probing the right table is read-only; workers share it directly.
  ctx->RegisterTable(right_);
  return std::make_unique<IndexJoinOp>(std::move(left), right_, left_keys_,
                                       right_key_columns_, join_type_);
}

std::string IndexJoinOp::name() const {
  std::string out =
      join_type_ == JoinType::kLeftOuter ? "IndexLeftJoin(" : "IndexJoin(";
  out += right_->name();
  out += ")";
  return out;
}

}  // namespace erbium
