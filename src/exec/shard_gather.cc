#include "exec/shard_gather.h"

#include "common/thread_pool.h"
#include "exec/exchange.h"
#include "exec/snapshot.h"

namespace erbium {

namespace {

// Same batch/backpressure shape as GatherOp's exchange.
constexpr size_t kShardBatchRows = 1024;
constexpr size_t kMaxQueuedBatchesPerBranch = 4;

/// Copies the statement snapshot's pins (empty when no snapshot is
/// installed — direct operator use in tests resolves operator-owned
/// pins, which the branch operators hold themselves).
std::vector<std::shared_ptr<const void>> SnapshotPins() {
  exec::ReadSnapshot* snapshot = exec::ReadSnapshot::Current();
  if (snapshot == nullptr) return {};
  return snapshot->SharedPins();
}

}  // namespace

// ---- ShardGatherOp ----------------------------------------------------------

ShardGatherOp::ShardGatherOp(std::vector<OperatorPtr> branches)
    : branches_(std::move(branches)) {
  output_ = branches_.front()->output_columns();
}

ShardGatherOp::~ShardGatherOp() { Shutdown(); }

void ShardGatherOp::Shutdown() {
  if (exchange_ != nullptr) exchange_->Cancel();
  for (std::future<void>& f : futures_) {
    if (f.valid()) f.wait();
  }
  futures_.clear();
  exchange_.reset();
  DropPins();
}

void ShardGatherOp::DropPins() {
  std::lock_guard<std::mutex> lock(pins_mu_);
  pins_.clear();
}

Status ShardGatherOp::OpenImpl() {
  Shutdown();
  // Branch Opens run serially on the statement thread: every version the
  // branch scans read resolves through the ambient snapshot here, never
  // on a pool worker.
  for (const OperatorPtr& branch : branches_) {
    ERBIUM_RETURN_NOT_OK(branch->Open());
  }
  {
    std::lock_guard<std::mutex> lock(pins_mu_);
    pins_ = SnapshotPins();
  }
  ThreadPool::Shared()->EnsureWorkers(static_cast<int>(branches_.size()));
  exchange_ = std::make_unique<RowExchange>(branches_.size(),
                                            kMaxQueuedBatchesPerBranch);
  futures_.reserve(branches_.size());
  for (size_t i = 0; i < branches_.size(); ++i) {
    futures_.push_back(
        ThreadPool::Shared()->Submit([this, i] { WorkerMain(i); }));
  }
  current_batch_.clear();
  batch_pos_ = 0;
  return Status::OK();
}

void ShardGatherOp::WorkerMain(size_t branch) {
  RowExchange* ex = exchange_.get();
  std::vector<Row> batch;
  batch.reserve(kShardBatchRows);
  Row row;
  while (!ex->cancelled() && branches_[branch]->Next(&row)) {
    batch.push_back(std::move(row));
    if (batch.size() >= kShardBatchRows) {
      if (!ex->Push(branch, std::move(batch))) break;
      batch = std::vector<Row>();
      batch.reserve(kShardBatchRows);
    }
  }
  if (!batch.empty()) ex->Push(branch, std::move(batch));
  // The last branch out drops the version pins (mirrors GatherOp).
  if (ex->MarkDone(branch)) DropPins();
}

bool ShardGatherOp::NextImpl(Row* out) {
  while (true) {
    if (batch_pos_ < current_batch_.size()) {
      *out = std::move(current_batch_[batch_pos_++]);
      return true;
    }
    current_batch_.clear();
    batch_pos_ = 0;
    if (exchange_ == nullptr || !exchange_->PopBatch(&current_batch_)) {
      return false;
    }
    ++stats_.batches;
  }
}

std::string ShardGatherOp::name() const {
  return "ShardGather(shards=" + std::to_string(branches_.size()) + ")";
}

std::vector<const Operator*> ShardGatherOp::children() const {
  std::vector<const Operator*> out;
  out.reserve(branches_.size());
  for (const OperatorPtr& branch : branches_) out.push_back(branch.get());
  return out;
}

size_t ShardGatherOp::EstimatedRowCount() const {
  size_t total = 0;
  for (const OperatorPtr& branch : branches_) {
    total += branch->EstimatedRowCount();
  }
  return total;
}

// ---- ShardMergeAggregateOp --------------------------------------------------

ShardMergeAggregateOp::ShardMergeAggregateOp(
    std::vector<OperatorPtr> branches, std::vector<ExprPtr> group_exprs,
    std::vector<std::string> group_names,
    std::vector<AggregateSpec> aggregates)
    : branches_(std::move(branches)),
      group_exprs_(std::move(group_exprs)),
      aggregates_(std::move(aggregates)) {
  output_ = AggregateOutputColumns(group_names, aggregates_);
}

ShardMergeAggregateOp::~ShardMergeAggregateOp() = default;

Status ShardMergeAggregateOp::OpenImpl() {
  merged_ = std::make_unique<AggGroupTable>();
  next_group_ = 0;
  for (const OperatorPtr& branch : branches_) {
    ERBIUM_RETURN_NOT_OK(branch->Open());
  }
  ThreadPool::Shared()->EnsureWorkers(static_cast<int>(branches_.size()));
  // One partial per branch, accumulated on the pool and joined before
  // Open returns — aggregation is a pipeline breaker, so unlike the
  // gather above no worker can outlive the statement. Group expressions
  // and accumulators are shared across the tasks read-only, exactly as
  // ParallelHashAggregateOp shares them across its morsel workers.
  std::vector<AggGroupTable> partials(branches_.size());
  std::vector<std::future<void>> futures;
  futures.reserve(branches_.size());
  for (size_t i = 0; i < branches_.size(); ++i) {
    futures.push_back(ThreadPool::Shared()->Submit([this, i, &partials] {
      Row row;
      while (branches_[i]->Next(&row)) {
        partials[i].Accumulate(group_exprs_, aggregates_, row);
      }
    }));
  }
  for (std::future<void>& f : futures) f.wait();
  // Merge in branch (= shard) order: accumulator merge, not finalize-
  // then-reaggregate, so avg/count stay exact.
  for (AggGroupTable& partial : partials) {
    merged_->Merge(aggregates_, std::move(partial));
  }
  // Global aggregate over empty input still emits one row.
  if (group_exprs_.empty() && merged_->states.empty()) {
    AggGroupState state;
    state.aggs.resize(aggregates_.size());
    merged_->states.push_back(std::move(state));
  }
  return Status::OK();
}

bool ShardMergeAggregateOp::NextImpl(Row* out) {
  if (merged_ == nullptr || next_group_ >= merged_->states.size()) {
    return false;
  }
  merged_->EmitGroup(next_group_++, aggregates_, out);
  return true;
}

std::string ShardMergeAggregateOp::name() const {
  std::string out = "ShardMergeAggregate(shards=" +
                    std::to_string(branches_.size()) + "; groups=";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_exprs_[i]->ToString();
  }
  out += "; aggs=";
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (i > 0) out += ", ";
    out += AggKindName(aggregates_[i].kind);
  }
  out += ")";
  return out;
}

std::vector<const Operator*> ShardMergeAggregateOp::children() const {
  std::vector<const Operator*> out;
  out.reserve(branches_.size());
  for (const OperatorPtr& branch : branches_) out.push_back(branch.get());
  return out;
}

}  // namespace erbium
