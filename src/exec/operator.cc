#include "exec/operator.h"

#include <unordered_set>

#include "exec/parallel.h"
#include "exec/snapshot.h"

namespace erbium {

namespace {

void PrintPlanRec(const Operator& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(op.name());
  out->push_back('\n');
  for (const Operator* child : op.children()) {
    PrintPlanRec(*child, depth + 1, out);
  }
}

}  // namespace

std::string PrintPlan(const Operator& root) {
  std::string out;
  PrintPlanRec(root, 0, &out);
  return out;
}

OperatorPtr Operator::CloneForWorker(ParallelContext* ctx) const {
  (void)ctx;
  return nullptr;
}

// Out-of-line analyze paths: the four clock reads per call are only paid
// inside an EXPLAIN ANALYZE window, keeping the inline wrappers small.

Status Operator::OpenTimed() {
  uint64_t wall = obs::MonotonicNowNs();
  uint64_t cpu = obs::ThreadCpuNowNs();
  Status st = OpenImpl();
  stats_.cpu_ns += obs::ThreadCpuNowNs() - cpu;
  stats_.wall_ns += obs::MonotonicNowNs() - wall;
  return st;
}

bool Operator::NextTimed(Row* out) {
  uint64_t wall = obs::MonotonicNowNs();
  uint64_t cpu = obs::ThreadCpuNowNs();
  bool ok = NextImpl(out);
  stats_.cpu_ns += obs::ThreadCpuNowNs() - cpu;
  stats_.wall_ns += obs::MonotonicNowNs() - wall;
  stats_.rows_out += static_cast<uint64_t>(ok);
  return ok;
}

Result<std::vector<Row>> CollectRows(Operator* op) {
  ERBIUM_RETURN_NOT_OK(op->Open());
  std::vector<Row> rows;
  // The estimate is an upper bound (filters may drop rows), so cap the
  // reservation to keep a selective scan from over-allocating.
  constexpr size_t kMaxReserve = 1 << 16;
  size_t hint = op->EstimatedRowCount();
  if (hint > 0) rows.reserve(std::min(hint, kMaxReserve));
  Row row;
  while (op->Next(&row)) rows.push_back(std::move(row));
  return rows;
}

// ---- SeqScan ----------------------------------------------------------------

SeqScan::SeqScan(const Table* table) : table_(table) {
  output_ = table->schema().columns();
}

Status SeqScan::OpenImpl() {
  version_ = exec::ResolveVersion(table_, &owned_pin_);
  next_ = 0;
  return Status::OK();
}

bool SeqScan::NextImpl(Row* out) {
  while (next_ < version_->slot_count()) {
    const Row* r = version_->row(next_++);
    if (r != nullptr) {
      *out = *r;
      return true;
    }
  }
  return false;
}

OperatorPtr SeqScan::CloneForWorker(ParallelContext* ctx) const {
  return std::make_unique<ParallelScanOp>(table_, ctx->CursorFor(this, table_));
}

// ---- IndexLookup ------------------------------------------------------------

IndexLookup::IndexLookup(const Table* table, std::vector<int> column_indexes,
                         IndexKey key)
    : table_(table),
      column_indexes_(std::move(column_indexes)),
      key_(std::move(key)) {
  output_ = table->schema().columns();
}

Status IndexLookup::OpenImpl() {
  version_ = exec::ResolveVersion(table_, &owned_pin_);
  matches_.clear();
  next_ = 0;
  table_->LookupEqualIn(*version_, column_indexes_, key_, &matches_);
  return Status::OK();
}

bool IndexLookup::NextImpl(Row* out) {
  if (next_ >= matches_.size()) return false;
  *out = *version_->row(matches_[next_++]);
  return true;
}

// ---- ValuesOp ---------------------------------------------------------------

ValuesOp::ValuesOp(std::vector<Column> columns, std::vector<Row> rows)
    : rows_(std::move(rows)) {
  output_ = std::move(columns);
}

Status ValuesOp::OpenImpl() {
  next_ = 0;
  return Status::OK();
}

bool ValuesOp::NextImpl(Row* out) {
  if (next_ >= rows_.size()) return false;
  *out = rows_[next_++];
  return true;
}

// ---- FilterOp ---------------------------------------------------------------

FilterOp::FilterOp(OperatorPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {
  output_ = child_->output_columns();
}

Status FilterOp::OpenImpl() { return child_->Open(); }

bool FilterOp::NextImpl(Row* out) {
  while (child_->Next(out)) {
    if (EvalPredicate(*predicate_, *out)) return true;
  }
  return false;
}

OperatorPtr FilterOp::CloneForWorker(ParallelContext* ctx) const {
  OperatorPtr child = child_->CloneForWorker(ctx);
  if (child == nullptr) return nullptr;
  return std::make_unique<FilterOp>(std::move(child), predicate_);
}

// ---- ProjectOp --------------------------------------------------------------

ProjectOp::ProjectOp(OperatorPtr child, std::vector<Column> output,
                     std::vector<ExprPtr> exprs)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  output_ = std::move(output);
}

Status ProjectOp::OpenImpl() { return child_->Open(); }

bool ProjectOp::NextImpl(Row* out) {
  Row input;
  if (!child_->Next(&input)) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) out->push_back(e->Eval(input));
  return true;
}

OperatorPtr ProjectOp::CloneForWorker(ParallelContext* ctx) const {
  OperatorPtr child = child_->CloneForWorker(ctx);
  if (child == nullptr) return nullptr;
  return std::make_unique<ProjectOp>(std::move(child), output_, exprs_);
}

std::string ProjectOp::name() const {
  std::string out = "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += output_[i].name;
  }
  out += ")";
  return out;
}

// ---- LimitOp ----------------------------------------------------------------

LimitOp::LimitOp(OperatorPtr child, size_t limit)
    : child_(std::move(child)), limit_(limit) {
  output_ = child_->output_columns();
}

Status LimitOp::OpenImpl() {
  produced_ = 0;
  return child_->Open();
}

bool LimitOp::NextImpl(Row* out) {
  if (produced_ >= limit_) return false;
  if (!child_->Next(out)) return false;
  ++produced_;
  return true;
}

// ---- DistinctOp -------------------------------------------------------------

struct DistinctOp::SeenSet {
  std::unordered_set<std::vector<Value>, ValueVectorHash, ValueVectorEq> rows;
};

DistinctOp::DistinctOp(OperatorPtr child) : child_(std::move(child)) {
  output_ = child_->output_columns();
}

DistinctOp::~DistinctOp() = default;

Status DistinctOp::OpenImpl() {
  seen_ = std::make_unique<SeenSet>();
  return child_->Open();
}

bool DistinctOp::NextImpl(Row* out) {
  while (child_->Next(out)) {
    if (seen_->rows.insert(*out).second) return true;
  }
  return false;
}

// ---- UnnestOp ---------------------------------------------------------------

UnnestOp::UnnestOp(OperatorPtr child, int array_column,
                   std::string element_name, bool outer)
    : child_(std::move(child)), array_column_(array_column), outer_(outer) {
  output_ = child_->output_columns();
  Column& col = output_[array_column_];
  col.name = std::move(element_name);
  if (col.type && col.type->kind() == TypeKind::kArray) {
    col.type = col.type->element_type();
  }
  col.nullable = true;
}

Status UnnestOp::OpenImpl() {
  has_current_ = false;
  element_index_ = 0;
  return child_->Open();
}

bool UnnestOp::NextImpl(Row* out) {
  while (true) {
    if (!has_current_) {
      if (!child_->Next(&current_)) return false;
      has_current_ = true;
      element_index_ = 0;
      const Value& arr = current_[array_column_];
      bool empty = arr.kind() != TypeKind::kArray || arr.array().empty();
      if (empty) {
        has_current_ = false;
        if (outer_) {
          *out = std::move(current_);
          (*out)[array_column_] = Value::Null();
          return true;
        }
        continue;
      }
    }
    const Value& arr = current_[array_column_];
    const Value::ArrayData& elements = arr.array();
    if (element_index_ < elements.size()) {
      if (element_index_ + 1 == elements.size()) {
        // Last element: the buffered row is dead after this, so move it
        // out. Copy the element first — it lives inside the array value
        // being overwritten.
        Value element = elements[element_index_];
        *out = std::move(current_);
        (*out)[array_column_] = std::move(element);
        has_current_ = false;
        return true;
      }
      *out = current_;
      (*out)[array_column_] = elements[element_index_];
      ++element_index_;
      return true;
    }
    has_current_ = false;
  }
}

OperatorPtr UnnestOp::CloneForWorker(ParallelContext* ctx) const {
  OperatorPtr child = child_->CloneForWorker(ctx);
  if (child == nullptr) return nullptr;
  return std::make_unique<UnnestOp>(std::move(child), array_column_,
                                    output_[array_column_].name, outer_);
}

std::string UnnestOp::name() const {
  return std::string(outer_ ? "OuterUnnest(" : "Unnest(") +
         output_[array_column_].name + ")";
}

// ---- UnionAllOp -------------------------------------------------------------

UnionAllOp::UnionAllOp(std::vector<OperatorPtr> children)
    : children_(std::move(children)) {
  output_ = children_.front()->output_columns();
}

Status UnionAllOp::OpenImpl() {
  current_ = 0;
  for (const OperatorPtr& child : children_) {
    ERBIUM_RETURN_NOT_OK(child->Open());
  }
  return Status::OK();
}

bool UnionAllOp::NextImpl(Row* out) {
  while (current_ < children_.size()) {
    if (children_[current_]->Next(out)) return true;
    ++current_;
  }
  return false;
}

std::vector<const Operator*> UnionAllOp::children() const {
  std::vector<const Operator*> out;
  out.reserve(children_.size());
  for (const OperatorPtr& child : children_) out.push_back(child.get());
  return out;
}

OperatorPtr UnionAllOp::CloneForWorker(ParallelContext* ctx) const {
  // Each worker unions clones of every child; the children's shared scan
  // cursors split the rows across workers, preserving bag semantics.
  std::vector<OperatorPtr> clones;
  clones.reserve(children_.size());
  for (const OperatorPtr& child : children_) {
    OperatorPtr clone = child->CloneForWorker(ctx);
    if (clone == nullptr) return nullptr;
    clones.push_back(std::move(clone));
  }
  return std::make_unique<UnionAllOp>(std::move(clones));
}

size_t UnionAllOp::EstimatedRowCount() const {
  size_t total = 0;
  for (const OperatorPtr& child : children_) {
    total += child->EstimatedRowCount();
  }
  return total;
}

}  // namespace erbium
