#include "exec/sort.h"

#include <algorithm>

namespace erbium {

SortOp::SortOp(OperatorPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {
  output_ = child_->output_columns();
}

Status SortOp::OpenImpl() {
  rows_.clear();
  next_ = 0;
  ERBIUM_RETURN_NOT_OK(child_->Open());
  Row row;
  while (child_->Next(&row)) rows_.push_back(std::move(row));
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     for (const SortKey& key : keys_) {
                       int c = key.expr->Eval(a).Compare(key.expr->Eval(b));
                       if (c != 0) return key.ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return Status::OK();
}

bool SortOp::NextImpl(Row* out) {
  if (next_ >= rows_.size()) return false;
  *out = std::move(rows_[next_++]);
  return true;
}

std::string SortOp::name() const {
  std::string out = "Sort(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i].expr->ToString();
    if (!keys_[i].ascending) out += " DESC";
  }
  out += ")";
  return out;
}

}  // namespace erbium
