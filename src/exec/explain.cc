#include "exec/explain.h"

#include <sstream>
#include <utility>
#include <vector>

#include "exec/join.h"
#include "exec/parallel.h"

namespace erbium {
namespace {

using obs::SpanRecord;

std::vector<const Operator*> Ptrs(const std::vector<OperatorPtr>& ops) {
  std::vector<const Operator*> out;
  out.reserve(ops.size());
  for (const OperatorPtr& op : ops) out.push_back(op.get());
  return out;
}

// Emits `rep` (the serial node) with the stats of all parallel peer
// instances merged in, then recurses into position-paired children.
void Collect(const Operator* rep, std::vector<const Operator*> peers,
             int depth, std::vector<SpanRecord>* out);

void CollectChildren(const Operator* rep,
                     const std::vector<const Operator*>& peers, int depth,
                     std::vector<SpanRecord>* out) {
  std::vector<const Operator*> rep_children = rep->children();
  for (size_t i = 0; i < rep_children.size(); ++i) {
    std::vector<const Operator*> peer_children;
    peer_children.reserve(peers.size());
    for (const Operator* peer : peers) {
      std::vector<const Operator*> pc = peer->children();
      if (i < pc.size()) peer_children.push_back(pc[i]);
    }
    Collect(rep_children[i], std::move(peer_children), depth, out);
  }
}

void Collect(const Operator* rep, std::vector<const Operator*> peers,
             int depth, std::vector<SpanRecord>* out) {
  SpanRecord span;
  span.name = rep->name();
  span.depth = depth;
  span.stats = rep->stats();
  std::string detail = rep->AnalyzeDetail();
  uint64_t morsels = 0;
  bool scan_peers = false;
  for (const Operator* peer : peers) {
    span.stats.MergeFrom(peer->stats());
    if (const auto* scan = dynamic_cast<const ParallelScanOp*>(peer)) {
      morsels += scan->morsels();
      scan_peers = true;
    }
  }
  if (!peers.empty()) {
    if (!detail.empty()) detail += ' ';
    detail += "workers=" + std::to_string(peers.size());
    if (scan_peers) detail += " morsels=" + std::to_string(morsels);
  }
  span.detail = std::move(detail);
  out->push_back(std::move(span));

  // Parallel wrappers only appear in the main plan, never inside worker
  // clones: recurse into the serial structure with the clones as peers.
  if (const auto* gather = dynamic_cast<const GatherOp*>(rep)) {
    Collect(gather->serial_plan(), Ptrs(gather->workers()), depth + 1, out);
    return;
  }
  if (const auto* agg = dynamic_cast<const ParallelHashAggregateOp*>(rep)) {
    Collect(agg->serial_child(), Ptrs(agg->worker_children()), depth + 1,
            out);
    return;
  }
  // Probe clones of a serial HashJoinOp: the probe children pair with the
  // serial left child; the serial build child pairs with the shared
  // build-worker clones (empty for a serial build, whose stats already
  // accumulated on the serial node when EnsureBuilt drained it).
  if (!peers.empty()) {
    if (const auto* probe0 =
            dynamic_cast<const HashJoinProbeOp*>(peers.front())) {
      std::vector<const Operator*> rep_children = rep->children();
      std::vector<const Operator*> probe_children;
      probe_children.reserve(peers.size());
      for (const Operator* peer : peers) {
        probe_children.push_back(
            static_cast<const HashJoinProbeOp*>(peer)->probe_child());
      }
      Collect(rep_children[0], std::move(probe_children), depth + 1, out);
      Collect(rep_children[1], Ptrs(probe0->build_state()->build_workers()),
              depth + 1, out);
      return;
    }
  }
  CollectChildren(rep, peers, depth + 1, out);
}

}  // namespace

obs::QueryStats CollectQueryStats(const Operator& root) {
  obs::QueryStats stats;
  Collect(&root, {}, 0, &stats.spans);
  if (!stats.spans.empty()) {
    stats.total_wall_ns = stats.spans.front().stats.wall_ns;
  }
  return stats;
}

std::string RenderPlanTree(const Operator& root) {
  obs::QueryStats stats = CollectQueryStats(root);
  std::ostringstream out;
  for (const SpanRecord& span : stats.spans) {
    for (int i = 0; i < span.depth; ++i) out << "  ";
    out << span.name;
    if (!span.detail.empty()) out << " [" << span.detail << ']';
    out << '\n';
  }
  return out.str();
}

}  // namespace erbium
