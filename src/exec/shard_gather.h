#ifndef ERBIUM_EXEC_SHARD_GATHER_H_
#define ERBIUM_EXEC_SHARD_GATHER_H_

#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "exec/operator.h"

namespace erbium {

class RowExchange;

// Cross-shard execution operators. A sharded SELECT compiles into one
// branch pipeline per shard (branch k's driver scan bound to shard k's
// database, non-local scans unioned across shards); these two operators
// sit at the coordinator and combine the branches. Both open every
// branch serially on the statement thread — the MVCC snapshot contract
// (exec/snapshot.h) requires all version resolution to happen there —
// and then drain the branches on the shared thread pool. Branch
// pipelines are translated serially (num_threads = 1), so they never
// contain a nested GatherOp: pool tasks never wait on pool tasks.

/// Bag union of the branch pipelines through the same bounded exchange
/// GatherOp uses, one producer per shard branch. Used for non-aggregate
/// sharded SELECTs; row order across branches is unspecified (the
/// coordinator's Sort, if any, runs above).
class ShardGatherOp : public Operator {
 public:
  explicit ShardGatherOp(std::vector<OperatorPtr> branches);
  ~ShardGatherOp() override;

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override;
  std::vector<const Operator*> children() const override;
  size_t EstimatedRowCount() const override;

  const std::vector<OperatorPtr>& branches() const { return branches_; }

 private:
  void WorkerMain(size_t branch);
  void Shutdown();
  void DropPins();

  std::vector<OperatorPtr> branches_;
  std::unique_ptr<RowExchange> exchange_;
  std::vector<std::future<void>> futures_;
  /// Keeps every version the branches resolved at Open alive until the
  /// last producer finishes — a consumer that stops early (LIMIT) leaves
  /// detached producers running past the statement's snapshot scope.
  std::mutex pins_mu_;
  std::vector<std::shared_ptr<const void>> pins_;
  std::vector<Row> current_batch_;
  size_t batch_pos_ = 0;
};

/// Partial-aggregate merge across shards: each branch pipeline produces
/// its shard's pre-aggregation rows, a pool task per branch accumulates
/// them into a branch-local AggGroupTable, and Open() merges the partials
/// (sum of counts, min of mins, ...) exactly the way the morsel-parallel
/// ParallelHashAggregateOp merges worker partials. Finalizing per shard
/// and re-aggregating would be wrong (avg of avgs); merging accumulator
/// state is exact. Output layout matches HashAggregateOp.
class ShardMergeAggregateOp : public Operator {
 public:
  ShardMergeAggregateOp(std::vector<OperatorPtr> branches,
                        std::vector<ExprPtr> group_exprs,
                        std::vector<std::string> group_names,
                        std::vector<AggregateSpec> aggregates);
  ~ShardMergeAggregateOp() override;

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override;
  std::vector<const Operator*> children() const override;

  const std::vector<OperatorPtr>& branches() const { return branches_; }

 private:
  std::vector<OperatorPtr> branches_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggregateSpec> aggregates_;
  std::unique_ptr<AggGroupTable> merged_;
  size_t next_group_ = 0;
};

}  // namespace erbium

#endif  // ERBIUM_EXEC_SHARD_GATHER_H_
