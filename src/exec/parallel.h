#ifndef ERBIUM_EXEC_PARALLEL_H_
#define ERBIUM_EXEC_PARALLEL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "exec/aggregate.h"
#include "exec/join.h"
#include "exec/operator.h"

namespace erbium {

namespace shard {
struct ShardPlanContext;
}  // namespace shard

// Morsel-driven parallel execution (Leis et al., SIGMOD'14) over the
// Volcano operators. A serial plan is cloned into N identical worker
// pipelines whose leaf scans share an atomic morsel cursor; a GatherOp (or
// ParallelHashAggregateOp) runs the workers on the shared ThreadPool and
// merges their output. Every scanned table's version is pinned for the
// workers' lifetime (ParallelContext::PinScanVersions), so workers read a
// frozen snapshot while writers publish new versions concurrently.

/// Knobs for one query execution. Defaults are serial (num_threads = 1),
/// which produces plans identical to the classic single-threaded engine.
struct ExecOptions {
  int num_threads = 1;
  /// Rows per morsel claimed by a worker from a scan cursor.
  size_t morsel_size = 2048;
  /// Minimum total base-table slots feeding a plan before the translator
  /// inserts parallel operators; smaller plans keep their serial shape.
  size_t parallel_row_threshold = 8192;
  /// Non-null when the statement compiles against a sharded engine: the
  /// translator builds one branch pipeline per shard and combines them
  /// with a cross-shard gather / partial-aggregate merge. Not owned;
  /// valid for the statement's lifetime (the runner rebuilds it under
  /// the exclusive lock on DDL/REMAP).
  const shard::ShardPlanContext* shards = nullptr;

  static ExecOptions Serial() { return ExecOptions(); }
  /// num_threads from ERBIUM_THREADS (default: hardware concurrency) and
  /// parallel_row_threshold from ERBIUM_PARALLEL_THRESHOLD.
  static ExecOptions Default();
};

/// A table's scan range [0, slot_count) handed out in fixed-size chunks.
/// Claim() is wait-free; Reset() must not race with claims (the executor
/// resets all cursors before launching workers). slot_count() is the
/// latest *published* bound and may exceed the bound of the version the
/// scans pinned; ParallelScanOp clamps each claimed morsel to its pinned
/// version, so over-claimed tail slots are simply skipped.
struct MorselCursor {
  MorselCursor(const Table* table, size_t morsel_size)
      : table(table), end(table->slot_count()), morsel_size(morsel_size) {}

  bool Claim(size_t* lo, size_t* hi) {
    size_t begin = next.fetch_add(morsel_size, std::memory_order_relaxed);
    if (begin >= end) return false;
    *lo = begin;
    *hi = std::min(begin + morsel_size, end);
    return true;
  }

  void Reset() {
    end = table->slot_count();
    next.store(0, std::memory_order_relaxed);
  }

  const Table* table;
  std::atomic<size_t> next{0};
  size_t end;
  size_t morsel_size;
};

class JoinBuildState;
class RowExchange;

/// Shared state of one parallelized plan: the morsel cursors and join
/// build states keyed by the address of the serial node they were cloned
/// from, plus the set of tables the workers will read (whose versions the
/// context pins for the workers' lifetime). Built at plan time by
/// CloneForWorker, reset before each execution.
class ParallelContext {
 public:
  ParallelContext(ThreadPool* pool, const ExecOptions& opts,
                  ParallelContext* parent = nullptr);
  ~ParallelContext();

  /// Returns the shared cursor for a scan site, creating it on first use
  /// (the N worker clones of one SeqScan all land on the same site).
  std::shared_ptr<MorselCursor> CursorFor(const void* site,
                                          const Table* table);

  /// Returns the shared build state for a hash-join site, creating it on
  /// first use. `build_plan` is the serial build child (owned by the
  /// original plan); `build_keys` are its key expressions.
  std::shared_ptr<JoinBuildState> JoinStateFor(
      const void* site, Operator* build_plan,
      const std::vector<ExprPtr>& build_keys);

  /// Records a table the worker pipelines will read (index-join targets).
  void RegisterTable(const Table* table);

  /// False inside a join-build sub-context: build pipelines run on pool
  /// threads and must not wait on a nested build (pool tasks never wait
  /// on pool tasks), so HashJoinOp declines to clone there.
  bool allow_join_probe() const { return parent_ == nullptr; }

  /// Re-arms cursors (re-reading slot counts) and invalidates join builds.
  /// Called by the top operator's Open(); must not race with workers.
  void ResetForExecution();

  /// Sum of slot counts over all registered scan sites, including build
  /// sides — the translator's parallelism-threshold input.
  size_t TotalScanSlots() const;

  /// Pin/release the current version of every registered table. Pinned
  /// through the ambient exec::ReadSnapshot (same versions the worker
  /// pipelines resolved at Open), and held until every worker finished —
  /// detached Gather workers may outlive the statement's snapshot scope,
  /// and these pins keep their version pointers valid.
  void PinScanVersions();
  void ReleaseScanVersions();

  ThreadPool* pool() const { return pool_; }
  const ExecOptions& options() const { return opts_; }

 private:
  ThreadPool* pool_;
  ExecOptions opts_;
  ParallelContext* parent_;  // root owns the table set
  std::vector<std::pair<const void*, std::shared_ptr<MorselCursor>>> cursors_;
  std::vector<std::pair<const void*, std::shared_ptr<JoinBuildState>>>
      join_states_;
  std::vector<const Table*> tables_;
  std::vector<std::shared_ptr<const TableVersion>> pinned_versions_;
  bool pins_held_ = false;
};

/// Scan leaf of a worker pipeline: emits live rows of the morsels it
/// claims from the shared cursor. The union of all workers' output is
/// exactly the serial SeqScan's output (in no particular order).
class ParallelScanOp : public Operator {
 public:
  ParallelScanOp(const Table* table, std::shared_ptr<MorselCursor> cursor);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override {
    return "ParallelScan(" + table_->name() + ")";
  }
  size_t EstimatedRowCount() const override { return table_->size(); }
  std::string AnalyzeDetail() const override {
    return "morsels=" + std::to_string(morsels_);
  }
  /// Morsels this worker claimed from the shared cursor (all executions).
  uint64_t morsels() const { return morsels_; }

 private:
  const Table* table_;
  std::shared_ptr<MorselCursor> cursor_;
  /// Pinned at Open() on the statement thread (never from a pool worker);
  /// the context's PinScanVersions holds the same version alive for the
  /// workers' — possibly detached — lifetime.
  const TableVersion* version_ = nullptr;
  std::shared_ptr<const TableVersion> owned_pin_;
  size_t pos_ = 0;
  size_t limit_ = 0;
  uint64_t morsels_ = 0;
};

/// Build side of a parallelized hash join, shared by the N probe clones.
/// The build runs once per execution, on the first probe's Open (caller
/// thread): build rows are partitioned by key hash — in parallel when the
/// build child is itself clonable — and merged partition-wise into
/// per-partition hash tables that the probes then read concurrently.
class JoinBuildState {
 public:
  JoinBuildState(ParallelContext* parent, Operator* build_plan,
                 std::vector<ExprPtr> build_keys);
  ~JoinBuildState();

  /// Idempotent per execution; serialized by the caller (worker Opens run
  /// on one thread) with a mutex as backstop.
  Status EnsureBuilt();
  void Invalidate();

  /// Slot count of the build side's scans (threshold accounting).
  size_t ScanSlots() const;

  /// Rows matching `key`, or nullptr. Key must have no null values.
  const std::vector<Row>* Probe(const std::vector<Value>& key) const;

  /// The serial build child (owned by the original plan) and the worker
  /// clones used when the build itself ran parallel (empty for a serial
  /// build). EXPLAIN ANALYZE merges their stats onto the serial node.
  const Operator* build_plan() const { return build_plan_; }
  const std::vector<OperatorPtr>& build_workers() const {
    return build_workers_;
  }

 private:
  using Partition = std::unordered_map<std::vector<Value>, std::vector<Row>,
                                       ValueVectorHash, ValueVectorEq>;

  void InsertBuildRow(Row row);

  Operator* build_plan_;
  std::vector<ExprPtr> build_keys_;
  size_t num_partitions_;
  std::unique_ptr<ParallelContext> sub_ctx_;
  std::vector<OperatorPtr> build_workers_;  // empty => serial build
  std::vector<Partition> partitions_;
  std::mutex mu_;
  bool built_ = false;
};

/// Probe side of a parallelized hash join; one per worker pipeline. Same
/// semantics as HashJoinOp (inner / left-outer, null keys never join) but
/// probing the shared JoinBuildState.
class HashJoinProbeOp : public Operator {
 public:
  HashJoinProbeOp(OperatorPtr probe_child, std::vector<ExprPtr> probe_keys,
                  std::shared_ptr<JoinBuildState> state, JoinType join_type,
                  std::vector<Column> output, size_t build_arity,
                  std::string display_name);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override { return display_name_; }
  std::vector<const Operator*> children() const override {
    return {probe_child_.get()};
  }
  size_t EstimatedRowCount() const override {
    return probe_child_->EstimatedRowCount();
  }
  const Operator* probe_child() const { return probe_child_.get(); }
  const JoinBuildState* build_state() const { return state_.get(); }

 private:
  OperatorPtr probe_child_;
  std::vector<ExprPtr> probe_keys_;
  std::shared_ptr<JoinBuildState> state_;
  JoinType join_type_;
  size_t build_arity_;
  std::string display_name_;

  Row current_left_;
  const std::vector<Row>* current_matches_ = nullptr;
  size_t match_index_ = 0;
};

/// Exchange at the top of a parallel pipeline segment: runs N worker
/// pipelines on the thread pool and merges their bounded output queues
/// into one row stream for the (serial) consumer above. Owns the serial
/// plan it was built from, which stays the source of truth for build
/// children and context keys.
class GatherOp : public Operator {
 public:
  GatherOp(OperatorPtr serial_plan, std::vector<OperatorPtr> workers,
           std::shared_ptr<ParallelContext> ctx);
  ~GatherOp() override;

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override;
  std::vector<const Operator*> children() const override {
    return {workers_.front().get()};
  }
  size_t EstimatedRowCount() const override {
    return serial_plan_->EstimatedRowCount();
  }

  /// The serial plan this exchange was built from and the worker clones
  /// actually executed; EXPLAIN renders the serial tree with the workers'
  /// stats merged position-wise onto it.
  const Operator* serial_plan() const { return serial_plan_.get(); }
  const std::vector<OperatorPtr>& workers() const { return workers_; }

 private:
  void WorkerMain(size_t worker);
  void Shutdown();

  OperatorPtr serial_plan_;
  std::vector<OperatorPtr> workers_;
  std::shared_ptr<ParallelContext> ctx_;
  std::unique_ptr<RowExchange> exchange_;
  std::vector<std::future<void>> futures_;
  std::vector<Row> current_batch_;
  size_t batch_pos_ = 0;
};

/// Parallel aggregation: N worker pipelines each build a thread-local
/// group table (partial aggregation); Open() merges them via
/// AggAccumulator::Merge and Next() emits the merged groups. Output layout
/// matches HashAggregateOp exactly. kArrayAgg is excluded by the planner
/// (element order would depend on scheduling).
class ParallelHashAggregateOp : public Operator {
 public:
  ParallelHashAggregateOp(OperatorPtr serial_child,
                          std::vector<OperatorPtr> worker_children,
                          std::vector<ExprPtr> group_exprs,
                          std::vector<std::string> group_names,
                          std::vector<AggregateSpec> aggregates,
                          std::shared_ptr<ParallelContext> ctx);
  ~ParallelHashAggregateOp() override;

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override;
  std::vector<const Operator*> children() const override {
    return {worker_children_.front().get()};
  }

  const Operator* serial_child() const { return serial_child_.get(); }
  const std::vector<OperatorPtr>& worker_children() const {
    return worker_children_;
  }

 private:
  OperatorPtr serial_child_;
  std::vector<OperatorPtr> worker_children_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggregateSpec> aggregates_;
  std::shared_ptr<ParallelContext> ctx_;
  std::unique_ptr<AggGroupTable> merged_;
  size_t next_group_ = 0;
};

// ---- Planner hooks ---------------------------------------------------------

/// Wraps `plan` in a GatherOp running opts.num_threads worker pipelines
/// when the plan is parallel-clonable and its scan volume crosses
/// opts.parallel_row_threshold; otherwise returns `plan` unchanged (always
/// the case for num_threads <= 1).
OperatorPtr MaybeParallelGather(OperatorPtr plan, const ExecOptions& opts);

/// Builds the aggregation stage over `child`: parallel partial aggregation
/// with a merge when eligible under `opts`, else a serial HashAggregateOp.
OperatorPtr MakeAggregatePlan(OperatorPtr child,
                              std::vector<ExprPtr> group_exprs,
                              std::vector<std::string> group_names,
                              std::vector<AggregateSpec> aggregates,
                              const ExecOptions& opts);

}  // namespace erbium

#endif  // ERBIUM_EXEC_PARALLEL_H_
