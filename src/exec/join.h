#ifndef ERBIUM_EXEC_JOIN_H_
#define ERBIUM_EXEC_JOIN_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"

namespace erbium {

enum class JoinType { kInner, kLeftOuter };

/// Hash join: builds on the right child, probes with the left. Left-outer
/// pads the right side with nulls when no match — used heavily for
/// normalized mappings (subclass delta tables, multi-valued side tables).
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right,
             std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
             JoinType join_type = JoinType::kInner);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override;
  std::vector<const Operator*> children() const override {
    return {left_.get(), right_.get()};
  }
  OperatorPtr CloneForWorker(ParallelContext* ctx) const override;
  size_t EstimatedRowCount() const override {
    return left_->EstimatedRowCount();
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  JoinType join_type_;

  std::unordered_map<std::vector<Value>, std::vector<Row>, ValueVectorHash,
                     ValueVectorEq>
      hash_table_;
  Row current_left_;
  const std::vector<Row>* current_matches_ = nullptr;
  size_t match_index_ = 0;
  size_t right_arity_ = 0;
};

/// Nested-loop join with an arbitrary predicate over the concatenated row;
/// the fallback for non-equi joins. Materializes the right child.
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr predicate,
                   JoinType join_type = JoinType::kInner);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override;
  std::vector<const Operator*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  ExprPtr predicate_;
  JoinType join_type_;

  std::vector<Row> right_rows_;
  bool right_materialized_ = false;
  Row current_left_;
  bool has_left_ = false;
  bool left_matched_ = false;
  size_t right_index_ = 0;
  size_t right_arity_ = 0;
};

/// Index nested-loop join: for each left row, evaluates key expressions
/// and probes a pinned version of the right *table* (index-backed when an
/// index on those columns exists). The physical analogue of a foreign-key
/// dereference.
class IndexJoinOp : public Operator {
 public:
  IndexJoinOp(OperatorPtr left, const Table* right,
              std::vector<ExprPtr> left_keys,
              std::vector<int> right_key_columns,
              JoinType join_type = JoinType::kInner);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override;
  std::vector<const Operator*> children() const override {
    return {left_.get()};
  }
  OperatorPtr CloneForWorker(ParallelContext* ctx) const override;
  size_t EstimatedRowCount() const override {
    return left_->EstimatedRowCount();
  }

 private:
  OperatorPtr left_;
  const Table* right_;
  const TableVersion* right_version_ = nullptr;
  std::shared_ptr<const TableVersion> owned_pin_;
  std::vector<ExprPtr> left_keys_;
  std::vector<int> right_key_columns_;
  JoinType join_type_;

  Row current_left_;
  std::vector<RowId> matches_;
  size_t match_index_ = 0;
  bool has_left_ = false;
  size_t right_arity_ = 0;
};

}  // namespace erbium

#endif  // ERBIUM_EXEC_JOIN_H_
