#ifndef ERBIUM_EXEC_EXPR_H_
#define ERBIUM_EXEC_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/type.h"
#include "common/value.h"

namespace erbium {

/// Scalar expression evaluated against one input row. Expressions are
/// bound (column references resolved to positions) before execution, so
/// Eval is non-failing: SQL-style semantics apply, with type mismatches
/// and operations on null producing null.
class Expr {
 public:
  virtual ~Expr() = default;
  virtual Value Eval(const Row& row) const = 0;
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::shared_ptr<const Expr>;

/// Reference to a column position in the input row, annotated with a
/// display name for plan printing.
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(int index, std::string name)
      : index_(index), name_(std::move(name)) {}

  Value Eval(const Row& row) const override { return row[index_]; }
  std::string ToString() const override { return name_; }
  int index() const { return index_; }

 private:
  int index_;
  std::string name_;
};

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}

  Value Eval(const Row&) const override { return value_; }
  std::string ToString() const override { return value_.ToString(); }
  const Value& value() const { return value_; }

 private:
  Value value_;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Three-valued comparison: null operand -> null result.
class CompareExpr : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Value Eval(const Row& row) const override;
  std::string ToString() const override;

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

enum class LogicalOp { kAnd, kOr, kNot };

/// SQL three-valued logic.
class LogicalExpr : public Expr {
 public:
  /// For kNot, pass the operand as `left` and nullptr as `right`.
  LogicalExpr(LogicalOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Value Eval(const Row& row) const override;
  std::string ToString() const override;

 private:
  LogicalOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

enum class ArithmeticOp { kAdd, kSub, kMul, kDiv, kMod };

/// Numeric arithmetic; int64 op int64 stays int64 (except division by zero
/// -> null), any float operand promotes to float64, null propagates.
class ArithmeticExpr : public Expr {
 public:
  ArithmeticExpr(ArithmeticOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Value Eval(const Row& row) const override;
  std::string ToString() const override;

 private:
  ArithmeticOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// IS NULL / IS NOT NULL (two-valued).
class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr input, bool negated)
      : input_(std::move(input)), negated_(negated) {}

  Value Eval(const Row& row) const override {
    bool is_null = input_->Eval(row).is_null();
    return Value::Bool(negated_ ? !is_null : is_null);
  }
  std::string ToString() const override {
    return input_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
  }

 private:
  ExprPtr input_;
  bool negated_;
};

/// value IN (list of constant values); null input -> null.
class InListExpr : public Expr {
 public:
  InListExpr(ExprPtr input, std::vector<Value> values);

  Value Eval(const Row& row) const override;
  std::string ToString() const override;

 private:
  ExprPtr input_;
  std::vector<Value> values_;  // kept for printing
  struct Set;
  std::shared_ptr<const Set> set_;
};

/// Access of a named field of a struct value; null/missing -> null.
class FieldAccessExpr : public Expr {
 public:
  FieldAccessExpr(ExprPtr input, std::string field)
      : input_(std::move(input)), field_(std::move(field)) {}

  Value Eval(const Row& row) const override;
  std::string ToString() const override {
    return input_->ToString() + "." + field_;
  }

 private:
  ExprPtr input_;
  std::string field_;
};

/// Builds a struct value from named sub-expressions (nested outputs).
class MakeStructExpr : public Expr {
 public:
  MakeStructExpr(std::vector<std::string> names, std::vector<ExprPtr> inputs)
      : names_(std::move(names)), inputs_(std::move(inputs)) {}

  Value Eval(const Row& row) const override;
  std::string ToString() const override;

 private:
  std::vector<std::string> names_;
  std::vector<ExprPtr> inputs_;
};

/// Built-in scalar functions over arrays and scalars.
enum class BuiltinFn {
  kCardinality,     // cardinality(array) -> int64
  kArrayContains,   // array_contains(array, v) -> bool
  kArrayIntersect,  // array_intersect(a, b) -> array
  kArrayPosition,   // array_position(array, v) -> 1-based index or null
  kLower,           // lower(string)
  kUpper,           // upper(string)
  kLength,          // length(string) -> int64
  kAbs,             // abs(numeric)
  kCoalesce,        // first non-null argument
};

class FunctionExpr : public Expr {
 public:
  FunctionExpr(BuiltinFn fn, std::vector<ExprPtr> args)
      : fn_(fn), args_(std::move(args)) {}

  Value Eval(const Row& row) const override;
  std::string ToString() const override;

  /// Maps a lower-case function name to its enum; error if unknown.
  static Result<BuiltinFn> FunctionByName(const std::string& name);
  static const char* FunctionName(BuiltinFn fn);

 private:
  BuiltinFn fn_;
  std::vector<ExprPtr> args_;
};

// ---- Convenience factories -------------------------------------------------

ExprPtr MakeColumnRef(int index, std::string name);
ExprPtr MakeLiteral(Value value);
ExprPtr MakeCompare(CompareOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeAnd(ExprPtr left, ExprPtr right);
ExprPtr MakeOr(ExprPtr left, ExprPtr right);
ExprPtr MakeNot(ExprPtr input);
ExprPtr MakeArithmetic(ArithmeticOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeFunction(BuiltinFn fn, std::vector<ExprPtr> args);
ExprPtr MakeInList(ExprPtr input, std::vector<Value> values);

/// Conjunction of a list of predicates (nullptr when empty).
ExprPtr ConjoinAll(std::vector<ExprPtr> predicates);

/// Evaluates a predicate for filtering: true only if Eval yields
/// boolean true (null and false both reject).
inline bool EvalPredicate(const Expr& expr, const Row& row) {
  Value v = expr.Eval(row);
  return v.kind() == TypeKind::kBool && v.as_bool();
}

}  // namespace erbium

#endif  // ERBIUM_EXEC_EXPR_H_
