#ifndef ERBIUM_EXEC_EXPLAIN_H_
#define ERBIUM_EXEC_EXPLAIN_H_

#include <string>

#include "exec/operator.h"
#include "obs/trace.h"

namespace erbium {

/// Collects the plan's span tree, preorder. Parallel segments are
/// rendered as the serial plan they were cloned from, with each worker
/// clone's stats merged position-wise onto the matching serial node
/// (clones are structurally node-for-node identical to the serial plan),
/// so the printed tree has the same shape whether the plan ran serial or
/// parallel — only the Gather / parallel-aggregate wrapper node itself
/// differs.
obs::QueryStats CollectQueryStats(const Operator& root);

/// EXPLAIN rendering: the span tree as an indented list of operator
/// names and details, without stats columns.
std::string RenderPlanTree(const Operator& root);

}  // namespace erbium

#endif  // ERBIUM_EXEC_EXPLAIN_H_
