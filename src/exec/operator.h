#ifndef ERBIUM_EXEC_OPERATOR_H_
#define ERBIUM_EXEC_OPERATOR_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/expr.h"
#include "obs/trace.h"
#include "storage/table.h"

namespace erbium {

class Operator;
class ParallelContext;  // exec/parallel.h

using OperatorPtr = std::unique_ptr<Operator>;

/// Volcano-style pull operator. Usage: Open(), then Next() until it
/// returns false. Open() may be called again to re-execute. Runtime errors
/// cannot occur after successful construction (plans are bound/validated
/// by the translator), so Next is a plain bool.
class Operator {
 public:
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Names/types of the produced columns, for resolution and printing.
  const std::vector<Column>& output_columns() const { return output_; }

  /// Non-virtual execution entry points. The wrappers feed per-instance
  /// OpStats: opens and rows_out are always counted (one add per call);
  /// wall/CPU time is recorded only inside an EXPLAIN ANALYZE window
  /// (obs::AnalyzeEnabled()), and is inclusive of children since a Next
  /// typically pulls from its child inside the timed region. Subclasses
  /// implement OpenImpl/NextImpl.
  Status Open();
  bool Next(Row* out);

  /// Execution stats accumulated by Open/Next since construction. One
  /// instance is driven by one thread at a time, so reading this is only
  /// safe once execution (including pool workers) has finished.
  const obs::OpStats& stats() const { return stats_; }

  /// Extra EXPLAIN ANALYZE annotation for this node (parallel operators
  /// report morsel/batch distribution); empty by default.
  virtual std::string AnalyzeDetail() const { return std::string(); }

  /// One-line description of this node (no children).
  virtual std::string name() const = 0;
  virtual std::vector<const Operator*> children() const { return {}; }

  /// Morsel-parallel execution support (exec/parallel.h). Returns a fresh
  /// operator performing this node's work as one of several identical
  /// worker pipelines: table scans become ParallelScanOp sharing a morsel
  /// cursor registered in `ctx` (keyed by this node's address), hash joins
  /// become probe operators over a shared build. Returns nullptr when the
  /// node cannot run morsel-parallel (the default); `this` stays usable as
  /// the serial plan either way. The original plan must outlive the clones.
  virtual OperatorPtr CloneForWorker(ParallelContext* ctx) const;

  /// Estimated number of rows this operator will produce, or 0 if unknown.
  /// An upper bound is fine; used only for container reservations.
  virtual size_t EstimatedRowCount() const { return 0; }

 protected:
  Operator() = default;

  virtual Status OpenImpl() = 0;
  virtual bool NextImpl(Row* out) = 0;

  std::vector<Column> output_;
  obs::OpStats stats_;

 private:
  Status OpenTimed();
  bool NextTimed(Row* out);
};

inline Status Operator::Open() {
  ++stats_.opens;
  if (obs::AnalyzeEnabled()) return OpenTimed();
  return OpenImpl();
}

inline bool Operator::Next(Row* out) {
  if (obs::AnalyzeEnabled()) return NextTimed(out);
  bool ok = NextImpl(out);
  stats_.rows_out += static_cast<uint64_t>(ok);
  return ok;
}

/// Renders an indented plan tree.
std::string PrintPlan(const Operator& root);

/// Drains an operator into a vector of rows. Returns the status of Open().
Result<std::vector<Row>> CollectRows(Operator* op);

// ---- Leaf operators --------------------------------------------------------

/// Full scan over the live rows of a table, reading a version pinned at
/// Open() (the ambient exec::ReadSnapshot's pin, or its own).
class SeqScan : public Operator {
 public:
  explicit SeqScan(const Table* table);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override { return "SeqScan(" + table_->name() + ")"; }
  OperatorPtr CloneForWorker(ParallelContext* ctx) const override;
  size_t EstimatedRowCount() const override { return table_->size(); }

 private:
  const Table* table_;
  /// Resolved at Open(); owned by the statement's ReadSnapshot (raw) or
  /// by owned_pin_. Stale between executions, never dereferenced then.
  const TableVersion* version_ = nullptr;
  std::shared_ptr<const TableVersion> owned_pin_;
  RowId next_ = 0;
};

/// Point lookup of one key through the table's index on the given columns
/// (falls back to scan if no index exists), probing a version pinned at
/// Open() so it never blocks behind — or observes half of — a writer.
class IndexLookup : public Operator {
 public:
  IndexLookup(const Table* table, std::vector<int> column_indexes,
              IndexKey key);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override {
    return "IndexLookup(" + table_->name() + ")";
  }

 private:
  const Table* table_;
  const TableVersion* version_ = nullptr;
  std::shared_ptr<const TableVersion> owned_pin_;
  std::vector<int> column_indexes_;
  IndexKey key_;
  std::vector<RowId> matches_;
  size_t next_ = 0;
};

/// Emits a fixed list of rows (IN-lists of keys, tests, VALUES clauses).
class ValuesOp : public Operator {
 public:
  ValuesOp(std::vector<Column> columns, std::vector<Row> rows);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override {
    return "Values(" + std::to_string(rows_.size()) + " rows)";
  }
  size_t EstimatedRowCount() const override { return rows_.size(); }

 private:
  std::vector<Row> rows_;
  size_t next_ = 0;
};

// ---- Unary operators -------------------------------------------------------

class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override {
    return "Filter(" + predicate_->ToString() + ")";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  OperatorPtr CloneForWorker(ParallelContext* ctx) const override;
  // Upper bound: assumes the predicate keeps everything.
  size_t EstimatedRowCount() const override {
    return child_->EstimatedRowCount();
  }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<Column> output,
            std::vector<ExprPtr> exprs);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  OperatorPtr CloneForWorker(ParallelContext* ctx) const override;
  size_t EstimatedRowCount() const override {
    return child_->EstimatedRowCount();
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
};

class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, size_t limit);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override {
    return "Limit(" + std::to_string(limit_) + ")";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  size_t EstimatedRowCount() const override {
    size_t child = child_->EstimatedRowCount();
    return child == 0 ? limit_ : std::min(child, limit_);
  }

 private:
  OperatorPtr child_;
  size_t limit_;
  size_t produced_ = 0;
};

/// Hash-based duplicate elimination over the full row.
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child);
  ~DistinctOp() override;

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override { return "Distinct"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  size_t EstimatedRowCount() const override {
    return child_->EstimatedRowCount();
  }

 private:
  struct SeenSet;
  OperatorPtr child_;
  std::unique_ptr<SeenSet> seen_;
};

/// Expands an array column: one output row per element, with the array
/// column replaced by the element value. With `outer` set, rows whose
/// array is null/empty are emitted once with a null element (mirrors a
/// left join against a side table).
class UnnestOp : public Operator {
 public:
  UnnestOp(OperatorPtr child, int array_column, std::string element_name,
           bool outer = false);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }
  OperatorPtr CloneForWorker(ParallelContext* ctx) const override;

 private:
  OperatorPtr child_;
  int array_column_;
  bool outer_;
  Row current_;
  bool has_current_ = false;
  size_t element_index_ = 0;
};

// ---- N-ary operators -------------------------------------------------------

/// Bag union of children with identical arity; output columns come from
/// the first child. Children whose tables lack some columns must be
/// padded with null projections by the planner (M4 superclass scans).
class UnionAllOp : public Operator {
 public:
  explicit UnionAllOp(std::vector<OperatorPtr> children);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override { return "UnionAll"; }
  std::vector<const Operator*> children() const override;
  OperatorPtr CloneForWorker(ParallelContext* ctx) const override;
  size_t EstimatedRowCount() const override;

 private:
  std::vector<OperatorPtr> children_;
  size_t current_ = 0;
};

}  // namespace erbium

#endif  // ERBIUM_EXEC_OPERATOR_H_
