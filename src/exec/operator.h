#ifndef ERBIUM_EXEC_OPERATOR_H_
#define ERBIUM_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/expr.h"
#include "storage/table.h"

namespace erbium {

/// Volcano-style pull operator. Usage: Open(), then Next() until it
/// returns false. Open() may be called again to re-execute. Runtime errors
/// cannot occur after successful construction (plans are bound/validated
/// by the translator), so Next is a plain bool.
class Operator {
 public:
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Names/types of the produced columns, for resolution and printing.
  const std::vector<Column>& output_columns() const { return output_; }

  virtual Status Open() = 0;
  virtual bool Next(Row* out) = 0;

  /// One-line description of this node (no children).
  virtual std::string name() const = 0;
  virtual std::vector<const Operator*> children() const { return {}; }

 protected:
  Operator() = default;
  std::vector<Column> output_;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Renders an indented plan tree.
std::string PrintPlan(const Operator& root);

/// Drains an operator into a vector of rows. Returns the status of Open().
Result<std::vector<Row>> CollectRows(Operator* op);

// ---- Leaf operators --------------------------------------------------------

/// Full scan over the live rows of a table.
class SeqScan : public Operator {
 public:
  explicit SeqScan(const Table* table);

  Status Open() override;
  bool Next(Row* out) override;
  std::string name() const override { return "SeqScan(" + table_->name() + ")"; }

 private:
  const Table* table_;
  RowId next_ = 0;
};

/// Point lookup of one key through the table's index on the given columns
/// (falls back to scan inside Table::LookupEqual if no index exists).
class IndexLookup : public Operator {
 public:
  IndexLookup(const Table* table, std::vector<int> column_indexes,
              IndexKey key);

  Status Open() override;
  bool Next(Row* out) override;
  std::string name() const override {
    return "IndexLookup(" + table_->name() + ")";
  }

 private:
  const Table* table_;
  std::vector<int> column_indexes_;
  IndexKey key_;
  std::vector<RowId> matches_;
  size_t next_ = 0;
};

/// Emits a fixed list of rows (IN-lists of keys, tests, VALUES clauses).
class ValuesOp : public Operator {
 public:
  ValuesOp(std::vector<Column> columns, std::vector<Row> rows);

  Status Open() override;
  bool Next(Row* out) override;
  std::string name() const override {
    return "Values(" + std::to_string(rows_.size()) + " rows)";
  }

 private:
  std::vector<Row> rows_;
  size_t next_ = 0;
};

// ---- Unary operators -------------------------------------------------------

class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate);

  Status Open() override;
  bool Next(Row* out) override;
  std::string name() const override {
    return "Filter(" + predicate_->ToString() + ")";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<Column> output,
            std::vector<ExprPtr> exprs);

  Status Open() override;
  bool Next(Row* out) override;
  std::string name() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
};

class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, size_t limit);

  Status Open() override;
  bool Next(Row* out) override;
  std::string name() const override {
    return "Limit(" + std::to_string(limit_) + ")";
  }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
  size_t limit_;
  size_t produced_ = 0;
};

/// Hash-based duplicate elimination over the full row.
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child);
  ~DistinctOp() override;

  Status Open() override;
  bool Next(Row* out) override;
  std::string name() const override { return "Distinct"; }
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  struct SeenSet;
  OperatorPtr child_;
  std::unique_ptr<SeenSet> seen_;
};

/// Expands an array column: one output row per element, with the array
/// column replaced by the element value. With `outer` set, rows whose
/// array is null/empty are emitted once with a null element (mirrors a
/// left join against a side table).
class UnnestOp : public Operator {
 public:
  UnnestOp(OperatorPtr child, int array_column, std::string element_name,
           bool outer = false);

  Status Open() override;
  bool Next(Row* out) override;
  std::string name() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
  int array_column_;
  bool outer_;
  Row current_;
  bool has_current_ = false;
  size_t element_index_ = 0;
};

// ---- N-ary operators -------------------------------------------------------

/// Bag union of children with identical arity; output columns come from
/// the first child. Children whose tables lack some columns must be
/// padded with null projections by the planner (M4 superclass scans).
class UnionAllOp : public Operator {
 public:
  explicit UnionAllOp(std::vector<OperatorPtr> children);

  Status Open() override;
  bool Next(Row* out) override;
  std::string name() const override { return "UnionAll"; }
  std::vector<const Operator*> children() const override;

 private:
  std::vector<OperatorPtr> children_;
  size_t current_ = 0;
};

}  // namespace erbium

#endif  // ERBIUM_EXEC_OPERATOR_H_
