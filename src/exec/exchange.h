#ifndef ERBIUM_EXEC_EXCHANGE_H_
#define ERBIUM_EXEC_EXCHANGE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "common/value.h"

namespace erbium {

/// Merges per-producer bounded batch queues under one mutex: producers
/// wait for space in their own queue, the single consumer waits for any
/// batch. Extracted from GatherOp so every exchange-shaped operator
/// (morsel-parallel gather, cross-shard gather) shares one implementation.
class RowExchange {
 public:
  explicit RowExchange(size_t num_producers, size_t max_queued_per_producer = 4)
      : slots_(num_producers),
        max_queued_per_producer_(max_queued_per_producer) {}

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // Returns false when cancelled (the batch is dropped).
  bool Push(size_t producer, std::vector<Row> batch) {
    std::unique_lock<std::mutex> lock(mu_);
    producer_cv_.wait(lock, [&] {
      return cancelled() ||
             slots_[producer].batches.size() < max_queued_per_producer_;
    });
    if (cancelled()) return false;
    slots_[producer].batches.push_back(std::move(batch));
    consumer_cv_.notify_one();
    return true;
  }

  // Returns true if this producer was the last one to finish.
  bool MarkDone(size_t producer) {
    std::lock_guard<std::mutex> lock(mu_);
    slots_[producer].done = true;
    ++done_count_;
    consumer_cv_.notify_one();
    return done_count_ == slots_.size();
  }

  // Blocks for the next batch; false when every producer is done and all
  // queues are drained (or the exchange was cancelled).
  bool PopBatch(std::vector<Row>* out) {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (cancelled()) return false;
      for (size_t i = 0; i < slots_.size(); ++i) {
        Slot& slot = slots_[(rr_ + i) % slots_.size()];
        if (!slot.batches.empty()) {
          *out = std::move(slot.batches.front());
          slot.batches.pop_front();
          rr_ = (rr_ + i + 1) % slots_.size();
          producer_cv_.notify_all();
          return true;
        }
      }
      if (done_count_ == slots_.size()) return false;
      consumer_cv_.wait(lock);
    }
  }

  void Cancel() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      cancelled_.store(true, std::memory_order_relaxed);
    }
    producer_cv_.notify_all();
    consumer_cv_.notify_all();
  }

 private:
  struct Slot {
    std::deque<std::vector<Row>> batches;
    bool done = false;
  };

  std::mutex mu_;
  std::condition_variable producer_cv_;
  std::condition_variable consumer_cv_;
  std::vector<Slot> slots_;
  size_t max_queued_per_producer_;
  size_t done_count_ = 0;
  size_t rr_ = 0;
  std::atomic<bool> cancelled_{false};
};

}  // namespace erbium

#endif  // ERBIUM_EXEC_EXCHANGE_H_
