#ifndef ERBIUM_EXEC_SNAPSHOT_H_
#define ERBIUM_EXEC_SNAPSHOT_H_

#include <memory>
#include <unordered_map>
#include <vector>

namespace erbium {
namespace exec {

/// The per-statement read snapshot: a cache of pinned versions, one per
/// versioned object (Table / FactorizedPair), installed as a
/// thread-local scope for the duration of a statement.
///
/// QueryEngine::Execute installs one at its top, so every operator a
/// statement opens — across all its tables — resolves the *same* pinned
/// version per table: one statement, one consistent view of each table,
/// unaffected by concurrent writers.
///
/// Operators resolve versions through ResolveVersion() below at Open()
/// time and keep only the raw pointer; the snapshot owns the pins and
/// outlives execution. A raw pointer cached inside a checked-in plan
/// therefore dangles once the statement finishes — harmless, because the
/// next Open() re-resolves before anything dereferences it. Contexts
/// without an installed snapshot (migration scans, recovery, direct
/// operator use in tests) fall back to an operator-owned pin.
///
/// Pool workers must not resolve versions themselves: worker pipelines
/// are Open()ed on the statement thread, and ParallelContext pins the
/// scanned versions for the workers' (possibly detached) lifetime.
class ReadSnapshot {
 public:
  ReadSnapshot() : prev_(tls_current_) { tls_current_ = this; }
  ~ReadSnapshot() { tls_current_ = prev_; }

  ReadSnapshot(const ReadSnapshot&) = delete;
  ReadSnapshot& operator=(const ReadSnapshot&) = delete;

  /// The snapshot installed on this thread, or nullptr.
  static ReadSnapshot* Current() { return tls_current_; }

  /// The pinned version of `obj` (Table or FactorizedPair), pinning on
  /// first touch. The pointer stays valid while this snapshot lives.
  template <typename Versioned>
  std::shared_ptr<const typename Versioned::VersionType> Pin(
      const Versioned* obj) {
    const void* key = obj;
    auto it = pins_.find(key);
    if (it == pins_.end()) {
      it = pins_.emplace(key, obj->PinVersion()).first;
    }
    return std::static_pointer_cast<const typename Versioned::VersionType>(
        it->second);
  }

  /// Shared ownership of every pin taken so far. Operators that hand
  /// pipelines to detached pool workers (cross-shard gather) copy these
  /// after opening their children, so the versions the children resolved
  /// stay valid even if the workers outlive the statement's snapshot.
  std::vector<std::shared_ptr<const void>> SharedPins() const {
    std::vector<std::shared_ptr<const void>> out;
    out.reserve(pins_.size());
    for (const auto& [key, pin] : pins_) out.push_back(pin);
    return out;
  }

 private:
  static thread_local ReadSnapshot* tls_current_;

  std::unordered_map<const void*, std::shared_ptr<const void>> pins_;
  ReadSnapshot* prev_;
};

/// Resolves the version an operator should read: the ambient snapshot's
/// pin when one is installed (shared per statement; `owned` is cleared —
/// the snapshot keeps it alive), else a fresh pin stored into `owned`.
template <typename Versioned>
const typename Versioned::VersionType* ResolveVersion(
    const Versioned* obj,
    std::shared_ptr<const typename Versioned::VersionType>* owned) {
  if (ReadSnapshot* snapshot = ReadSnapshot::Current()) {
    owned->reset();
    return snapshot->Pin(obj).get();
  }
  *owned = obj->PinVersion();
  return owned->get();
}

/// Shared-ownership variant for holders that must keep the version alive
/// beyond the statement scope (ParallelContext pinning scan versions for
/// detached pool workers). Resolves through the ambient snapshot so the
/// pinned version matches what the statement's operators resolved.
template <typename Versioned>
std::shared_ptr<const typename Versioned::VersionType> SharedVersion(
    const Versioned* obj) {
  if (ReadSnapshot* snapshot = ReadSnapshot::Current()) {
    return snapshot->Pin(obj);
  }
  return obj->PinVersion();
}

}  // namespace exec
}  // namespace erbium

#endif  // ERBIUM_EXEC_SNAPSHOT_H_
