#include "exec/parallel.h"

#include "exec/exchange.h"
#include "exec/snapshot.h"

#include <cerrno>
#include <climits>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <set>
#include <thread>

namespace erbium {

namespace {

// Rows per batch pushed through a GatherOp exchange, and the per-worker
// bound on queued batches (backpressure when the consumer is slower than
// the producers).
constexpr size_t kGatherBatchRows = 1024;
constexpr size_t kMaxQueuedBatchesPerWorker = 4;

// Partition count for parallel hash-join builds; a small prime so the
// partition index (hash % count) is independent of the power-of-two
// bucket choice inside each partition's unordered_map.
constexpr size_t kJoinBuildPartitions = 61;

void AppendRow(const Row& src, Row* dst) {
  dst->insert(dst->end(), src.begin(), src.end());
}

void AppendNulls(size_t n, Row* dst) {
  for (size_t i = 0; i < n; ++i) dst->push_back(Value::Null());
}

bool KeyHasNull(const std::vector<Value>& key) {
  for (const Value& v : key) {
    if (v.is_null()) return true;
  }
  return false;
}

std::vector<Value> EvalKeys(const std::vector<ExprPtr>& exprs,
                            const Row& row) {
  std::vector<Value> key;
  key.reserve(exprs.size());
  for (const ExprPtr& e : exprs) key.push_back(e->Eval(row));
  return key;
}

/// Strictly parsed integer environment variable. Garbage ("abc", "4x",
/// out-of-range) falls back to `fallback` with a one-time stderr warning
/// per variable instead of silently becoming 0 the way atoi would.
int EnvInt(const char* name, int fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  long parsed = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE || parsed < INT_MIN ||
      parsed > INT_MAX) {
    static std::mutex warn_mu;
    static std::set<std::string>* warned = new std::set<std::string>();
    std::lock_guard<std::mutex> lock(warn_mu);
    if (warned->insert(name).second) {
      std::fprintf(stderr,
                   "erbium: ignoring unparseable %s='%s' (using default %d)\n",
                   name, s, fallback);
    }
    return fallback;
  }
  return static_cast<int>(parsed);
}

}  // namespace

ExecOptions ExecOptions::Default() {
  ExecOptions opts;
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  int threads = EnvInt("ERBIUM_THREADS", hw > 0 ? hw : 1);
  opts.num_threads = std::min(std::max(threads, 1), 64);
  int threshold = EnvInt("ERBIUM_PARALLEL_THRESHOLD",
                         static_cast<int>(opts.parallel_row_threshold));
  opts.parallel_row_threshold =
      threshold < 0 ? 0 : static_cast<size_t>(threshold);
  return opts;
}

// ---- ParallelContext --------------------------------------------------------

ParallelContext::ParallelContext(ThreadPool* pool, const ExecOptions& opts,
                                 ParallelContext* parent)
    : pool_(pool), opts_(opts), parent_(parent) {
  // Grow the shared pool up-front so tests can run more workers than the
  // machine has cores.
  pool_->EnsureWorkers(opts_.num_threads);
}

ParallelContext::~ParallelContext() {
  if (pins_held_) ReleaseScanVersions();
}

std::shared_ptr<MorselCursor> ParallelContext::CursorFor(const void* site,
                                                         const Table* table) {
  for (const auto& [s, cursor] : cursors_) {
    if (s == site) return cursor;
  }
  auto cursor = std::make_shared<MorselCursor>(table, opts_.morsel_size);
  cursors_.emplace_back(site, cursor);
  RegisterTable(table);
  return cursor;
}

std::shared_ptr<JoinBuildState> ParallelContext::JoinStateFor(
    const void* site, Operator* build_plan,
    const std::vector<ExprPtr>& build_keys) {
  for (const auto& [s, state] : join_states_) {
    if (s == site) return state;
  }
  auto state = std::make_shared<JoinBuildState>(this, build_plan, build_keys);
  join_states_.emplace_back(site, state);
  return state;
}

void ParallelContext::RegisterTable(const Table* table) {
  if (parent_ != nullptr) {
    parent_->RegisterTable(table);
    return;
  }
  for (const Table* t : tables_) {
    if (t == table) return;
  }
  tables_.push_back(table);
}

void ParallelContext::ResetForExecution() {
  for (auto& [site, cursor] : cursors_) cursor->Reset();
  for (auto& [site, state] : join_states_) state->Invalidate();
}

size_t ParallelContext::TotalScanSlots() const {
  size_t total = 0;
  for (const auto& [site, cursor] : cursors_) {
    total += cursor->table->slot_count();
  }
  for (const auto& [site, state] : join_states_) {
    total += state->ScanSlots();
  }
  return total;
}

void ParallelContext::PinScanVersions() {
  if (parent_ != nullptr) return;  // root holds the pins
  if (pins_held_) return;
  // exec::SharedVersion resolves through the ambient ReadSnapshot when one
  // is installed, so these pins are the SAME versions the worker pipelines
  // resolve at Open — keeping their raw version pointers valid even if a
  // detached worker outlives the statement's snapshot scope. Pin/release
  // calls never overlap: Pin runs on the caller thread before workers
  // launch, and Release runs either on the last worker to finish or on the
  // caller after joining the futures.
  pinned_versions_.reserve(tables_.size());
  for (const Table* t : tables_) {
    pinned_versions_.push_back(exec::SharedVersion(t));
  }
  pins_held_ = true;
}

void ParallelContext::ReleaseScanVersions() {
  if (parent_ != nullptr) return;
  if (!pins_held_) return;
  pinned_versions_.clear();
  pins_held_ = false;
}

// ---- ParallelScanOp ---------------------------------------------------------

ParallelScanOp::ParallelScanOp(const Table* table,
                               std::shared_ptr<MorselCursor> cursor)
    : table_(table), cursor_(std::move(cursor)) {
  output_ = table_->schema().columns();
}

Status ParallelScanOp::OpenImpl() {
  // The shared cursor is reset once per execution by the context (the
  // enclosing Gather/aggregate), not per worker.
  version_ = exec::ResolveVersion(table_, &owned_pin_);
  pos_ = 0;
  limit_ = 0;
  return Status::OK();
}

bool ParallelScanOp::NextImpl(Row* out) {
  // The cursor's range comes from the latest published slot_count, which
  // may exceed this worker's pinned bound if a writer published between
  // the cursor Reset and our Open; clamp claimed morsels to the pin.
  const size_t bound = version_->slot_count();
  while (true) {
    if (limit_ > bound) limit_ = bound;
    while (pos_ < limit_) {
      const Row* r = version_->row(pos_++);
      if (r != nullptr) {
        *out = *r;
        return true;
      }
    }
    if (!cursor_->Claim(&pos_, &limit_)) return false;
    ++morsels_;
  }
}

// ---- JoinBuildState ---------------------------------------------------------

JoinBuildState::JoinBuildState(ParallelContext* parent, Operator* build_plan,
                               std::vector<ExprPtr> build_keys)
    : build_plan_(build_plan),
      build_keys_(std::move(build_keys)),
      num_partitions_(kJoinBuildPartitions) {
  // Try to parallelize the build itself. Build pipelines run on pool
  // threads, so they must not contain nested probe operators (a pool task
  // waiting on another pool task can deadlock); the sub-context's parent
  // link disables join-probe cloning.
  sub_ctx_ = std::make_unique<ParallelContext>(parent->pool(),
                                              parent->options(), parent);
  for (int i = 0; i < parent->options().num_threads; ++i) {
    OperatorPtr worker = build_plan_->CloneForWorker(sub_ctx_.get());
    if (worker == nullptr) {
      build_workers_.clear();
      break;
    }
    build_workers_.push_back(std::move(worker));
  }
}

JoinBuildState::~JoinBuildState() = default;

size_t JoinBuildState::ScanSlots() const { return sub_ctx_->TotalScanSlots(); }

void JoinBuildState::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  built_ = false;
  partitions_.clear();
}

void JoinBuildState::InsertBuildRow(Row row) {
  std::vector<Value> key = EvalKeys(build_keys_, row);
  if (KeyHasNull(key)) return;  // null never joins
  size_t h = ValueVectorHash()(key);
  partitions_[h % num_partitions_][std::move(key)].push_back(std::move(row));
}

Status JoinBuildState::EnsureBuilt() {
  std::lock_guard<std::mutex> lock(mu_);
  if (built_) return Status::OK();
  partitions_.assign(num_partitions_, Partition());
  if (build_workers_.empty()) {
    // Serial build through the original child.
    ERBIUM_RETURN_NOT_OK(build_plan_->Open());
    Row row;
    while (build_plan_->Next(&row)) InsertBuildRow(std::move(row));
    built_ = true;
    return Status::OK();
  }

  sub_ctx_->ResetForExecution();
  for (const OperatorPtr& w : build_workers_) {
    ERBIUM_RETURN_NOT_OK(w->Open());
  }
  // Phase 1: each build worker partitions its share of the rows by key
  // hash into thread-local buckets.
  using KeyedRow = std::pair<std::vector<Value>, Row>;
  std::vector<std::vector<std::vector<KeyedRow>>> scratch(
      build_workers_.size());
  std::vector<std::future<void>> futures;
  futures.reserve(build_workers_.size());
  for (size_t b = 0; b < build_workers_.size(); ++b) {
    futures.push_back(sub_ctx_->pool()->Submit([this, b, &scratch] {
      std::vector<std::vector<KeyedRow>> local(num_partitions_);
      Row row;
      while (build_workers_[b]->Next(&row)) {
        std::vector<Value> key = EvalKeys(build_keys_, row);
        if (KeyHasNull(key)) continue;
        size_t h = ValueVectorHash()(key);
        local[h % num_partitions_].emplace_back(std::move(key),
                                                std::move(row));
      }
      scratch[b] = std::move(local);
    }));
  }
  for (std::future<void>& f : futures) f.wait();
  futures.clear();

  // Phase 2: merge partition-wise — each partition's hash table touches
  // only that partition's buckets, so partitions build independently.
  for (size_t p = 0; p < num_partitions_; ++p) {
    futures.push_back(sub_ctx_->pool()->Submit([this, p, &scratch] {
      size_t total = 0;
      for (const auto& local : scratch) total += local[p].size();
      if (total == 0) return;
      partitions_[p].reserve(total);
      for (auto& local : scratch) {
        for (KeyedRow& kr : local[p]) {
          partitions_[p][std::move(kr.first)].push_back(std::move(kr.second));
        }
      }
    }));
  }
  for (std::future<void>& f : futures) f.wait();
  built_ = true;
  return Status::OK();
}

const std::vector<Row>* JoinBuildState::Probe(
    const std::vector<Value>& key) const {
  size_t h = ValueVectorHash()(key);
  const Partition& part = partitions_[h % num_partitions_];
  auto it = part.find(key);
  return it == part.end() ? nullptr : &it->second;
}

// ---- HashJoinProbeOp --------------------------------------------------------

HashJoinProbeOp::HashJoinProbeOp(OperatorPtr probe_child,
                                 std::vector<ExprPtr> probe_keys,
                                 std::shared_ptr<JoinBuildState> state,
                                 JoinType join_type,
                                 std::vector<Column> output,
                                 size_t build_arity, std::string display_name)
    : probe_child_(std::move(probe_child)),
      probe_keys_(std::move(probe_keys)),
      state_(std::move(state)),
      join_type_(join_type),
      build_arity_(build_arity),
      display_name_(std::move(display_name)) {
  output_ = std::move(output);
}

Status HashJoinProbeOp::OpenImpl() {
  current_matches_ = nullptr;
  match_index_ = 0;
  ERBIUM_RETURN_NOT_OK(state_->EnsureBuilt());
  return probe_child_->Open();
}

bool HashJoinProbeOp::NextImpl(Row* out) {
  while (true) {
    if (current_matches_ != nullptr &&
        match_index_ < current_matches_->size()) {
      *out = current_left_;
      AppendRow((*current_matches_)[match_index_++], out);
      return true;
    }
    current_matches_ = nullptr;
    if (!probe_child_->Next(&current_left_)) return false;
    std::vector<Value> key = EvalKeys(probe_keys_, current_left_);
    const std::vector<Row>* matches =
        KeyHasNull(key) ? nullptr : state_->Probe(key);
    if (matches == nullptr) {
      if (join_type_ == JoinType::kLeftOuter) {
        *out = current_left_;
        AppendNulls(build_arity_, out);
        return true;
      }
      continue;
    }
    current_matches_ = matches;
    match_index_ = 0;
  }
}

// ---- GatherOp ---------------------------------------------------------------

GatherOp::GatherOp(OperatorPtr serial_plan, std::vector<OperatorPtr> workers,
                   std::shared_ptr<ParallelContext> ctx)
    : serial_plan_(std::move(serial_plan)),
      workers_(std::move(workers)),
      ctx_(std::move(ctx)) {
  output_ = serial_plan_->output_columns();
}

GatherOp::~GatherOp() { Shutdown(); }

void GatherOp::Shutdown() {
  if (exchange_ != nullptr) exchange_->Cancel();
  for (std::future<void>& f : futures_) {
    if (f.valid()) f.wait();
  }
  futures_.clear();
  exchange_.reset();
  // Pins were dropped by the last worker's MarkDone; this only covers the
  // Open-failure path where no workers launched.
  ctx_->ReleaseScanVersions();
}

Status GatherOp::OpenImpl() {
  Shutdown();
  ctx_->ResetForExecution();
  ctx_->PinScanVersions();
  // Worker Opens run serially on the caller thread; the first probe of
  // each parallelized hash join builds the shared table here.
  for (const OperatorPtr& w : workers_) {
    Status s = w->Open();
    if (!s.ok()) {
      ctx_->ReleaseScanVersions();
      return s;
    }
  }
  ctx_->pool()->EnsureWorkers(static_cast<int>(workers_.size()));
  exchange_ = std::make_unique<RowExchange>(workers_.size(),
                                           kMaxQueuedBatchesPerWorker);
  futures_.reserve(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    futures_.push_back(ctx_->pool()->Submit([this, i] { WorkerMain(i); }));
  }
  current_batch_.clear();
  batch_pos_ = 0;
  return Status::OK();
}

void GatherOp::WorkerMain(size_t worker) {
  RowExchange* ex = exchange_.get();
  std::vector<Row> batch;
  batch.reserve(kGatherBatchRows);
  Row row;
  while (!ex->cancelled() && workers_[worker]->Next(&row)) {
    batch.push_back(std::move(row));
    if (batch.size() >= kGatherBatchRows) {
      if (!ex->Push(worker, std::move(batch))) break;
      batch = std::vector<Row>();
      batch.reserve(kGatherBatchRows);
    }
  }
  if (!batch.empty()) ex->Push(worker, std::move(batch));
  // The last producer out drops the version pins on the scanned tables.
  if (ex->MarkDone(worker)) ctx_->ReleaseScanVersions();
}

bool GatherOp::NextImpl(Row* out) {
  while (true) {
    if (batch_pos_ < current_batch_.size()) {
      *out = std::move(current_batch_[batch_pos_++]);
      return true;
    }
    current_batch_.clear();
    batch_pos_ = 0;
    if (exchange_ == nullptr || !exchange_->PopBatch(&current_batch_)) {
      return false;
    }
    ++stats_.batches;
  }
}

std::string GatherOp::name() const {
  return "Gather(threads=" + std::to_string(workers_.size()) +
         ", morsel=" + std::to_string(ctx_->options().morsel_size) + ")";
}

// ---- ParallelHashAggregateOp ------------------------------------------------

ParallelHashAggregateOp::ParallelHashAggregateOp(
    OperatorPtr serial_child, std::vector<OperatorPtr> worker_children,
    std::vector<ExprPtr> group_exprs, std::vector<std::string> group_names,
    std::vector<AggregateSpec> aggregates, std::shared_ptr<ParallelContext> ctx)
    : serial_child_(std::move(serial_child)),
      worker_children_(std::move(worker_children)),
      group_exprs_(std::move(group_exprs)),
      aggregates_(std::move(aggregates)),
      ctx_(std::move(ctx)) {
  output_ = AggregateOutputColumns(group_names, aggregates_);
}

ParallelHashAggregateOp::~ParallelHashAggregateOp() = default;

Status ParallelHashAggregateOp::OpenImpl() {
  merged_ = std::make_unique<AggGroupTable>();
  next_group_ = 0;
  ctx_->ResetForExecution();
  ctx_->PinScanVersions();
  Status status = Status::OK();
  for (const OperatorPtr& w : worker_children_) {
    status = w->Open();
    if (!status.ok()) break;
  }
  if (status.ok()) {
    ctx_->pool()->EnsureWorkers(static_cast<int>(worker_children_.size()));
    std::vector<AggGroupTable> partials(worker_children_.size());
    std::vector<std::future<void>> futures;
    futures.reserve(worker_children_.size());
    for (size_t i = 0; i < worker_children_.size(); ++i) {
      futures.push_back(ctx_->pool()->Submit([this, i, &partials] {
        Row row;
        while (worker_children_[i]->Next(&row)) {
          partials[i].Accumulate(group_exprs_, aggregates_, row);
        }
      }));
    }
    for (std::future<void>& f : futures) f.wait();
    for (AggGroupTable& partial : partials) {
      merged_->Merge(aggregates_, std::move(partial));
    }
  }
  ctx_->ReleaseScanVersions();
  ERBIUM_RETURN_NOT_OK(status);
  // Global aggregate over empty input still emits one row.
  if (group_exprs_.empty() && merged_->states.empty()) {
    AggGroupState state;
    state.aggs.resize(aggregates_.size());
    merged_->states.push_back(std::move(state));
  }
  return Status::OK();
}

bool ParallelHashAggregateOp::NextImpl(Row* out) {
  if (merged_ == nullptr || next_group_ >= merged_->states.size()) {
    return false;
  }
  merged_->EmitGroup(next_group_++, aggregates_, out);
  return true;
}

std::string ParallelHashAggregateOp::name() const {
  std::string out = "ParallelHashAggregate(threads=" +
                    std::to_string(worker_children_.size()) + "; groups=";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_exprs_[i]->ToString();
  }
  out += "; aggs=";
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (i > 0) out += ", ";
    out += AggKindName(aggregates_[i].kind);
  }
  out += ")";
  return out;
}

// ---- Planner hooks ----------------------------------------------------------

namespace {

// Clones `plan` into num_threads worker pipelines sharing `ctx`. Returns
// an empty vector when the plan is not clonable or too small to benefit.
std::vector<OperatorPtr> CloneWorkers(const Operator& plan,
                                      ParallelContext* ctx,
                                      const ExecOptions& opts) {
  std::vector<OperatorPtr> workers;
  workers.reserve(static_cast<size_t>(opts.num_threads));
  for (int i = 0; i < opts.num_threads; ++i) {
    OperatorPtr worker = plan.CloneForWorker(ctx);
    if (worker == nullptr) return {};
    workers.push_back(std::move(worker));
  }
  if (ctx->TotalScanSlots() < opts.parallel_row_threshold) return {};
  return workers;
}

}  // namespace

OperatorPtr MaybeParallelGather(OperatorPtr plan, const ExecOptions& opts) {
  if (opts.num_threads <= 1 || plan == nullptr) return plan;
  auto ctx = std::make_shared<ParallelContext>(ThreadPool::Shared(), opts);
  std::vector<OperatorPtr> workers = CloneWorkers(*plan, ctx.get(), opts);
  if (workers.empty()) return plan;
  return std::make_unique<GatherOp>(std::move(plan), std::move(workers),
                                    std::move(ctx));
}

OperatorPtr MakeAggregatePlan(OperatorPtr child,
                              std::vector<ExprPtr> group_exprs,
                              std::vector<std::string> group_names,
                              std::vector<AggregateSpec> aggregates,
                              const ExecOptions& opts) {
  bool eligible = opts.num_threads > 1;
  for (const AggregateSpec& spec : aggregates) {
    // array_agg element order would depend on worker scheduling.
    if (spec.kind == AggKind::kArrayAgg) eligible = false;
  }
  if (eligible) {
    auto ctx = std::make_shared<ParallelContext>(ThreadPool::Shared(), opts);
    std::vector<OperatorPtr> workers = CloneWorkers(*child, ctx.get(), opts);
    if (!workers.empty()) {
      return std::make_unique<ParallelHashAggregateOp>(
          std::move(child), std::move(workers), std::move(group_exprs),
          std::move(group_names), std::move(aggregates), std::move(ctx));
    }
  }
  return std::make_unique<HashAggregateOp>(std::move(child),
                                           std::move(group_exprs),
                                           std::move(group_names),
                                           std::move(aggregates));
}

}  // namespace erbium
