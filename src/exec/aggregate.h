#ifndef ERBIUM_EXEC_AGGREGATE_H_
#define ERBIUM_EXEC_AGGREGATE_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "exec/operator.h"

namespace erbium {

enum class AggKind {
  kCountStar,
  kCount,     // non-null inputs
  kSum,
  kAvg,
  kMin,
  kMax,
  kArrayAgg,  // collects inputs (nulls skipped) into an array
};

const char* AggKindName(AggKind kind);
Result<AggKind> AggKindByName(const std::string& name);

/// One aggregate computation: kind + input expression (null for COUNT(*))
/// + output column name. `distinct` applies to kCount/kSum/kArrayAgg.
struct AggregateSpec {
  AggKind kind;
  ExprPtr input;  // nullptr only for kCountStar
  std::string output_name;
  bool distinct = false;
};

/// Running state of one aggregate. Shared between HashAggregateOp and the
/// factorized push-down aggregate.
class AggAccumulator {
 public:
  /// Feeds one input value (pass any value for kCountStar).
  void Update(const AggregateSpec& spec, const Value& v);
  /// Produces the result; the accumulator is consumed (array_agg moves).
  Value Finalize(const AggregateSpec& spec);

 private:
  int64_t count_ = 0;
  double sum_ = 0;
  bool sum_is_int_ = true;
  int64_t int_sum_ = 0;
  Value min_;
  Value max_;
  Value::ArrayData collected_;
  std::unique_ptr<std::unordered_set<Value, ValueHash>> distinct_seen_;
};

/// Hash aggregation: groups by the given key expressions and computes the
/// aggregate specs per group. Output columns: group keys (named by
/// `group_names`) followed by one column per aggregate. With no group
/// keys, emits exactly one row (global aggregate), even over empty input.
/// kArrayAgg is also how nested outputs are assembled (paper Section 2:
/// "a chain of array_agg and group by's", here as a single operator).
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                  std::vector<std::string> group_names,
                  std::vector<AggregateSpec> aggregates);
  ~HashAggregateOp() override;

  Status Open() override;
  bool Next(Row* out) override;
  std::string name() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  struct GroupState;
  struct Groups;

  OperatorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggregateSpec> aggregates_;
  std::unique_ptr<Groups> groups_;
  size_t next_group_ = 0;
};

}  // namespace erbium

#endif  // ERBIUM_EXEC_AGGREGATE_H_
