#ifndef ERBIUM_EXEC_AGGREGATE_H_
#define ERBIUM_EXEC_AGGREGATE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/operator.h"

namespace erbium {

enum class AggKind {
  kCountStar,
  kCount,     // non-null inputs
  kSum,
  kAvg,
  kMin,
  kMax,
  kArrayAgg,  // collects inputs (nulls skipped) into an array
};

const char* AggKindName(AggKind kind);
Result<AggKind> AggKindByName(const std::string& name);

/// One aggregate computation: kind + input expression (null for COUNT(*))
/// + output column name. `distinct` applies to kCount/kSum/kArrayAgg.
struct AggregateSpec {
  AggKind kind;
  ExprPtr input;  // nullptr only for kCountStar
  std::string output_name;
  bool distinct = false;
};

/// Running state of one aggregate. Shared between HashAggregateOp, the
/// factorized push-down aggregate, and parallel partial aggregation.
class AggAccumulator {
 public:
  /// Feeds one input value (pass any value for kCountStar).
  void Update(const AggregateSpec& spec, const Value& v);
  /// Folds another accumulator of the same spec into this one; `other` is
  /// consumed. Combining partial aggregates is exact for every kind except
  /// float sums, whose rounding depends on merge order (as in any parallel
  /// sum). kArrayAgg concatenates in merge order.
  void Merge(const AggregateSpec& spec, AggAccumulator&& other);
  /// Produces the result; the accumulator is consumed (array_agg moves).
  Value Finalize(const AggregateSpec& spec);

 private:
  int64_t count_ = 0;
  double sum_ = 0;
  bool sum_is_int_ = true;
  int64_t int_sum_ = 0;
  Value min_;
  Value max_;
  Value::ArrayData collected_;
  std::unique_ptr<std::unordered_set<Value, ValueHash>> distinct_seen_;
};

/// One group's key and accumulated aggregate states.
struct AggGroupState {
  std::vector<Value> key;
  std::vector<AggAccumulator> aggs;
};

/// Hash table of groups in first-seen order, shared between the serial
/// HashAggregateOp and parallel partial aggregation (each worker fills its
/// own table; tables are then merged pairwise).
struct AggGroupTable {
  std::unordered_map<std::vector<Value>, size_t, ValueVectorHash,
                     ValueVectorEq>
      index;
  std::vector<AggGroupState> states;

  /// Accumulates one input row into its group (creating it if new).
  void Accumulate(const std::vector<ExprPtr>& group_exprs,
                  const std::vector<AggregateSpec>& aggregates,
                  const Row& row);

  /// Folds `other` into this table; `other` is consumed.
  void Merge(const std::vector<AggregateSpec>& aggregates,
             AggGroupTable&& other);

  /// Emits group `i` as an output row (group keys then aggregate results);
  /// the group's state is consumed.
  void EmitGroup(size_t i, const std::vector<AggregateSpec>& aggregates,
                 Row* out);
};

/// Output column layout shared by the serial and parallel aggregate
/// operators: group keys (named by `group_names`) then one column per
/// aggregate.
std::vector<Column> AggregateOutputColumns(
    const std::vector<std::string>& group_names,
    const std::vector<AggregateSpec>& aggregates);

/// Hash aggregation: groups by the given key expressions and computes the
/// aggregate specs per group. Output columns: group keys (named by
/// `group_names`) followed by one column per aggregate. With no group
/// keys, emits exactly one row (global aggregate), even over empty input.
/// kArrayAgg is also how nested outputs are assembled (paper Section 2:
/// "a chain of array_agg and group by's", here as a single operator).
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                  std::vector<std::string> group_names,
                  std::vector<AggregateSpec> aggregates);
  ~HashAggregateOp() override;

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggregateSpec> aggregates_;
  std::unique_ptr<AggGroupTable> groups_;
  size_t next_group_ = 0;
};

}  // namespace erbium

#endif  // ERBIUM_EXEC_AGGREGATE_H_
