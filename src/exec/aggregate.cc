#include "exec/aggregate.h"

#include <unordered_map>

#include "common/string_util.h"

namespace erbium {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
      return "count(*)";
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kArrayAgg:
      return "array_agg";
  }
  return "?";
}

Result<AggKind> AggKindByName(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "count") return AggKind::kCount;
  if (lower == "sum") return AggKind::kSum;
  if (lower == "avg") return AggKind::kAvg;
  if (lower == "min") return AggKind::kMin;
  if (lower == "max") return AggKind::kMax;
  if (lower == "array_agg") return AggKind::kArrayAgg;
  return Status::AnalysisError("unknown aggregate function: " + name);
}

void AggAccumulator::Update(const AggregateSpec& spec, const Value& v) {
  if (spec.kind == AggKind::kCountStar) {
    ++count_;
    return;
  }
  if (v.is_null()) return;
  if (spec.distinct) {
    if (distinct_seen_ == nullptr) {
      distinct_seen_ =
          std::make_unique<std::unordered_set<Value, ValueHash>>();
    }
    if (!distinct_seen_->insert(v).second) return;
  }
  switch (spec.kind) {
    case AggKind::kCountStar:
      break;
    case AggKind::kCount:
      ++count_;
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      ++count_;
      if (v.kind() == TypeKind::kInt64 && sum_is_int_) {
        int_sum_ += v.as_int64();
      } else {
        if (sum_is_int_) {
          sum_ = static_cast<double>(int_sum_);
          sum_is_int_ = false;
        }
        sum_ += v.AsFloat64();
      }
      break;
    case AggKind::kMin:
      if (min_.is_null() || v.Compare(min_) < 0) min_ = v;
      break;
    case AggKind::kMax:
      if (max_.is_null() || v.Compare(max_) > 0) max_ = v;
      break;
    case AggKind::kArrayAgg:
      collected_.push_back(v);
      break;
  }
}

void AggAccumulator::Merge(const AggregateSpec& spec, AggAccumulator&& other) {
  if (spec.distinct && spec.kind != AggKind::kCountStar) {
    // Replay the other side's distinct values; Update dedups against this
    // side's seen-set, so values observed by both partials count once.
    if (other.distinct_seen_ != nullptr) {
      for (const Value& v : *other.distinct_seen_) Update(spec, v);
    }
    return;
  }
  switch (spec.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      count_ += other.count_;
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      count_ += other.count_;
      if (sum_is_int_ && other.sum_is_int_) {
        int_sum_ += other.int_sum_;
      } else {
        if (sum_is_int_) {
          sum_ = static_cast<double>(int_sum_);
          sum_is_int_ = false;
        }
        sum_ += other.sum_is_int_ ? static_cast<double>(other.int_sum_)
                                  : other.sum_;
      }
      break;
    case AggKind::kMin:
      if (!other.min_.is_null() &&
          (min_.is_null() || other.min_.Compare(min_) < 0)) {
        min_ = std::move(other.min_);
      }
      break;
    case AggKind::kMax:
      if (!other.max_.is_null() &&
          (max_.is_null() || other.max_.Compare(max_) > 0)) {
        max_ = std::move(other.max_);
      }
      break;
    case AggKind::kArrayAgg:
      collected_.insert(collected_.end(),
                        std::make_move_iterator(other.collected_.begin()),
                        std::make_move_iterator(other.collected_.end()));
      break;
  }
}

Value AggAccumulator::Finalize(const AggregateSpec& spec) {
  switch (spec.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return Value::Int64(count_);
    case AggKind::kSum:
      if (count_ == 0) return Value::Null();
      return sum_is_int_ ? Value::Int64(int_sum_) : Value::Float64(sum_);
    case AggKind::kAvg: {
      if (count_ == 0) return Value::Null();
      double total =
          sum_is_int_ ? static_cast<double>(int_sum_) : sum_;
      return Value::Float64(total / static_cast<double>(count_));
    }
    case AggKind::kMin:
      return min_;
    case AggKind::kMax:
      return max_;
    case AggKind::kArrayAgg:
      return Value::Array(std::move(collected_));
  }
  return Value::Null();
}

void AggGroupTable::Accumulate(const std::vector<ExprPtr>& group_exprs,
                               const std::vector<AggregateSpec>& aggregates,
                               const Row& row) {
  std::vector<Value> key;
  key.reserve(group_exprs.size());
  for (const ExprPtr& e : group_exprs) key.push_back(e->Eval(row));
  auto [it, inserted] = index.emplace(key, states.size());
  if (inserted) {
    AggGroupState state;
    state.key = std::move(key);
    state.aggs.resize(aggregates.size());
    states.push_back(std::move(state));
  }
  AggGroupState& state = states[it->second];
  for (size_t i = 0; i < aggregates.size(); ++i) {
    const AggregateSpec& spec = aggregates[i];
    Value v = spec.input ? spec.input->Eval(row) : Value::Null();
    state.aggs[i].Update(spec, v);
  }
}

void AggGroupTable::Merge(const std::vector<AggregateSpec>& aggregates,
                          AggGroupTable&& other) {
  for (AggGroupState& incoming : other.states) {
    auto [it, inserted] = index.emplace(incoming.key, states.size());
    if (inserted) {
      states.push_back(std::move(incoming));
      continue;
    }
    AggGroupState& state = states[it->second];
    for (size_t i = 0; i < aggregates.size(); ++i) {
      state.aggs[i].Merge(aggregates[i], std::move(incoming.aggs[i]));
    }
  }
  other.index.clear();
  other.states.clear();
}

void AggGroupTable::EmitGroup(size_t i,
                              const std::vector<AggregateSpec>& aggregates,
                              Row* out) {
  AggGroupState& state = states[i];
  out->clear();
  out->reserve(state.key.size() + aggregates.size());
  for (Value& v : state.key) out->push_back(std::move(v));
  for (size_t a = 0; a < aggregates.size(); ++a) {
    out->push_back(state.aggs[a].Finalize(aggregates[a]));
  }
}

std::vector<Column> AggregateOutputColumns(
    const std::vector<std::string>& group_names,
    const std::vector<AggregateSpec>& aggregates) {
  std::vector<Column> out;
  out.reserve(group_names.size() + aggregates.size());
  for (const std::string& name : group_names) {
    out.push_back(Column{name, Type::Null(), true});
  }
  for (const AggregateSpec& spec : aggregates) {
    TypePtr type;
    switch (spec.kind) {
      case AggKind::kCountStar:
      case AggKind::kCount:
        type = Type::Int64();
        break;
      case AggKind::kAvg:
        type = Type::Float64();
        break;
      default:
        type = Type::Null();
        break;
    }
    out.push_back(Column{spec.output_name, type, true});
  }
  return out;
}

HashAggregateOp::HashAggregateOp(OperatorPtr child,
                                 std::vector<ExprPtr> group_exprs,
                                 std::vector<std::string> group_names,
                                 std::vector<AggregateSpec> aggregates)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggregates_(std::move(aggregates)) {
  output_ = AggregateOutputColumns(group_names, aggregates_);
}

HashAggregateOp::~HashAggregateOp() = default;

Status HashAggregateOp::OpenImpl() {
  groups_ = std::make_unique<AggGroupTable>();
  next_group_ = 0;
  ERBIUM_RETURN_NOT_OK(child_->Open());
  Row row;
  while (child_->Next(&row)) {
    groups_->Accumulate(group_exprs_, aggregates_, row);
  }
  // Global aggregate over empty input still emits one row.
  if (group_exprs_.empty() && groups_->states.empty()) {
    AggGroupState state;
    state.aggs.resize(aggregates_.size());
    groups_->states.push_back(std::move(state));
  }
  return Status::OK();
}

bool HashAggregateOp::NextImpl(Row* out) {
  if (groups_ == nullptr || next_group_ >= groups_->states.size()) {
    return false;
  }
  groups_->EmitGroup(next_group_++, aggregates_, out);
  return true;
}

std::string HashAggregateOp::name() const {
  std::string out = "HashAggregate(groups=";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_exprs_[i]->ToString();
  }
  out += "; aggs=";
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (i > 0) out += ", ";
    out += AggKindName(aggregates_[i].kind);
  }
  out += ")";
  return out;
}

}  // namespace erbium
