#include "exec/expr.h"

#include <cmath>
#include <unordered_set>

#include "common/string_util.h"

namespace erbium {

namespace {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool IsComparable(const Value& a, const Value& b) {
  if (a.kind() == b.kind()) return true;
  return (a.kind() == TypeKind::kInt64 || a.kind() == TypeKind::kFloat64) &&
         (b.kind() == TypeKind::kInt64 || b.kind() == TypeKind::kFloat64);
}

}  // namespace

Value CompareExpr::Eval(const Row& row) const {
  Value left = left_->Eval(row);
  if (left.is_null()) return Value::Null();
  Value right = right_->Eval(row);
  if (right.is_null()) return Value::Null();
  if (!IsComparable(left, right)) return Value::Null();
  int c = left.Compare(right);
  switch (op_) {
    case CompareOp::kEq:
      return Value::Bool(c == 0);
    case CompareOp::kNe:
      return Value::Bool(c != 0);
    case CompareOp::kLt:
      return Value::Bool(c < 0);
    case CompareOp::kLe:
      return Value::Bool(c <= 0);
    case CompareOp::kGt:
      return Value::Bool(c > 0);
    case CompareOp::kGe:
      return Value::Bool(c >= 0);
  }
  return Value::Null();
}

std::string CompareExpr::ToString() const {
  return "(" + left_->ToString() + " " + CompareOpName(op_) + " " +
         right_->ToString() + ")";
}

Value LogicalExpr::Eval(const Row& row) const {
  if (op_ == LogicalOp::kNot) {
    Value v = left_->Eval(row);
    if (v.is_null()) return Value::Null();
    if (v.kind() != TypeKind::kBool) return Value::Null();
    return Value::Bool(!v.as_bool());
  }
  Value left = left_->Eval(row);
  bool left_null = left.is_null() || left.kind() != TypeKind::kBool;
  if (op_ == LogicalOp::kAnd) {
    // Short-circuit: false AND x == false.
    if (!left_null && !left.as_bool()) return Value::Bool(false);
    Value right = right_->Eval(row);
    bool right_null = right.is_null() || right.kind() != TypeKind::kBool;
    if (!right_null && !right.as_bool()) return Value::Bool(false);
    if (left_null || right_null) return Value::Null();
    return Value::Bool(true);
  }
  // OR: true OR x == true.
  if (!left_null && left.as_bool()) return Value::Bool(true);
  Value right = right_->Eval(row);
  bool right_null = right.is_null() || right.kind() != TypeKind::kBool;
  if (!right_null && right.as_bool()) return Value::Bool(true);
  if (left_null || right_null) return Value::Null();
  return Value::Bool(false);
}

std::string LogicalExpr::ToString() const {
  switch (op_) {
    case LogicalOp::kNot:
      return "NOT " + left_->ToString();
    case LogicalOp::kAnd:
      return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
    case LogicalOp::kOr:
      return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
  }
  return "?";
}

Value ArithmeticExpr::Eval(const Row& row) const {
  Value left = left_->Eval(row);
  if (left.is_null()) return Value::Null();
  Value right = right_->Eval(row);
  if (right.is_null()) return Value::Null();
  // String concatenation via +.
  if (op_ == ArithmeticOp::kAdd && left.kind() == TypeKind::kString &&
      right.kind() == TypeKind::kString) {
    return Value::String(left.as_string() + right.as_string());
  }
  bool left_num = left.kind() == TypeKind::kInt64 ||
                  left.kind() == TypeKind::kFloat64;
  bool right_num = right.kind() == TypeKind::kInt64 ||
                   right.kind() == TypeKind::kFloat64;
  if (!left_num || !right_num) return Value::Null();
  bool both_int = left.kind() == TypeKind::kInt64 &&
                  right.kind() == TypeKind::kInt64;
  if (both_int) {
    int64_t a = left.as_int64();
    int64_t b = right.as_int64();
    switch (op_) {
      case ArithmeticOp::kAdd:
        return Value::Int64(a + b);
      case ArithmeticOp::kSub:
        return Value::Int64(a - b);
      case ArithmeticOp::kMul:
        return Value::Int64(a * b);
      case ArithmeticOp::kDiv:
        if (b == 0) return Value::Null();
        return Value::Int64(a / b);
      case ArithmeticOp::kMod:
        if (b == 0) return Value::Null();
        return Value::Int64(a % b);
    }
    return Value::Null();
  }
  double a = left.AsFloat64();
  double b = right.AsFloat64();
  switch (op_) {
    case ArithmeticOp::kAdd:
      return Value::Float64(a + b);
    case ArithmeticOp::kSub:
      return Value::Float64(a - b);
    case ArithmeticOp::kMul:
      return Value::Float64(a * b);
    case ArithmeticOp::kDiv:
      if (b == 0) return Value::Null();
      return Value::Float64(a / b);
    case ArithmeticOp::kMod:
      if (b == 0) return Value::Null();
      return Value::Float64(std::fmod(a, b));
  }
  return Value::Null();
}

std::string ArithmeticExpr::ToString() const {
  const char* name = "?";
  switch (op_) {
    case ArithmeticOp::kAdd:
      name = "+";
      break;
    case ArithmeticOp::kSub:
      name = "-";
      break;
    case ArithmeticOp::kMul:
      name = "*";
      break;
    case ArithmeticOp::kDiv:
      name = "/";
      break;
    case ArithmeticOp::kMod:
      name = "%";
      break;
  }
  return "(" + left_->ToString() + " " + name + " " + right_->ToString() + ")";
}

struct InListExpr::Set {
  std::unordered_set<Value, ValueHash> values;
};

InListExpr::InListExpr(ExprPtr input, std::vector<Value> values)
    : input_(std::move(input)), values_(std::move(values)) {
  auto set = std::make_shared<Set>();
  for (const Value& v : values_) set->values.insert(v);
  set_ = std::move(set);
}

Value InListExpr::Eval(const Row& row) const {
  Value v = input_->Eval(row);
  if (v.is_null()) return Value::Null();
  return Value::Bool(set_->values.count(v) > 0);
}

std::string InListExpr::ToString() const {
  std::string out = input_->ToString() + " IN (";
  for (size_t i = 0; i < values_.size() && i < 5; ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  if (values_.size() > 5) out += ", ...";
  out += ")";
  return out;
}

Value FieldAccessExpr::Eval(const Row& row) const {
  Value v = input_->Eval(row);
  const Value* field = v.FindField(field_);
  return field == nullptr ? Value::Null() : *field;
}

Value MakeStructExpr::Eval(const Row& row) const {
  Value::StructData fields;
  fields.reserve(inputs_.size());
  for (size_t i = 0; i < inputs_.size(); ++i) {
    fields.emplace_back(names_[i], inputs_[i]->Eval(row));
  }
  return Value::Struct(std::move(fields));
}

std::string MakeStructExpr::ToString() const {
  std::string out = "struct(";
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += names_[i] + ": " + inputs_[i]->ToString();
  }
  out += ")";
  return out;
}

Result<BuiltinFn> FunctionExpr::FunctionByName(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "cardinality" || lower == "array_length") {
    return BuiltinFn::kCardinality;
  }
  if (lower == "array_contains") return BuiltinFn::kArrayContains;
  if (lower == "array_intersect") return BuiltinFn::kArrayIntersect;
  if (lower == "array_position") return BuiltinFn::kArrayPosition;
  if (lower == "lower") return BuiltinFn::kLower;
  if (lower == "upper") return BuiltinFn::kUpper;
  if (lower == "length") return BuiltinFn::kLength;
  if (lower == "abs") return BuiltinFn::kAbs;
  if (lower == "coalesce") return BuiltinFn::kCoalesce;
  return Status::AnalysisError("unknown function: " + name);
}

const char* FunctionExpr::FunctionName(BuiltinFn fn) {
  switch (fn) {
    case BuiltinFn::kCardinality:
      return "cardinality";
    case BuiltinFn::kArrayContains:
      return "array_contains";
    case BuiltinFn::kArrayIntersect:
      return "array_intersect";
    case BuiltinFn::kArrayPosition:
      return "array_position";
    case BuiltinFn::kLower:
      return "lower";
    case BuiltinFn::kUpper:
      return "upper";
    case BuiltinFn::kLength:
      return "length";
    case BuiltinFn::kAbs:
      return "abs";
    case BuiltinFn::kCoalesce:
      return "coalesce";
  }
  return "?";
}

Value FunctionExpr::Eval(const Row& row) const {
  switch (fn_) {
    case BuiltinFn::kCardinality: {
      Value v = args_[0]->Eval(row);
      if (v.kind() != TypeKind::kArray) return Value::Null();
      return Value::Int64(static_cast<int64_t>(v.array().size()));
    }
    case BuiltinFn::kArrayContains: {
      Value arr = args_[0]->Eval(row);
      Value needle = args_[1]->Eval(row);
      if (arr.kind() != TypeKind::kArray || needle.is_null()) {
        return Value::Null();
      }
      for (const Value& element : arr.array()) {
        if (element == needle) return Value::Bool(true);
      }
      return Value::Bool(false);
    }
    case BuiltinFn::kArrayIntersect: {
      Value a = args_[0]->Eval(row);
      Value b = args_[1]->Eval(row);
      if (a.kind() != TypeKind::kArray || b.kind() != TypeKind::kArray) {
        return Value::Null();
      }
      std::unordered_set<Value, ValueHash> right_set(b.array().begin(),
                                                     b.array().end());
      Value::ArrayData out;
      std::unordered_set<Value, ValueHash> emitted;
      for (const Value& element : a.array()) {
        if (right_set.count(element) > 0 && emitted.insert(element).second) {
          out.push_back(element);
        }
      }
      return Value::Array(std::move(out));
    }
    case BuiltinFn::kArrayPosition: {
      Value arr = args_[0]->Eval(row);
      Value needle = args_[1]->Eval(row);
      if (arr.kind() != TypeKind::kArray || needle.is_null()) {
        return Value::Null();
      }
      const Value::ArrayData& elements = arr.array();
      for (size_t i = 0; i < elements.size(); ++i) {
        if (elements[i] == needle) {
          return Value::Int64(static_cast<int64_t>(i + 1));
        }
      }
      return Value::Null();
    }
    case BuiltinFn::kLower: {
      Value v = args_[0]->Eval(row);
      if (v.kind() != TypeKind::kString) return Value::Null();
      return Value::String(ToLower(v.as_string()));
    }
    case BuiltinFn::kUpper: {
      Value v = args_[0]->Eval(row);
      if (v.kind() != TypeKind::kString) return Value::Null();
      std::string s = v.as_string();
      for (char& c : s) c = std::toupper(static_cast<unsigned char>(c));
      return Value::String(std::move(s));
    }
    case BuiltinFn::kLength: {
      Value v = args_[0]->Eval(row);
      if (v.kind() != TypeKind::kString) return Value::Null();
      return Value::Int64(static_cast<int64_t>(v.as_string().size()));
    }
    case BuiltinFn::kAbs: {
      Value v = args_[0]->Eval(row);
      if (v.kind() == TypeKind::kInt64) {
        return Value::Int64(std::abs(v.as_int64()));
      }
      if (v.kind() == TypeKind::kFloat64) {
        return Value::Float64(std::fabs(v.as_float64()));
      }
      return Value::Null();
    }
    case BuiltinFn::kCoalesce: {
      for (const ExprPtr& arg : args_) {
        Value v = arg->Eval(row);
        if (!v.is_null()) return v;
      }
      return Value::Null();
    }
  }
  return Value::Null();
}

std::string FunctionExpr::ToString() const {
  std::string out = FunctionName(fn_);
  out += "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  out += ")";
  return out;
}

ExprPtr MakeColumnRef(int index, std::string name) {
  return std::make_shared<ColumnRefExpr>(index, std::move(name));
}

ExprPtr MakeLiteral(Value value) {
  return std::make_shared<LiteralExpr>(std::move(value));
}

ExprPtr MakeCompare(CompareOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<CompareExpr>(op, std::move(left), std::move(right));
}

ExprPtr MakeAnd(ExprPtr left, ExprPtr right) {
  return std::make_shared<LogicalExpr>(LogicalOp::kAnd, std::move(left),
                                       std::move(right));
}

ExprPtr MakeOr(ExprPtr left, ExprPtr right) {
  return std::make_shared<LogicalExpr>(LogicalOp::kOr, std::move(left),
                                       std::move(right));
}

ExprPtr MakeNot(ExprPtr input) {
  return std::make_shared<LogicalExpr>(LogicalOp::kNot, std::move(input),
                                       nullptr);
}

ExprPtr MakeArithmetic(ArithmeticOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<ArithmeticExpr>(op, std::move(left),
                                          std::move(right));
}

ExprPtr MakeFunction(BuiltinFn fn, std::vector<ExprPtr> args) {
  return std::make_shared<FunctionExpr>(fn, std::move(args));
}

ExprPtr MakeInList(ExprPtr input, std::vector<Value> values) {
  return std::make_shared<InListExpr>(std::move(input), std::move(values));
}

ExprPtr ConjoinAll(std::vector<ExprPtr> predicates) {
  ExprPtr result;
  for (ExprPtr& p : predicates) {
    if (!p) continue;
    result = result ? MakeAnd(std::move(result), std::move(p)) : std::move(p);
  }
  return result;
}

}  // namespace erbium
