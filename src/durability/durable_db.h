#ifndef ERBIUM_DURABILITY_DURABLE_DB_H_
#define ERBIUM_DURABILITY_DURABLE_DB_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "durability/fault.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "er/er_schema.h"
#include "mapping/database.h"
#include "mapping/durability_hook.h"

namespace erbium {
namespace durability {

/// A MappedDatabase bound to a directory on disk. Opening runs recovery
/// (latest valid snapshot + WAL tail replay); afterwards every logical
/// CRUD operation, DDL statement, and remap is appended to the WAL via
/// the DurabilityHook choke points before being acknowledged, and
/// CHECKPOINT collapses the log into a fresh snapshot.
///
/// Recovery invariants (the fault-injection tests assert these under
/// every mapping M1–M6 and every crash point):
///   1. Every acknowledged operation survives reopen.
///   2. No operation is half-applied after reopen: replay goes through
///      the same logical choke points as the original execution, so a
///      record either replays fully or (torn/corrupt tail) not at all.
///   3. A crash at any point of the checkpoint protocol loses nothing:
///      until the WAL is truncated, records with lsn <= the snapshot's
///      last_lsn are simply skipped during replay.
class DurableDatabase : public DurabilityHook {
 public:
  struct Options {
    /// Mapping and schema used when the directory has no snapshot yet
    /// (a brand-new database). Ignored on reopen — the persisted state
    /// wins.
    MappingSpec spec = MappingSpec::Normalized("M1");
    std::string initial_ddl;
    WalWriter::SyncMode sync = WalWriter::SyncMode::kNone;
    /// Crash-point hooks for tests; not owned, may be null.
    FaultInjector* faults = nullptr;
    /// Sharded engines install a remote-existence probe so relationship
    /// participation checks can consult sibling shards. Re-applied to
    /// every fresh MappedDatabase this instance builds (recovery and
    /// DDL/REMAP rebuilds), which a caller-side set_remote_entity_check
    /// on db() would not survive.
    MappedDatabase::RemoteEntityCheck remote_check;
  };

  /// What recovery found and did, for logs/tests.
  struct RecoveryInfo {
    bool had_snapshot = false;
    uint64_t snapshot_gen = 0;
    uint64_t snapshot_lsn = 0;
    size_t snapshots_skipped = 0;  // newer generations that failed to decode
    size_t records_replayed = 0;
    size_t records_skipped = 0;  // lsn <= snapshot_lsn (pre-truncate crash)
    bool wal_clean = true;
    std::string wal_stop_reason;
  };

  static Result<std::unique_ptr<DurableDatabase>> Open(const std::string& dir,
                                                       Options options);
  ~DurableDatabase() override;

  DurableDatabase(const DurableDatabase&) = delete;
  DurableDatabase& operator=(const DurableDatabase&) = delete;

  MappedDatabase* db() { return db_.get(); }
  const ERSchema& schema() const { return *schema_; }
  const std::string& dir() const { return dir_; }
  /// Accumulated DDL text (initial + every logged statement).
  const std::string& ddl() const { return ddl_; }
  const MappingSpec& spec() const { return spec_; }
  const RecoveryInfo& recovery_info() const { return recovery_; }
  uint64_t wal_bytes() const { return wal_->bytes(); }
  uint64_t next_lsn() const { return wal_->next_lsn(); }
  /// Newest on-disk snapshot generation (recovered, then advanced by
  /// every finished checkpoint).
  uint64_t latest_snapshot_gen() const { return latest_snapshot_gen_; }

  /// Applies DDL to the live schema, rebuilds the physical database
  /// (migrating data), and logs the statement so reopen replays it.
  Status ExecuteDdl(const std::string& ddl);

  /// Switches the physical mapping (migrating data) and logs the new
  /// spec. Recovery replays the remap at the same point in the stream.
  Status Remap(MappingSpec new_spec);

  // ---- DurabilityHook ------------------------------------------------------
  Status LogInsertEntity(const std::string& class_name,
                         const Value& entity) override;
  Status LogDeleteEntity(const std::string& class_name,
                         const IndexKey& key) override;
  Status LogUpdateAttribute(const std::string& class_name, const IndexKey& key,
                            const std::string& attr,
                            const Value& value) override;
  Status LogInsertRelationship(const std::string& rel_name,
                               const IndexKey& left_key,
                               const IndexKey& right_key,
                               const Value& attrs) override;
  Status LogDeleteRelationship(const std::string& rel_name,
                               const IndexKey& left_key,
                               const IndexKey& right_key) override;

  /// Everything CHECKPOINT's write phase needs, captured under the
  /// exclusive barrier: immutable version pins of every table and pair
  /// (freezing a consistent image at `last_lsn`), plus copies of the
  /// schema DDL / mapping JSON and the reserved snapshot generation.
  struct CheckpointPins {
    uint64_t last_lsn = 0;
    uint64_t gen = 0;
    std::string ddl;
    std::string spec_json;
    std::vector<std::pair<std::string, std::shared_ptr<const TableVersion>>>
        tables;
    std::vector<std::pair<std::string, std::shared_ptr<const PairVersion>>>
        pairs;
  };

  /// Non-blocking CHECKPOINT, three phases (each step crash-safe):
  ///   A. PrepareCheckpoint  — caller holds the exclusive statement
  ///      barrier; pins versions, records the WAL horizon, reserves the
  ///      generation. O(#tables), no IO.        [checkpoint.begin]
  ///   B. WriteSnapshotPhase — runs with ONLY a shared statement lock:
  ///      concurrent SELECTs and CRUD proceed while the image is
  ///      encoded and written to snapshot-<g>.erbsnap.tmp. Returns the
  ///      summary string.                       [checkpoint.tmp_written]
  ///   C. FinishCheckpoint   — exclusive barrier again: rename tmp into
  ///      place, compact the WAL keeping records with lsn > last_lsn
  ///      (appended during B), delete older generations.
  ///                                 [checkpoint.renamed, checkpoint.done]
  /// A failed B/C must be followed by AbortCheckpoint so a later
  /// CHECKPOINT can start.
  Result<CheckpointPins> PrepareCheckpoint();
  Result<std::string> WriteSnapshotPhase(const CheckpointPins& pins);
  Status FinishCheckpoint(const CheckpointPins& pins);
  /// Clears the in-progress flag after a failed write/finish phase.
  void AbortCheckpoint() { checkpoint_running_.store(false); }

  /// Legacy single-call form: A + B + C back to back (callers that hold
  /// the database exclusively anyway, e.g. tests and the hook interface).
  Result<std::string> Checkpoint() override;

 private:
  DurableDatabase(std::string dir, Options options)
      : dir_(std::move(dir)), options_(std::move(options)) {}

  Status Recover();
  /// Rebuilds db_ against `next_schema` + the current spec_, migrating
  /// data from the previous instance (if any), then swaps schema_ and
  /// re-attaches the hook. The new schema must be a separate object:
  /// the old instance keeps reading its own schema during migration.
  Status Rebuild(std::shared_ptr<ERSchema> next_schema);
  Status ReplayRecord(const WalRecord& record);
  Status AppendRecord(WalRecord record);

  std::string dir_;
  Options options_;
  std::shared_ptr<ERSchema> schema_ = std::make_shared<ERSchema>();
  MappingSpec spec_;
  std::string ddl_;
  std::unique_ptr<MappedDatabase> db_;
  std::unique_ptr<WalWriter> wal_;
  RecoveryInfo recovery_;
  uint64_t latest_snapshot_gen_ = 0;
  /// Set from PrepareCheckpoint until FinishCheckpoint/AbortCheckpoint:
  /// only one checkpoint may be in flight (the reserved generation and
  /// the WAL horizon are checkpoint-local state).
  std::atomic<bool> checkpoint_running_{false};
};

}  // namespace durability
}  // namespace erbium

#endif  // ERBIUM_DURABILITY_DURABLE_DB_H_
