#ifndef ERBIUM_DURABILITY_FAULT_H_
#define ERBIUM_DURABILITY_FAULT_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace erbium {
namespace durability {

/// Crash-point hooks for the fault-injection tests. The durability code
/// calls `ShouldCrash("<point>")` at every point where a real process
/// could die with work half done; an armed injector fires at the Nth hit
/// of its point and then simulates death: the injector stays "crashed"
/// and every subsequent durability operation fails with
/// Status::IOError("simulated crash ..."), exactly as if the process had
/// been killed — the test then reopens the directory and checks what
/// recovery reconstructs.
///
/// Crash points:
///   wal.append.before    nothing of the record reaches the file
///   wal.append.torn      only `partial_bytes` of the record are written
///   wal.append.after     the record is fully written, but the operation
///                        is never acknowledged to the caller
///   checkpoint.begin     before the snapshot temp file is written
///   checkpoint.tmp_written   temp file durable, final rename not done
///   checkpoint.renamed   snapshot in place, WAL not yet truncated
///   checkpoint.done      after WAL truncation (checkpoint fully applied)
class FaultInjector {
 public:
  /// Arms a crash at the `countdown`-th future hit of `point` (1 = next).
  void Arm(std::string point, int countdown = 1, uint64_t partial_bytes = 0) {
    point_ = std::move(point);
    countdown_ = countdown;
    partial_bytes_ = partial_bytes;
    crashed_ = false;
  }

  /// True exactly when the armed point fires (and from then on the
  /// injector reports itself crashed).
  bool ShouldCrash(const char* point) {
    if (crashed_) return false;  // already dead; Check() gates everything
    if (point_ != point) return false;
    if (--countdown_ > 0) return false;
    crashed_ = true;
    return true;
  }

  /// Arms a one-shot non-fatal IO error (ENOSPC/EIO-style) at the
  /// `countdown`-th future hit of `point`. Unlike Arm, the process stays
  /// alive: the operation fails, and later operations proceed normally.
  void ArmError(std::string point, int countdown = 1,
                uint64_t partial_bytes = 0) {
    error_point_ = std::move(point);
    error_countdown_ = countdown;
    error_partial_bytes_ = partial_bytes;
  }

  /// True exactly when the armed error point fires (then disarms).
  bool ShouldFail(const char* point) {
    if (crashed_) return false;
    if (error_point_ != point) return false;
    if (--error_countdown_ > 0) return false;
    error_point_.clear();
    return true;
  }

  /// Gate called at the top of every durability operation: once crashed,
  /// everything fails the way syscalls fail in a dead process.
  Status Check() const {
    if (crashed_) {
      return Status::IOError("simulated crash (" + point_ + ")");
    }
    return Status::OK();
  }

  Status Crash() const {
    return Status::IOError("simulated crash (" + point_ + ")");
  }

  bool crashed() const { return crashed_; }
  uint64_t partial_bytes() const { return partial_bytes_; }
  uint64_t error_partial_bytes() const { return error_partial_bytes_; }

  // ---- Blocking gate ---------------------------------------------------------
  // Unlike the crash/error hooks above (armed and fired on one thread),
  // the gate is cross-thread by design: a test arms it, a background
  // operation parks on it at MaybeBlock, the test observes the frozen
  // system via WaitUntilBlocked, then ReleaseGate lets the operation
  // finish. Used to pin CHECKPOINT mid-snapshot-write and prove reads
  // don't stall behind it.
  //
  // Gate points:
  //   checkpoint.writing   inside the shared snapshot-write phase, after
  //                        versions are pinned but before bytes hit disk

  /// Arms the gate at `point`; the next MaybeBlock(point) parks.
  void ArmGate(std::string point) {
    std::lock_guard<std::mutex> lock(gate_mu_);
    gate_point_ = std::move(point);
    gate_open_ = false;
    gate_blocked_ = false;
  }

  /// Blocks the calling test until some thread is parked on the gate.
  void WaitUntilBlocked() {
    std::unique_lock<std::mutex> lock(gate_mu_);
    gate_cv_.wait(lock, [this] { return gate_blocked_; });
  }

  /// Opens the gate; the parked thread (and any future MaybeBlock on the
  /// armed point) proceeds.
  void ReleaseGate() {
    std::lock_guard<std::mutex> lock(gate_mu_);
    gate_open_ = true;
    gate_point_.clear();
    gate_cv_.notify_all();
  }

  /// Called by durability code: parks when the gate is armed at `point`,
  /// no-op otherwise.
  void MaybeBlock(const char* point) {
    std::unique_lock<std::mutex> lock(gate_mu_);
    if (gate_point_ != point) return;
    gate_blocked_ = true;
    gate_cv_.notify_all();
    gate_cv_.wait(lock, [this] { return gate_open_; });
    gate_blocked_ = false;
  }

 private:
  std::string point_;
  int countdown_ = 0;
  uint64_t partial_bytes_ = 0;
  std::string error_point_;
  int error_countdown_ = 0;
  uint64_t error_partial_bytes_ = 0;
  bool crashed_ = false;

  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  std::string gate_point_;
  bool gate_open_ = false;
  bool gate_blocked_ = false;
};

}  // namespace durability
}  // namespace erbium

#endif  // ERBIUM_DURABILITY_FAULT_H_
