#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "durability/serde.h"
#include "obs/metrics.h"

namespace erbium {
namespace durability {

namespace {

std::string EncodePayload(const WalRecord& record) {
  std::string payload;
  PutU8(static_cast<uint8_t>(record.type), &payload);
  PutU64(record.lsn, &payload);
  switch (record.type) {
    case WalRecord::Type::kInsertEntity:
      PutString(record.name, &payload);
      PutValue(record.value, &payload);
      break;
    case WalRecord::Type::kDeleteEntity:
      PutString(record.name, &payload);
      PutValues(record.key, &payload);
      break;
    case WalRecord::Type::kUpdateAttribute:
      PutString(record.name, &payload);
      PutValues(record.key, &payload);
      PutString(record.attr, &payload);
      PutValue(record.value, &payload);
      break;
    case WalRecord::Type::kInsertRelationship:
      PutString(record.name, &payload);
      PutValues(record.key, &payload);
      PutValues(record.right_key, &payload);
      PutValue(record.value, &payload);
      break;
    case WalRecord::Type::kDeleteRelationship:
      PutString(record.name, &payload);
      PutValues(record.key, &payload);
      PutValues(record.right_key, &payload);
      break;
    case WalRecord::Type::kDdl:
    case WalRecord::Type::kRemap:
      PutString(record.name, &payload);
      break;
  }
  return payload;
}

Result<WalRecord> DecodePayload(const char* data, size_t size) {
  ByteReader reader(data, size);
  WalRecord record;
  ERBIUM_ASSIGN_OR_RETURN(uint8_t type, reader.U8());
  if (type < 1 || type > 7) {
    return Status::IOError("unknown WAL record type " + std::to_string(type));
  }
  record.type = static_cast<WalRecord::Type>(type);
  ERBIUM_ASSIGN_OR_RETURN(record.lsn, reader.U64());
  switch (record.type) {
    case WalRecord::Type::kInsertEntity: {
      ERBIUM_ASSIGN_OR_RETURN(record.name, reader.String());
      ERBIUM_ASSIGN_OR_RETURN(record.value, reader.ReadValue());
      break;
    }
    case WalRecord::Type::kDeleteEntity: {
      ERBIUM_ASSIGN_OR_RETURN(record.name, reader.String());
      ERBIUM_ASSIGN_OR_RETURN(record.key, reader.ReadValues());
      break;
    }
    case WalRecord::Type::kUpdateAttribute: {
      ERBIUM_ASSIGN_OR_RETURN(record.name, reader.String());
      ERBIUM_ASSIGN_OR_RETURN(record.key, reader.ReadValues());
      ERBIUM_ASSIGN_OR_RETURN(record.attr, reader.String());
      ERBIUM_ASSIGN_OR_RETURN(record.value, reader.ReadValue());
      break;
    }
    case WalRecord::Type::kInsertRelationship: {
      ERBIUM_ASSIGN_OR_RETURN(record.name, reader.String());
      ERBIUM_ASSIGN_OR_RETURN(record.key, reader.ReadValues());
      ERBIUM_ASSIGN_OR_RETURN(record.right_key, reader.ReadValues());
      ERBIUM_ASSIGN_OR_RETURN(record.value, reader.ReadValue());
      break;
    }
    case WalRecord::Type::kDeleteRelationship: {
      ERBIUM_ASSIGN_OR_RETURN(record.name, reader.String());
      ERBIUM_ASSIGN_OR_RETURN(record.key, reader.ReadValues());
      ERBIUM_ASSIGN_OR_RETURN(record.right_key, reader.ReadValues());
      break;
    }
    case WalRecord::Type::kDdl:
    case WalRecord::Type::kRemap: {
      ERBIUM_ASSIGN_OR_RETURN(record.name, reader.String());
      break;
    }
  }
  if (!reader.AtEnd()) {
    return Status::IOError("trailing bytes inside WAL record payload");
  }
  return record;
}

uint32_t ReadLeU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload = EncodePayload(record);
  std::string out;
  PutU32(static_cast<uint32_t>(payload.size()), &out);
  PutU32(Crc32(payload.data(), payload.size()), &out);
  out += payload;
  return out;
}

Result<WalReadResult> ReadWal(const std::string& path) {
  WalReadResult result;
  std::ifstream file(path, std::ios::binary);
  if (!file) return result;  // no log yet: empty and clean
  std::string contents((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  if (file.bad()) {
    return Status::IOError("failed reading WAL file " + path);
  }
  size_t offset = 0;
  auto stop = [&](std::string reason) {
    result.clean = false;
    result.stop_reason = std::move(reason);
    return result;
  };
  while (offset < contents.size()) {
    if (contents.size() - offset < kWalHeaderBytes) {
      return stop("torn header at offset " + std::to_string(offset));
    }
    uint32_t len = ReadLeU32(contents.data() + offset);
    uint32_t crc = ReadLeU32(contents.data() + offset + 4);
    if (len > kMaxWalRecordBytes) {
      return stop("implausible record length at offset " +
                  std::to_string(offset));
    }
    if (contents.size() - offset - kWalHeaderBytes < len) {
      return stop("torn payload at offset " + std::to_string(offset));
    }
    const char* payload = contents.data() + offset + kWalHeaderBytes;
    if (Crc32(payload, len) != crc) {
      return stop("checksum mismatch at offset " + std::to_string(offset));
    }
    Result<WalRecord> record = DecodePayload(payload, len);
    if (!record.ok()) {
      return stop("undecodable record at offset " + std::to_string(offset) +
                  ": " + record.status().message());
    }
    result.records.push_back(std::move(record).value());
    offset += kWalHeaderBytes + len;
    result.valid_bytes = offset;
  }
  return result;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   uint64_t append_offset,
                                                   uint64_t next_lsn,
                                                   SyncMode sync,
                                                   FaultInjector* faults) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open WAL " + path + ": " +
                           std::strerror(errno));
  }
  // Chop any torn tail left by a previous life so new records append
  // right after the last valid one.
  if (::ftruncate(fd, static_cast<off_t>(append_offset)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError("cannot position WAL " + path + ": " +
                           std::strerror(err));
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, fd, append_offset, next_lsn, sync, faults));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::WriteAll(const char* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::write(fd_, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("WAL write failed: " +
                             std::string(std::strerror(errno)));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WalWriter::MaybeSync() {
  if (sync_ == SyncMode::kFsync && ::fdatasync(fd_) != 0) {
    return Status::IOError("WAL fdatasync failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status WalWriter::RestoreAfterFailure(Status cause) {
  // A failed write may have left torn bytes after the last acknowledged
  // record, and a failed sync leaves a full record that was never
  // acknowledged; either way the fd offset sits past offset_. Chop the
  // file back so the next Append cannot place an acknowledged record
  // after bytes recovery will stop at (and so its LSN is not a duplicate
  // of the unacknowledged record's).
  if (::ftruncate(fd_, static_cast<off_t>(offset_)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(offset_), SEEK_SET) < 0 ||
      (sync_ == SyncMode::kFsync && ::fdatasync(fd_) != 0)) {
    // The file state is now unknown; refuse all future appends rather
    // than risk acknowledging a record behind garbage.
    failed_ = true;
  }
  return cause;
}

Status WalWriter::Append(WalRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) {
    return Status::IOError("WAL writer disabled after an earlier write "
                           "failure on " +
                           path_);
  }
  if (faults_ != nullptr) {
    ERBIUM_RETURN_NOT_OK(faults_->Check());
  }
  record.lsn = next_lsn_;
  std::string bytes = EncodeWalRecord(record);
  if (bytes.size() - kWalHeaderBytes > kMaxWalRecordBytes) {
    // Never acknowledge a record the reader would reject as garbage on
    // recovery; nothing reaches the file.
    return Status::IOError(
        "WAL record payload of " +
        std::to_string(bytes.size() - kWalHeaderBytes) +
        " bytes exceeds the " + std::to_string(kMaxWalRecordBytes) +
        "-byte limit");
  }
  if (faults_ != nullptr) {
    if (faults_->ShouldCrash("wal.append.before")) return faults_->Crash();
    if (faults_->ShouldCrash("wal.append.torn")) {
      // Simulate the process dying mid-write: a strict prefix of the
      // record reaches the file.
      size_t partial = static_cast<size_t>(faults_->partial_bytes());
      if (partial >= bytes.size()) partial = bytes.size() - 1;
      ERBIUM_RETURN_NOT_OK(WriteAll(bytes.data(), partial));
      return faults_->Crash();
    }
    if (faults_->ShouldFail("wal.append.error")) {
      // Simulate a non-fatal IO error (ENOSPC/EIO) mid-write: torn bytes
      // reach the file, the process stays alive, and Append must leave
      // the log as if the record was never attempted.
      size_t partial = static_cast<size_t>(faults_->error_partial_bytes());
      if (partial >= bytes.size()) partial = bytes.size() - 1;
      ERBIUM_RETURN_NOT_OK(WriteAll(bytes.data(), partial));
      return RestoreAfterFailure(
          Status::IOError("injected WAL append error"));
    }
  }
  Status written = WriteAll(bytes.data(), bytes.size());
  if (!written.ok()) return RestoreAfterFailure(std::move(written));
  Status synced = MaybeSync();
  if (!synced.ok()) return RestoreAfterFailure(std::move(synced));
  if (faults_ != nullptr && faults_->ShouldCrash("wal.append.after")) {
    // The record is durable but the caller never hears the ack.
    return faults_->Crash();
  }
  ++next_lsn_;
  offset_ += bytes.size();
  obs::MetricsRegistry::Global().counter("wal.appends").Increment();
  obs::MetricsRegistry::Global().counter("wal.bytes").Increment(bytes.size());
  return Status::OK();
}

Status WalWriter::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) {
    return Status::IOError("WAL writer disabled after an earlier write "
                           "failure on " +
                           path_);
  }
  if (faults_ != nullptr) {
    ERBIUM_RETURN_NOT_OK(faults_->Check());
  }
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
    // The fd may now point somewhere other than offset_; don't append
    // into an unknown position.
    failed_ = true;
    return Status::IOError("WAL truncate failed: " +
                           std::string(std::strerror(errno)));
  }
  ERBIUM_RETURN_NOT_OK(MaybeSync());
  offset_ = 0;
  obs::MetricsRegistry::Global().counter("wal.truncations").Increment();
  return Status::OK();
}

Status WalWriter::CompactThrough(uint64_t last_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) {
    return Status::IOError("WAL writer disabled after an earlier write "
                           "failure on " +
                           path_);
  }
  if (faults_ != nullptr) {
    ERBIUM_RETURN_NOT_OK(faults_->Check());
  }
  // Re-read the acknowledged prefix and keep only records past the
  // snapshot horizon. Appends are blocked while we hold the mutex, so
  // the file cannot grow under the scan.
  Result<WalReadResult> read = ReadWal(path_);
  if (!read.ok()) return read.status();
  std::string survivors;
  for (const WalRecord& record : read.value().records) {
    if (record.lsn <= last_lsn) continue;
    survivors += EncodeWalRecord(record);
  }
  if (survivors.empty()) {
    // Nothing appended past the snapshot horizon: plain truncation.
    if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
      failed_ = true;
      return Status::IOError("WAL truncate failed: " +
                             std::string(std::strerror(errno)));
    }
    ERBIUM_RETURN_NOT_OK(MaybeSync());
    offset_ = 0;
    obs::MetricsRegistry::Global().counter("wal.truncations").Increment();
    return Status::OK();
  }
  // Rewrite via tmp + fsync + rename: a crash mid-compaction leaves
  // either the old log or the new one, never a mix.
  const std::string tmp = path_ + ".compact.tmp";
  int tmp_fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) {
    return Status::IOError("cannot open " + tmp + ": " +
                           std::strerror(errno));
  }
  const char* data = survivors.data();
  size_t size = survivors.size();
  while (size > 0) {
    ssize_t n = ::write(tmp_fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(tmp_fd);
      ::unlink(tmp.c_str());
      return Status::IOError("WAL compaction write failed: " +
                             std::string(std::strerror(err)));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  if (::fdatasync(tmp_fd) != 0) {
    int err = errno;
    ::close(tmp_fd);
    ::unlink(tmp.c_str());
    return Status::IOError("WAL compaction fdatasync failed: " +
                           std::string(std::strerror(err)));
  }
  ::close(tmp_fd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    int err = errno;
    ::unlink(tmp.c_str());
    return Status::IOError("WAL compaction rename failed: " +
                           std::string(std::strerror(err)));
  }
  // The old fd now points at the unlinked previous file; reattach to the
  // compacted one, positioned at its end.
  ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY, 0644);
  if (fd_ < 0 || ::lseek(fd_, 0, SEEK_END) < 0) {
    failed_ = true;  // no usable fd; refuse future appends
    return Status::IOError("cannot reopen compacted WAL " + path_ + ": " +
                           std::strerror(errno));
  }
  offset_ = survivors.size();
  obs::MetricsRegistry::Global().counter("wal.compactions").Increment();
  return Status::OK();
}

}  // namespace durability
}  // namespace erbium
