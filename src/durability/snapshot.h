#ifndef ERBIUM_DURABILITY_SNAPSHOT_H_
#define ERBIUM_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "mapping/database.h"

namespace erbium {
namespace durability {

/// A checkpoint image: everything needed to reconstruct a MappedDatabase
/// without the WAL. The schema travels as the accumulated DDL text (the
/// one representation DdlParser can replay; ERSchema::ToString is
/// display-only) and the mapping as its catalog JSON, so loading is
/// exactly the normal create path: parse DDL -> compile mapping -> bulk
/// load rows. Tables hold live rows only — a snapshot compacts
/// tombstones away.
struct SnapshotData {
  struct TableImage {
    std::string name;
    std::vector<Row> rows;
  };
  /// A factorized pair: live rows of both sides, densely renumbered, and
  /// the edges as (left dense index, right dense index).
  struct PairImage {
    std::string name;
    std::vector<Row> left_rows;
    std::vector<Row> right_rows;
    std::vector<std::pair<uint64_t, uint64_t>> edges;
  };

  uint64_t last_lsn = 0;   // WAL records with lsn <= this are subsumed
  std::string ddl;         // accumulated DDL text since database creation
  std::string spec_json;   // active MappingSpec (MappingSpec::ToJson)
  std::vector<TableImage> tables;
  std::vector<PairImage> pairs;
};

/// On-disk framing: "ERBSNP01" magic, u32 payload length, u32
/// crc32(payload), payload. A file that fails any of those checks is
/// rejected whole — snapshots are all-or-nothing, unlike the WAL's
/// valid-prefix semantics.
constexpr size_t kSnapshotHeaderBytes = 16;  // magic + len + crc

/// Largest payload DecodeSnapshot accepts. Checkpoint must refuse to
/// write anything bigger (see DurableDatabase::Checkpoint): a snapshot
/// the reader would reject — or whose size wraps the u32 length field —
/// written "successfully" and followed by a WAL truncation would lose
/// every operation it claimed to capture.
constexpr uint32_t kMaxSnapshotPayloadBytes = 1u << 30;

std::string EncodeSnapshot(const SnapshotData& data);
Result<SnapshotData> DecodeSnapshot(const std::string& bytes);

/// Captures the current state of a database (skipping the mapping catalog
/// table, which Create() regenerates). Uses the working-state accessors,
/// so the caller must hold the database exclusively.
SnapshotData CaptureSnapshot(const MappedDatabase& db, uint64_t last_lsn,
                             std::string ddl);

/// Captures from pinned immutable versions instead of the live working
/// state: the non-blocking CHECKPOINT pins every table/pair version under
/// an exclusive barrier, then calls this with writers running — the pins
/// freeze a consistent image as of `last_lsn` no matter what mutates
/// concurrently.
SnapshotData CaptureSnapshotFromPins(
    const std::vector<std::pair<std::string,
                                std::shared_ptr<const TableVersion>>>& tables,
    const std::vector<std::pair<std::string,
                                std::shared_ptr<const PairVersion>>>& pairs,
    uint64_t last_lsn, std::string ddl, std::string spec_json);

/// Bulk-loads a decoded snapshot into a freshly created database whose
/// schema/mapping match the snapshot's DDL + spec.
Status LoadIntoDatabase(const SnapshotData& data, MappedDatabase* db);

/// "<dir>/snapshot-<gen>.erbsnap".
std::string SnapshotPath(const std::string& dir, uint64_t gen);

/// Generations of all snapshot files present in `dir`, ascending. A
/// missing directory yields an empty list.
std::vector<uint64_t> ListSnapshotGens(const std::string& dir);

/// Reads and decodes one snapshot file.
Result<SnapshotData> LoadSnapshotFile(const std::string& path);

}  // namespace durability
}  // namespace erbium

#endif  // ERBIUM_DURABILITY_SNAPSHOT_H_
