#ifndef ERBIUM_DURABILITY_SERDE_H_
#define ERBIUM_DURABILITY_SERDE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/value.h"

namespace erbium {
namespace durability {

/// Little-endian binary encoding for the on-disk formats (WAL records and
/// snapshots). Fixed-width integers are written least-significant byte
/// first regardless of host order; strings are u32-length-prefixed;
/// Values are a one-byte kind tag followed by the payload. Everything a
/// record needs round-trips through these helpers so the WAL reader and
/// the fault-injection tests agree byte-for-byte on the format.

void PutU8(uint8_t v, std::string* out);
void PutU32(uint32_t v, std::string* out);
void PutU64(uint64_t v, std::string* out);
void PutF64(double v, std::string* out);
void PutString(const std::string& s, std::string* out);
void PutValue(const Value& v, std::string* out);
/// A key / row is a count-prefixed sequence of values.
void PutValues(const std::vector<Value>& values, std::string* out);

/// Deepest value nesting ReadValue will decode. A crafted record of
/// nested arrays costs ~5 bytes per level, so without a cap a CRC-valid
/// 64 MiB record could recurse millions of frames deep and overflow the
/// stack; real values are a handful of levels deep.
constexpr int kMaxValueDepth = 100;

/// Sequential decoder over a byte range. Every accessor fails with
/// Status::IOError once the input is exhausted or malformed; decoding
/// never reads past `size`, never trusts embedded counts beyond the
/// bytes actually present (a corrupted length cannot cause a huge
/// allocation), and never recurses past kMaxValueDepth (a corrupted
/// nesting cannot overflow the stack).
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : p_(data), end_(data + size) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool AtEnd() const { return p_ == end_; }

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<double> F64();
  Result<std::string> String();
  Result<Value> ReadValue();
  Result<std::vector<Value>> ReadValues();

 private:
  Status Need(size_t n) const;
  Result<Value> ReadValueAt(int depth);
  const char* p_;
  const char* end_;
};

/// CRC-32 (IEEE 802.3, reflected, init/final xor 0xFFFFFFFF) — the
/// checksum guarding every WAL record payload and snapshot body.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace durability
}  // namespace erbium

#endif  // ERBIUM_DURABILITY_SERDE_H_
