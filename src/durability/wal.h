#ifndef ERBIUM_DURABILITY_WAL_H_
#define ERBIUM_DURABILITY_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "durability/fault.h"
#include "storage/index.h"

namespace erbium {
namespace durability {

/// One logical redo record. The WAL logs *logical* CRUD operations (the
/// paper's entity/relationship abstraction), not physical table writes:
/// replaying a record through the normal MappedDatabase choke points
/// reproduces the same physical state under any mapping, and the same
/// log stays valid when the mapping or schema evolves mid-stream.
struct WalRecord {
  enum class Type : uint8_t {
    kInsertEntity = 1,        // name=class, value=entity struct
    kDeleteEntity = 2,        // name=class, key
    kUpdateAttribute = 3,     // name=class, key, attr, value
    kInsertRelationship = 4,  // name=rel, key=left, right_key, value=attrs
    kDeleteRelationship = 5,  // name=rel, key=left, right_key
    kDdl = 6,                 // name=DDL statement text
    kRemap = 7,               // name=mapping spec JSON
  };

  Type type = Type::kInsertEntity;
  uint64_t lsn = 0;
  std::string name;
  std::string attr;
  Value value;
  IndexKey key;
  IndexKey right_key;
};

/// On-disk framing: [u32 payload_len][u32 crc32(payload)][payload] with
/// payload = [u8 type][u64 lsn][type-specific body]. Exposed for tests
/// that reason about byte offsets.
constexpr size_t kWalHeaderBytes = 8;

/// Largest payload the reader accepts; a longer length field is assumed
/// to be garbage (a corrupted header), not a real record. Append enforces
/// the same cap on the write side so no acknowledged record is ever
/// mistaken for corruption on recovery.
constexpr uint32_t kMaxWalRecordBytes = 64u << 20;

/// Serializes a record into its on-disk bytes (header + payload).
std::string EncodeWalRecord(const WalRecord& record);

/// Result of scanning a WAL file front to back. Recovery replays
/// `records` and treats `clean == false` as a torn/corrupt tail: the scan
/// stopped at the first record whose length, checksum, or body failed to
/// validate, and everything before it is still good.
struct WalReadResult {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;  // file offset just past the last valid record
  bool clean = true;
  std::string stop_reason;
};

/// Reads every valid record. A missing file is an empty, clean log.
Result<WalReadResult> ReadWal(const std::string& path);

/// Append-only writer over a POSIX fd. Assigns consecutive LSNs starting
/// at the `next_lsn` it was opened with. All fault-injection points of
/// the append path live here.
///
/// Thread-safe: an internal mutex serializes Append / Truncate /
/// CompactThrough, so concurrent CRUD statements (which hold only their
/// construct's mapping lock domain, not a global writer lock) can share
/// one writer.
class WalWriter {
 public:
  enum class SyncMode {
    kNone,   // write(2) only: survives process death, not OS death
    kFsync,  // fdatasync per append: survives power loss
  };

  /// Opens (creating if needed) the log for appending at `append_offset`
  /// — recovery passes the valid-prefix length so a torn tail from a
  /// previous life is chopped off before new records go in.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 uint64_t append_offset,
                                                 uint64_t next_lsn,
                                                 SyncMode sync,
                                                 FaultInjector* faults);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record (assigning its LSN) and makes it as durable as
  /// the sync mode promises before returning. Payloads larger than
  /// kMaxWalRecordBytes are rejected before anything reaches the file.
  /// On a write or sync failure the record is not acknowledged and the
  /// file is truncated back to the last acknowledged byte; if even that
  /// fails the writer poisons itself and every later Append fails, so an
  /// acknowledged record can never land after torn bytes the reader
  /// would stop at.
  Status Append(WalRecord record);

  /// Empties the log after a checkpoint made it redundant.
  Status Truncate();

  /// Drops every record with lsn <= `last_lsn` (they are covered by a
  /// snapshot) and keeps the rest: records appended *while* the snapshot
  /// was being written are not yet durable anywhere else. Rewrites the
  /// file via tmp + fsync + rename so a crash mid-compaction leaves
  /// either the old or the new log, never a mix. An empty survivor set
  /// degenerates to Truncate.
  Status CompactThrough(uint64_t last_lsn);

  uint64_t next_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_lsn_;
  }
  /// Bytes of acknowledged records currently in the file.
  uint64_t bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return offset_;
  }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, uint64_t offset, uint64_t next_lsn,
            SyncMode sync, FaultInjector* faults)
      : path_(std::move(path)),
        fd_(fd),
        offset_(offset),
        next_lsn_(next_lsn),
        sync_(sync),
        faults_(faults) {}

  Status WriteAll(const char* data, size_t size);
  Status MaybeSync();
  /// Rolls the file back to offset_ after a failed append; poisons the
  /// writer when the rollback itself fails. Returns `cause` either way.
  Status RestoreAfterFailure(Status cause);

  mutable std::mutex mu_;  // serializes Append/Truncate/CompactThrough
  std::string path_;
  int fd_;
  uint64_t offset_;
  uint64_t next_lsn_;
  SyncMode sync_;
  FaultInjector* faults_;  // not owned; may be null
  bool failed_ = false;    // set when the file state is unknown
};

}  // namespace durability
}  // namespace erbium

#endif  // ERBIUM_DURABILITY_WAL_H_
