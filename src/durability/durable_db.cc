#include "durability/durable_db.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "er/ddl_parser.h"
#include "evolution/evolution.h"
#include "obs/metrics.h"

namespace erbium {
namespace durability {

namespace {

std::string WalPath(const std::string& dir) { return dir + "/wal.erblog"; }

obs::Counter RecoveryCounter(const char* name) {
  return obs::MetricsRegistry::Global().counter(name);
}

Status WriteFileDurably(const std::string& path, const std::string& bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  const char* data = bytes.data();
  size_t size = bytes.size();
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::IOError("write to " + path + " failed: " +
                             std::strerror(err));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError("fsync of " + path + " failed: " +
                           std::strerror(err));
  }
  ::close(fd);
  return Status::OK();
}

Status SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::OK();  // directory fsync is best-effort
  ::fsync(fd);
  ::close(fd);
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<DurableDatabase>> DurableDatabase::Open(
    const std::string& dir, Options options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create database directory " + dir + ": " +
                           ec.message());
  }
  std::unique_ptr<DurableDatabase> durable(
      new DurableDatabase(dir, std::move(options)));
  ERBIUM_RETURN_NOT_OK(durable->Recover());
  return durable;
}

DurableDatabase::~DurableDatabase() {
  if (db_ != nullptr) db_->set_durability_hook(nullptr);
}

Status DurableDatabase::Recover() {
  // 1. Newest snapshot that still decodes wins; a corrupt newer
  //    generation (e.g. torn tmp-rename) falls back to the one before.
  SnapshotData snapshot;
  std::vector<uint64_t> gens = ListSnapshotGens(dir_);
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    Result<SnapshotData> loaded = LoadSnapshotFile(SnapshotPath(dir_, *it));
    if (loaded.ok()) {
      snapshot = std::move(loaded).value();
      recovery_.had_snapshot = true;
      recovery_.snapshot_gen = *it;
      recovery_.snapshot_lsn = snapshot.last_lsn;
      latest_snapshot_gen_ = gens.back();
      break;
    }
    ++recovery_.snapshots_skipped;
  }

  // 2. Schema + mapping: from the snapshot when there is one, otherwise
  //    from the open options (brand-new database).
  if (recovery_.had_snapshot) {
    ddl_ = snapshot.ddl;
    ERBIUM_ASSIGN_OR_RETURN(spec_, MappingSpec::FromJson(snapshot.spec_json));
  } else {
    ddl_ = options_.initial_ddl;
    spec_ = options_.spec;
  }
  if (!ddl_.empty()) {
    ERBIUM_RETURN_NOT_OK(DdlParser::Execute(ddl_, schema_.get()));
  }
  ERBIUM_ASSIGN_OR_RETURN(db_, MappedDatabase::Create(schema_.get(), spec_));
  if (recovery_.had_snapshot) {
    ERBIUM_RETURN_NOT_OK(LoadIntoDatabase(snapshot, db_.get()));
  }

  // 3. Replay the WAL tail through the normal logical choke points. The
  //    hook stays detached so replay does not re-log.
  ERBIUM_ASSIGN_OR_RETURN(WalReadResult wal, ReadWal(WalPath(dir_)));
  uint64_t max_lsn = snapshot.last_lsn;
  for (const WalRecord& record : wal.records) {
    if (record.lsn <= snapshot.last_lsn) {
      // Checkpoint crashed after the rename but before the truncate:
      // these records are already inside the snapshot.
      ++recovery_.records_skipped;
      continue;
    }
    ERBIUM_RETURN_NOT_OK(ReplayRecord(record));
    ++recovery_.records_replayed;
    max_lsn = record.lsn;
  }
  recovery_.wal_clean = wal.clean;
  recovery_.wal_stop_reason = wal.stop_reason;

  RecoveryCounter("recovery.opens").Increment();
  RecoveryCounter("recovery.records_replayed")
      .Increment(recovery_.records_replayed);
  RecoveryCounter("recovery.records_skipped")
      .Increment(recovery_.records_skipped);
  if (!wal.clean) RecoveryCounter("recovery.torn_tails").Increment();
  if (recovery_.snapshots_skipped > 0) {
    RecoveryCounter("recovery.snapshots_skipped")
        .Increment(recovery_.snapshots_skipped);
  }

  // 4. Append after the valid prefix (chopping any torn tail) and start
  //    numbering after everything recovered.
  ERBIUM_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(WalPath(dir_), wal.valid_bytes, max_lsn + 1,
                            options_.sync, options_.faults));
  db_->set_durability_hook(this);
  return Status::OK();
}

Status DurableDatabase::Rebuild(std::shared_ptr<ERSchema> next_schema) {
  // The old db_ points into the *current* schema_ object, so the new
  // schema must live in its own object until migration is done — mutating
  // schema_ in place would make the old instance claim entity sets its
  // catalog has no tables for.
  auto fresh_result = MappedDatabase::Create(next_schema.get(), spec_);
  if (!fresh_result.ok()) {
    if (db_ != nullptr && wal_ != nullptr) db_->set_durability_hook(this);
    return fresh_result.status();
  }
  std::unique_ptr<MappedDatabase> fresh = std::move(fresh_result).value();
  if (db_ != nullptr) {
    // Migration reads through the old instance's logical interface; make
    // sure it does not try to log.
    db_->set_durability_hook(nullptr);
    Status migrated = evolution::MigrateData(db_.get(), fresh.get());
    if (!migrated.ok()) {
      if (wal_ != nullptr) db_->set_durability_hook(this);
      return migrated;
    }
  }
  db_ = std::move(fresh);
  schema_ = std::move(next_schema);
  if (wal_ != nullptr) db_->set_durability_hook(this);
  return Status::OK();
}

Status DurableDatabase::ReplayRecord(const WalRecord& record) {
  switch (record.type) {
    case WalRecord::Type::kInsertEntity:
      return db_->InsertEntity(record.name, record.value);
    case WalRecord::Type::kDeleteEntity:
      return db_->DeleteEntity(record.name, record.key);
    case WalRecord::Type::kUpdateAttribute:
      return db_->UpdateAttribute(record.name, record.key, record.attr,
                                  record.value);
    case WalRecord::Type::kInsertRelationship:
      return db_->InsertRelationship(record.name, record.key, record.right_key,
                                     record.value);
    case WalRecord::Type::kDeleteRelationship:
      return db_->DeleteRelationship(record.name, record.key,
                                     record.right_key);
    case WalRecord::Type::kDdl: {
      auto next = std::make_shared<ERSchema>(*schema_);
      ERBIUM_RETURN_NOT_OK(DdlParser::Execute(record.name, next.get()));
      ERBIUM_RETURN_NOT_OK(Rebuild(std::move(next)));
      ddl_ += "\n";
      ddl_ += record.name;
      return Status::OK();
    }
    case WalRecord::Type::kRemap: {
      ERBIUM_ASSIGN_OR_RETURN(spec_, MappingSpec::FromJson(record.name));
      return Rebuild(schema_);
    }
  }
  return Status::IOError("unreachable WAL record type");
}

Status DurableDatabase::AppendRecord(WalRecord record) {
  // Single-writer choke point for the log: every CRUD hook, DDL, and
  // remap funnels here, so a concurrent unsynchronized mutator trips the
  // debug check even when the races never collide in MappedDatabase.
  WriterCheck::Scope write_scope(&writer_check_, "DurableDatabase (WAL)");
  return wal_->Append(std::move(record));
}

Status DurableDatabase::ExecuteDdl(const std::string& ddl) {
  WriterCheck::Scope write_scope(&writer_check_,
                                 "DurableDatabase (ExecuteDdl)");
  if (options_.faults != nullptr) {
    ERBIUM_RETURN_NOT_OK(options_.faults->Check());
  }
  auto next = std::make_shared<ERSchema>(*schema_);
  ERBIUM_RETURN_NOT_OK(DdlParser::Execute(ddl, next.get()));
  ERBIUM_RETURN_NOT_OK(Rebuild(std::move(next)));
  WalRecord record;
  record.type = WalRecord::Type::kDdl;
  record.name = ddl;
  ERBIUM_RETURN_NOT_OK(AppendRecord(std::move(record)));
  ddl_ += "\n";
  ddl_ += ddl;
  return Status::OK();
}

Status DurableDatabase::Remap(MappingSpec new_spec) {
  WriterCheck::Scope write_scope(&writer_check_, "DurableDatabase (Remap)");
  if (options_.faults != nullptr) {
    ERBIUM_RETURN_NOT_OK(options_.faults->Check());
  }
  MappingSpec old = spec_;
  spec_ = std::move(new_spec);
  Status rebuilt = Rebuild(schema_);
  if (!rebuilt.ok()) {
    spec_ = std::move(old);
    return rebuilt;
  }
  WalRecord record;
  record.type = WalRecord::Type::kRemap;
  record.name = spec_.ToJson();
  return AppendRecord(std::move(record));
}

Status DurableDatabase::LogInsertEntity(const std::string& class_name,
                                        const Value& entity) {
  WalRecord record;
  record.type = WalRecord::Type::kInsertEntity;
  record.name = class_name;
  record.value = entity;
  return AppendRecord(std::move(record));
}

Status DurableDatabase::LogDeleteEntity(const std::string& class_name,
                                        const IndexKey& key) {
  WalRecord record;
  record.type = WalRecord::Type::kDeleteEntity;
  record.name = class_name;
  record.key = key;
  return AppendRecord(std::move(record));
}

Status DurableDatabase::LogUpdateAttribute(const std::string& class_name,
                                           const IndexKey& key,
                                           const std::string& attr,
                                           const Value& value) {
  WalRecord record;
  record.type = WalRecord::Type::kUpdateAttribute;
  record.name = class_name;
  record.key = key;
  record.attr = attr;
  record.value = value;
  return AppendRecord(std::move(record));
}

Status DurableDatabase::LogInsertRelationship(const std::string& rel_name,
                                              const IndexKey& left_key,
                                              const IndexKey& right_key,
                                              const Value& attrs) {
  WalRecord record;
  record.type = WalRecord::Type::kInsertRelationship;
  record.name = rel_name;
  record.key = left_key;
  record.right_key = right_key;
  record.value = attrs;
  return AppendRecord(std::move(record));
}

Status DurableDatabase::LogDeleteRelationship(const std::string& rel_name,
                                              const IndexKey& left_key,
                                              const IndexKey& right_key) {
  WalRecord record;
  record.type = WalRecord::Type::kDeleteRelationship;
  record.name = rel_name;
  record.key = left_key;
  record.right_key = right_key;
  return AppendRecord(std::move(record));
}

Result<std::string> DurableDatabase::Checkpoint() {
  // Checkpoint captures table state and truncates the WAL; racing it
  // against any mutator would snapshot a half-applied world.
  WriterCheck::Scope write_scope(&writer_check_,
                                 "DurableDatabase (Checkpoint)");
  FaultInjector* faults = options_.faults;
  if (faults != nullptr) {
    ERBIUM_RETURN_NOT_OK(faults->Check());
    if (faults->ShouldCrash("checkpoint.begin")) return faults->Crash();
  }
  uint64_t last_lsn = wal_->next_lsn() - 1;
  SnapshotData data = CaptureSnapshot(*db_, last_lsn, ddl_);
  std::string bytes = EncodeSnapshot(data);
  if (bytes.size() - kSnapshotHeaderBytes > kMaxSnapshotPayloadBytes) {
    // Fail here, before anything is renamed or truncated: a snapshot the
    // decode side would reject (or whose size wraps the u32 length field)
    // must never supersede the WAL, or the next recovery silently falls
    // back to an older generation and everything since is lost.
    return Status::IOError(
        "snapshot payload of " +
        std::to_string(bytes.size() - kSnapshotHeaderBytes) +
        " bytes exceeds the " + std::to_string(kMaxSnapshotPayloadBytes) +
        "-byte format limit; checkpoint aborted (WAL left intact)");
  }
  uint64_t gen = latest_snapshot_gen_ + 1;
  std::string final_path = SnapshotPath(dir_, gen);
  std::string tmp_path = final_path + ".tmp";

  ERBIUM_RETURN_NOT_OK(WriteFileDurably(tmp_path, bytes));
  if (faults != nullptr && faults->ShouldCrash("checkpoint.tmp_written")) {
    return faults->Crash();
  }

  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::IOError("snapshot rename failed: " + ec.message());
  }
  SyncDirectory(dir_);
  if (faults != nullptr && faults->ShouldCrash("checkpoint.renamed")) {
    return faults->Crash();
  }

  ERBIUM_RETURN_NOT_OK(wal_->Truncate());
  latest_snapshot_gen_ = gen;
  for (uint64_t old : ListSnapshotGens(dir_)) {
    if (old < gen) std::filesystem::remove(SnapshotPath(dir_, old), ec);
  }
  if (faults != nullptr && faults->ShouldCrash("checkpoint.done")) {
    return faults->Crash();
  }

  obs::MetricsRegistry::Global().counter("checkpoint.count").Increment();
  obs::MetricsRegistry::Global()
      .counter("checkpoint.bytes")
      .Increment(bytes.size());
  size_t rows = 0;
  for (const auto& table : data.tables) rows += table.rows.size();
  char summary[160];
  std::snprintf(summary, sizeof(summary),
                "checkpoint gen=%llu lsn=%llu tables=%zu rows=%zu bytes=%zu",
                static_cast<unsigned long long>(gen),
                static_cast<unsigned long long>(last_lsn), data.tables.size(),
                rows, bytes.size());
  return std::string(summary);
}

}  // namespace durability
}  // namespace erbium
