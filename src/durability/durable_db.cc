#include "durability/durable_db.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "er/ddl_parser.h"
#include "evolution/evolution.h"
#include "obs/metrics.h"

namespace erbium {
namespace durability {

namespace {

std::string WalPath(const std::string& dir) { return dir + "/wal.erblog"; }

obs::Counter RecoveryCounter(const char* name) {
  return obs::MetricsRegistry::Global().counter(name);
}

Status WriteFileDurably(const std::string& path, const std::string& bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  const char* data = bytes.data();
  size_t size = bytes.size();
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::IOError("write to " + path + " failed: " +
                             std::strerror(err));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError("fsync of " + path + " failed: " +
                           std::strerror(err));
  }
  ::close(fd);
  return Status::OK();
}

Status SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::OK();  // directory fsync is best-effort
  ::fsync(fd);
  ::close(fd);
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<DurableDatabase>> DurableDatabase::Open(
    const std::string& dir, Options options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create database directory " + dir + ": " +
                           ec.message());
  }
  std::unique_ptr<DurableDatabase> durable(
      new DurableDatabase(dir, std::move(options)));
  ERBIUM_RETURN_NOT_OK(durable->Recover());
  return durable;
}

DurableDatabase::~DurableDatabase() {
  if (db_ != nullptr) db_->set_durability_hook(nullptr);
}

Status DurableDatabase::Recover() {
  // 1. Newest snapshot that still decodes wins; a corrupt newer
  //    generation (e.g. torn tmp-rename) falls back to the one before.
  SnapshotData snapshot;
  std::vector<uint64_t> gens = ListSnapshotGens(dir_);
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    Result<SnapshotData> loaded = LoadSnapshotFile(SnapshotPath(dir_, *it));
    if (loaded.ok()) {
      snapshot = std::move(loaded).value();
      recovery_.had_snapshot = true;
      recovery_.snapshot_gen = *it;
      recovery_.snapshot_lsn = snapshot.last_lsn;
      latest_snapshot_gen_ = gens.back();
      break;
    }
    ++recovery_.snapshots_skipped;
  }

  // 2. Schema + mapping: from the snapshot when there is one, otherwise
  //    from the open options (brand-new database).
  if (recovery_.had_snapshot) {
    ddl_ = snapshot.ddl;
    ERBIUM_ASSIGN_OR_RETURN(spec_, MappingSpec::FromJson(snapshot.spec_json));
  } else {
    ddl_ = options_.initial_ddl;
    spec_ = options_.spec;
  }
  if (!ddl_.empty()) {
    ERBIUM_RETURN_NOT_OK(DdlParser::Execute(ddl_, schema_.get()));
  }
  ERBIUM_ASSIGN_OR_RETURN(db_, MappedDatabase::Create(schema_.get(), spec_));
  if (options_.remote_check) {
    db_->set_remote_entity_check(options_.remote_check);
  }
  if (recovery_.had_snapshot) {
    ERBIUM_RETURN_NOT_OK(LoadIntoDatabase(snapshot, db_.get()));
  }

  // 3. Replay the WAL tail through the normal logical choke points. The
  //    hook stays detached so replay does not re-log.
  ERBIUM_ASSIGN_OR_RETURN(WalReadResult wal, ReadWal(WalPath(dir_)));
  uint64_t max_lsn = snapshot.last_lsn;
  for (const WalRecord& record : wal.records) {
    if (record.lsn <= snapshot.last_lsn) {
      // Checkpoint crashed after the rename but before the truncate:
      // these records are already inside the snapshot.
      ++recovery_.records_skipped;
      continue;
    }
    ERBIUM_RETURN_NOT_OK(ReplayRecord(record));
    ++recovery_.records_replayed;
    max_lsn = record.lsn;
  }
  recovery_.wal_clean = wal.clean;
  recovery_.wal_stop_reason = wal.stop_reason;

  RecoveryCounter("recovery.opens").Increment();
  RecoveryCounter("recovery.records_replayed")
      .Increment(recovery_.records_replayed);
  RecoveryCounter("recovery.records_skipped")
      .Increment(recovery_.records_skipped);
  if (!wal.clean) RecoveryCounter("recovery.torn_tails").Increment();
  if (recovery_.snapshots_skipped > 0) {
    RecoveryCounter("recovery.snapshots_skipped")
        .Increment(recovery_.snapshots_skipped);
  }

  // 4. Append after the valid prefix (chopping any torn tail) and start
  //    numbering after everything recovered.
  ERBIUM_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(WalPath(dir_), wal.valid_bytes, max_lsn + 1,
                            options_.sync, options_.faults));
  db_->set_durability_hook(this);
  return Status::OK();
}

Status DurableDatabase::Rebuild(std::shared_ptr<ERSchema> next_schema) {
  // The old db_ points into the *current* schema_ object, so the new
  // schema must live in its own object until migration is done — mutating
  // schema_ in place would make the old instance claim entity sets its
  // catalog has no tables for.
  auto fresh_result = MappedDatabase::Create(next_schema.get(), spec_);
  if (!fresh_result.ok()) {
    if (db_ != nullptr && wal_ != nullptr) db_->set_durability_hook(this);
    return fresh_result.status();
  }
  std::unique_ptr<MappedDatabase> fresh = std::move(fresh_result).value();
  if (options_.remote_check) {
    fresh->set_remote_entity_check(options_.remote_check);
  }
  if (db_ != nullptr) {
    // Migration reads through the old instance's logical interface; make
    // sure it does not try to log.
    db_->set_durability_hook(nullptr);
    Status migrated = evolution::MigrateData(db_.get(), fresh.get());
    if (!migrated.ok()) {
      if (wal_ != nullptr) db_->set_durability_hook(this);
      return migrated;
    }
  }
  db_ = std::move(fresh);
  schema_ = std::move(next_schema);
  if (wal_ != nullptr) db_->set_durability_hook(this);
  return Status::OK();
}

Status DurableDatabase::ReplayRecord(const WalRecord& record) {
  switch (record.type) {
    case WalRecord::Type::kInsertEntity:
      return db_->InsertEntity(record.name, record.value);
    case WalRecord::Type::kDeleteEntity:
      return db_->DeleteEntity(record.name, record.key);
    case WalRecord::Type::kUpdateAttribute:
      return db_->UpdateAttribute(record.name, record.key, record.attr,
                                  record.value);
    case WalRecord::Type::kInsertRelationship:
      return db_->InsertRelationship(record.name, record.key, record.right_key,
                                     record.value);
    case WalRecord::Type::kDeleteRelationship:
      return db_->DeleteRelationship(record.name, record.key,
                                     record.right_key);
    case WalRecord::Type::kDdl: {
      auto next = std::make_shared<ERSchema>(*schema_);
      ERBIUM_RETURN_NOT_OK(DdlParser::Execute(record.name, next.get()));
      ERBIUM_RETURN_NOT_OK(Rebuild(std::move(next)));
      ddl_ += "\n";
      ddl_ += record.name;
      return Status::OK();
    }
    case WalRecord::Type::kRemap: {
      ERBIUM_ASSIGN_OR_RETURN(spec_, MappingSpec::FromJson(record.name));
      return Rebuild(schema_);
    }
  }
  return Status::IOError("unreachable WAL record type");
}

Status DurableDatabase::AppendRecord(WalRecord record) {
  // Choke point for the log: every CRUD hook, DDL, and remap funnels
  // here. Concurrent CRUD statements (serialized only per mapping lock
  // domain) interleave freely — the WalWriter's internal mutex orders
  // their records.
  return wal_->Append(std::move(record));
}

Status DurableDatabase::ExecuteDdl(const std::string& ddl) {
  // DDL rebuilds the physical database; callers hold the exclusive
  // statement barrier (StatementRunner) or own the database outright.
  if (options_.faults != nullptr) {
    ERBIUM_RETURN_NOT_OK(options_.faults->Check());
  }
  auto next = std::make_shared<ERSchema>(*schema_);
  ERBIUM_RETURN_NOT_OK(DdlParser::Execute(ddl, next.get()));
  ERBIUM_RETURN_NOT_OK(Rebuild(std::move(next)));
  WalRecord record;
  record.type = WalRecord::Type::kDdl;
  record.name = ddl;
  ERBIUM_RETURN_NOT_OK(AppendRecord(std::move(record)));
  ddl_ += "\n";
  ddl_ += ddl;
  return Status::OK();
}

Status DurableDatabase::Remap(MappingSpec new_spec) {
  // Same exclusivity contract as ExecuteDdl.
  if (options_.faults != nullptr) {
    ERBIUM_RETURN_NOT_OK(options_.faults->Check());
  }
  MappingSpec old = spec_;
  spec_ = std::move(new_spec);
  Status rebuilt = Rebuild(schema_);
  if (!rebuilt.ok()) {
    spec_ = std::move(old);
    return rebuilt;
  }
  WalRecord record;
  record.type = WalRecord::Type::kRemap;
  record.name = spec_.ToJson();
  return AppendRecord(std::move(record));
}

Status DurableDatabase::LogInsertEntity(const std::string& class_name,
                                        const Value& entity) {
  WalRecord record;
  record.type = WalRecord::Type::kInsertEntity;
  record.name = class_name;
  record.value = entity;
  return AppendRecord(std::move(record));
}

Status DurableDatabase::LogDeleteEntity(const std::string& class_name,
                                        const IndexKey& key) {
  WalRecord record;
  record.type = WalRecord::Type::kDeleteEntity;
  record.name = class_name;
  record.key = key;
  return AppendRecord(std::move(record));
}

Status DurableDatabase::LogUpdateAttribute(const std::string& class_name,
                                           const IndexKey& key,
                                           const std::string& attr,
                                           const Value& value) {
  WalRecord record;
  record.type = WalRecord::Type::kUpdateAttribute;
  record.name = class_name;
  record.key = key;
  record.attr = attr;
  record.value = value;
  return AppendRecord(std::move(record));
}

Status DurableDatabase::LogInsertRelationship(const std::string& rel_name,
                                              const IndexKey& left_key,
                                              const IndexKey& right_key,
                                              const Value& attrs) {
  WalRecord record;
  record.type = WalRecord::Type::kInsertRelationship;
  record.name = rel_name;
  record.key = left_key;
  record.right_key = right_key;
  record.value = attrs;
  return AppendRecord(std::move(record));
}

Status DurableDatabase::LogDeleteRelationship(const std::string& rel_name,
                                              const IndexKey& left_key,
                                              const IndexKey& right_key) {
  WalRecord record;
  record.type = WalRecord::Type::kDeleteRelationship;
  record.name = rel_name;
  record.key = left_key;
  record.right_key = right_key;
  return AppendRecord(std::move(record));
}

Result<DurableDatabase::CheckpointPins> DurableDatabase::PrepareCheckpoint() {
  if (checkpoint_running_.exchange(true)) {
    return Status::Unavailable("another checkpoint is already in progress");
  }
  FaultInjector* faults = options_.faults;
  if (faults != nullptr) {
    Status alive = faults->Check();
    if (!alive.ok()) {
      checkpoint_running_.store(false);
      return alive;
    }
    if (faults->ShouldCrash("checkpoint.begin")) {
      checkpoint_running_.store(false);
      return faults->Crash();
    }
  }
  CheckpointPins pins;
  // Records up to here are inside the pinned image; anything appended
  // while the write phase runs stays in the compacted WAL.
  pins.last_lsn = wal_->next_lsn() - 1;
  pins.gen = latest_snapshot_gen_ + 1;
  pins.ddl = ddl_;
  pins.spec_json = db_->mapping().spec().ToJson();
  for (const std::string& name : db_->catalog().TableNames()) {
    if (name == MappedDatabase::kMappingCatalogTable) continue;
    pins.tables.emplace_back(name,
                             db_->catalog().GetTable(name)->PinVersion());
  }
  for (const auto& def : db_->mapping().pairs()) {
    const FactorizedPair* pair = db_->pair(def.name);
    if (pair != nullptr) pins.pairs.emplace_back(def.name, pair->PinVersion());
  }
  return pins;
}

Result<std::string> DurableDatabase::WriteSnapshotPhase(
    const CheckpointPins& pins) {
  FaultInjector* faults = options_.faults;
  if (faults != nullptr) {
    ERBIUM_RETURN_NOT_OK(faults->Check());
    // Test hook: park here (pins held, nothing on disk yet) so tests can
    // prove reads and writes proceed mid-checkpoint.
    faults->MaybeBlock("checkpoint.writing");
  }
  SnapshotData data = CaptureSnapshotFromPins(pins.tables, pins.pairs,
                                              pins.last_lsn, pins.ddl,
                                              pins.spec_json);
  std::string bytes = EncodeSnapshot(data);
  if (bytes.size() - kSnapshotHeaderBytes > kMaxSnapshotPayloadBytes) {
    // Fail here, before anything is renamed or compacted: a snapshot the
    // decode side would reject (or whose size wraps the u32 length field)
    // must never supersede the WAL, or the next recovery silently falls
    // back to an older generation and everything since is lost.
    return Status::IOError(
        "snapshot payload of " +
        std::to_string(bytes.size() - kSnapshotHeaderBytes) +
        " bytes exceeds the " + std::to_string(kMaxSnapshotPayloadBytes) +
        "-byte format limit; checkpoint aborted (WAL left intact)");
  }
  std::string tmp_path = SnapshotPath(dir_, pins.gen) + ".tmp";
  ERBIUM_RETURN_NOT_OK(WriteFileDurably(tmp_path, bytes));
  if (faults != nullptr && faults->ShouldCrash("checkpoint.tmp_written")) {
    return faults->Crash();
  }

  obs::MetricsRegistry::Global().counter("checkpoint.count").Increment();
  obs::MetricsRegistry::Global()
      .counter("checkpoint.bytes")
      .Increment(bytes.size());
  size_t rows = 0;
  for (const auto& table : data.tables) rows += table.rows.size();
  char summary[160];
  std::snprintf(summary, sizeof(summary),
                "checkpoint gen=%llu lsn=%llu tables=%zu rows=%zu bytes=%zu",
                static_cast<unsigned long long>(pins.gen),
                static_cast<unsigned long long>(pins.last_lsn),
                data.tables.size(), rows, bytes.size());
  return std::string(summary);
}

Status DurableDatabase::FinishCheckpoint(const CheckpointPins& pins) {
  // Whatever happens below, the next checkpoint may start once we return.
  struct ClearFlag {
    std::atomic<bool>* flag;
    ~ClearFlag() { flag->store(false); }
  } clear{&checkpoint_running_};
  FaultInjector* faults = options_.faults;
  if (faults != nullptr) {
    ERBIUM_RETURN_NOT_OK(faults->Check());
  }
  std::string final_path = SnapshotPath(dir_, pins.gen);
  std::string tmp_path = final_path + ".tmp";
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    return Status::IOError("snapshot rename failed: " + ec.message());
  }
  SyncDirectory(dir_);
  if (faults != nullptr && faults->ShouldCrash("checkpoint.renamed")) {
    return faults->Crash();
  }

  // Keep records appended during the write phase: only what the snapshot
  // covers (lsn <= last_lsn) is dropped.
  ERBIUM_RETURN_NOT_OK(wal_->CompactThrough(pins.last_lsn));
  latest_snapshot_gen_ = pins.gen;
  for (uint64_t old : ListSnapshotGens(dir_)) {
    if (old < pins.gen) std::filesystem::remove(SnapshotPath(dir_, old), ec);
  }
  if (faults != nullptr && faults->ShouldCrash("checkpoint.done")) {
    return faults->Crash();
  }
  return Status::OK();
}

Result<std::string> DurableDatabase::Checkpoint() {
  ERBIUM_ASSIGN_OR_RETURN(CheckpointPins pins, PrepareCheckpoint());
  Result<std::string> summary = WriteSnapshotPhase(pins);
  if (!summary.ok()) {
    AbortCheckpoint();
    return summary.status();
  }
  ERBIUM_RETURN_NOT_OK(FinishCheckpoint(pins));
  return summary;
}

}  // namespace durability
}  // namespace erbium
