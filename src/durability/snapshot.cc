#include "durability/snapshot.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <unordered_map>

#include "durability/serde.h"

namespace erbium {
namespace durability {

namespace {

constexpr char kMagic[] = "ERBSNP01";
constexpr size_t kMagicBytes = 8;
static_assert(kSnapshotHeaderBytes == kMagicBytes + 8);

void PutRow(const Row& row, std::string* out) { PutValues(row, out); }

void PutRows(const std::vector<Row>& rows, std::string* out) {
  PutU64(rows.size(), out);
  for (const Row& row : rows) PutRow(row, out);
}

Result<std::vector<Row>> ReadRows(ByteReader* reader) {
  ERBIUM_ASSIGN_OR_RETURN(uint64_t count, reader->U64());
  ERBIUM_RETURN_NOT_OK(
      count <= reader->remaining()
          ? Status::OK()
          : Status::IOError("snapshot row count exceeds file size"));
  std::vector<Row> rows;
  rows.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ERBIUM_ASSIGN_OR_RETURN(Row row, reader->ReadValues());
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

std::string EncodeSnapshot(const SnapshotData& data) {
  std::string payload;
  PutU64(data.last_lsn, &payload);
  PutString(data.ddl, &payload);
  PutString(data.spec_json, &payload);
  PutU32(static_cast<uint32_t>(data.tables.size()), &payload);
  for (const auto& table : data.tables) {
    PutString(table.name, &payload);
    PutRows(table.rows, &payload);
  }
  PutU32(static_cast<uint32_t>(data.pairs.size()), &payload);
  for (const auto& pair : data.pairs) {
    PutString(pair.name, &payload);
    PutRows(pair.left_rows, &payload);
    PutRows(pair.right_rows, &payload);
    PutU64(pair.edges.size(), &payload);
    for (const auto& [left, right] : pair.edges) {
      PutU64(left, &payload);
      PutU64(right, &payload);
    }
  }
  std::string out(kMagic, kMagicBytes);
  PutU32(static_cast<uint32_t>(payload.size()), &out);
  PutU32(Crc32(payload.data(), payload.size()), &out);
  out += payload;
  return out;
}

Result<SnapshotData> DecodeSnapshot(const std::string& bytes) {
  if (bytes.size() < kMagicBytes + 8 ||
      bytes.compare(0, kMagicBytes, kMagic) != 0) {
    return Status::IOError("not a snapshot file (bad magic)");
  }
  ByteReader header(bytes.data() + kMagicBytes, 8);
  ERBIUM_ASSIGN_OR_RETURN(uint32_t len, header.U32());
  ERBIUM_ASSIGN_OR_RETURN(uint32_t crc, header.U32());
  if (len > kMaxSnapshotPayloadBytes || bytes.size() - kMagicBytes - 8 != len) {
    return Status::IOError("snapshot payload length mismatch");
  }
  const char* payload = bytes.data() + kMagicBytes + 8;
  if (Crc32(payload, len) != crc) {
    return Status::IOError("snapshot checksum mismatch");
  }
  SnapshotData data;
  ByteReader reader(payload, len);
  ERBIUM_ASSIGN_OR_RETURN(data.last_lsn, reader.U64());
  ERBIUM_ASSIGN_OR_RETURN(data.ddl, reader.String());
  ERBIUM_ASSIGN_OR_RETURN(data.spec_json, reader.String());
  ERBIUM_ASSIGN_OR_RETURN(uint32_t table_count, reader.U32());
  for (uint32_t i = 0; i < table_count; ++i) {
    SnapshotData::TableImage table;
    ERBIUM_ASSIGN_OR_RETURN(table.name, reader.String());
    ERBIUM_ASSIGN_OR_RETURN(table.rows, ReadRows(&reader));
    data.tables.push_back(std::move(table));
  }
  ERBIUM_ASSIGN_OR_RETURN(uint32_t pair_count, reader.U32());
  for (uint32_t i = 0; i < pair_count; ++i) {
    SnapshotData::PairImage pair;
    ERBIUM_ASSIGN_OR_RETURN(pair.name, reader.String());
    ERBIUM_ASSIGN_OR_RETURN(pair.left_rows, ReadRows(&reader));
    ERBIUM_ASSIGN_OR_RETURN(pair.right_rows, ReadRows(&reader));
    ERBIUM_ASSIGN_OR_RETURN(uint64_t edge_count, reader.U64());
    if (edge_count > reader.remaining()) {
      return Status::IOError("snapshot edge count exceeds file size");
    }
    pair.edges.reserve(edge_count);
    for (uint64_t e = 0; e < edge_count; ++e) {
      ERBIUM_ASSIGN_OR_RETURN(uint64_t left, reader.U64());
      ERBIUM_ASSIGN_OR_RETURN(uint64_t right, reader.U64());
      pair.edges.emplace_back(left, right);
    }
    data.pairs.push_back(std::move(pair));
  }
  if (!reader.AtEnd()) {
    return Status::IOError("trailing bytes inside snapshot payload");
  }
  return data;
}

SnapshotData CaptureSnapshot(const MappedDatabase& db, uint64_t last_lsn,
                             std::string ddl) {
  SnapshotData data;
  data.last_lsn = last_lsn;
  data.ddl = std::move(ddl);
  data.spec_json = db.mapping().spec().ToJson();
  for (const std::string& name : db.catalog().TableNames()) {
    if (name == MappedDatabase::kMappingCatalogTable) continue;
    const Table* table = db.catalog().GetTable(name);
    SnapshotData::TableImage image;
    image.name = name;
    image.rows.reserve(table->size());
    for (RowId id = 0; id < table->slot_count(); ++id) {
      if (table->IsLive(id)) image.rows.push_back(table->row(id));
    }
    data.tables.push_back(std::move(image));
  }
  for (const auto& def : db.mapping().pairs()) {
    const FactorizedPair* pair = db.pair(def.name);
    if (pair == nullptr) continue;
    SnapshotData::PairImage image;
    image.name = def.name;
    // Densely renumber live rows on both sides so edges can reference
    // positions in the stored arrays.
    std::unordered_map<uint64_t, uint64_t> left_dense;
    std::unordered_map<uint64_t, uint64_t> right_dense;
    for (size_t i = 0; i < pair->left_size(); ++i) {
      if (!pair->left_live(i)) continue;
      left_dense[i] = image.left_rows.size();
      image.left_rows.push_back(pair->left_row(i));
    }
    for (size_t i = 0; i < pair->right_size(); ++i) {
      if (!pair->right_live(i)) continue;
      right_dense[i] = image.right_rows.size();
      image.right_rows.push_back(pair->right_row(i));
    }
    for (size_t i = 0; i < pair->left_size(); ++i) {
      if (!pair->left_live(i)) continue;
      for (uint32_t r : pair->right_neighbors(i)) {
        if (!pair->right_live(r)) continue;
        image.edges.emplace_back(left_dense[i], right_dense[r]);
      }
    }
    data.pairs.push_back(std::move(image));
  }
  return data;
}

SnapshotData CaptureSnapshotFromPins(
    const std::vector<std::pair<std::string,
                                std::shared_ptr<const TableVersion>>>& tables,
    const std::vector<std::pair<std::string,
                                std::shared_ptr<const PairVersion>>>& pairs,
    uint64_t last_lsn, std::string ddl, std::string spec_json) {
  SnapshotData data;
  data.last_lsn = last_lsn;
  data.ddl = std::move(ddl);
  data.spec_json = std::move(spec_json);
  for (const auto& [name, version] : tables) {
    SnapshotData::TableImage image;
    image.name = name;
    image.rows.reserve(version->size());
    for (RowId id = 0; id < version->slot_count(); ++id) {
      const Row* row = version->row(id);
      if (row != nullptr) image.rows.push_back(*row);
    }
    data.tables.push_back(std::move(image));
  }
  for (const auto& [name, version] : pairs) {
    SnapshotData::PairImage image;
    image.name = name;
    std::unordered_map<uint64_t, uint64_t> left_dense;
    std::unordered_map<uint64_t, uint64_t> right_dense;
    for (size_t i = 0; i < version->left_slots(); ++i) {
      const Row* row = version->left_row(i);
      if (row == nullptr) continue;
      left_dense[i] = image.left_rows.size();
      image.left_rows.push_back(*row);
    }
    for (size_t i = 0; i < version->right_slots(); ++i) {
      const Row* row = version->right_row(i);
      if (row == nullptr) continue;
      right_dense[i] = image.right_rows.size();
      image.right_rows.push_back(*row);
    }
    for (size_t i = 0; i < version->left_slots(); ++i) {
      if (version->left_row(i) == nullptr) continue;
      for (uint32_t r : *version->right_neighbors(i)) {
        if (version->right_row(r) == nullptr) continue;
        image.edges.emplace_back(left_dense[i], right_dense[r]);
      }
    }
    data.pairs.push_back(std::move(image));
  }
  return data;
}

Status LoadIntoDatabase(const SnapshotData& data, MappedDatabase* db) {
  for (const auto& image : data.tables) {
    Table* table = db->catalog().GetTable(image.name);
    if (table == nullptr) {
      return Status::IOError("snapshot table '" + image.name +
                             "' does not exist under the recovered mapping");
    }
    for (const Row& row : image.rows) {
      ERBIUM_RETURN_NOT_OK(table->Insert(row).status());
    }
  }
  for (const auto& image : data.pairs) {
    FactorizedPair* pair = db->pair(image.name);
    if (pair == nullptr) {
      return Status::IOError("snapshot pair '" + image.name +
                             "' does not exist under the recovered mapping");
    }
    // Find the key positions from the compiled mapping so edges can be
    // reconnected by key.
    const PhysicalMapping::PairDef* def = nullptr;
    for (const auto& d : db->mapping().pairs()) {
      if (d.name == image.name) def = &d;
    }
    if (def == nullptr) {
      return Status::IOError("snapshot pair '" + image.name +
                             "' missing from the compiled mapping");
    }
    for (const Row& row : image.left_rows) {
      ERBIUM_RETURN_NOT_OK(pair->InsertLeft(row).status());
    }
    for (const Row& row : image.right_rows) {
      ERBIUM_RETURN_NOT_OK(pair->InsertRight(row).status());
    }
    auto key_of = [](const Row& row, const std::vector<int>& positions) {
      IndexKey key;
      key.reserve(positions.size());
      for (int p : positions) key.push_back(row[p]);
      return key;
    };
    for (const auto& [left, right] : image.edges) {
      if (left >= image.left_rows.size() || right >= image.right_rows.size()) {
        return Status::IOError("snapshot edge index out of range in pair '" +
                               image.name + "'");
      }
      ERBIUM_RETURN_NOT_OK(
          pair->Connect(key_of(image.left_rows[left], def->left_key),
                        key_of(image.right_rows[right], def->right_key)));
    }
  }
  return Status::OK();
}

std::string SnapshotPath(const std::string& dir, uint64_t gen) {
  return dir + "/snapshot-" + std::to_string(gen) + ".erbsnap";
}

std::vector<uint64_t> ListSnapshotGens(const std::string& dir) {
  std::vector<uint64_t> gens;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr const char* kPrefix = "snapshot-";
    constexpr const char* kSuffix = ".erbsnap";
    if (name.rfind(kPrefix, 0) != 0) continue;
    if (name.size() <= 9 + 8 || name.compare(name.size() - 8, 8, kSuffix) != 0)
      continue;
    std::string digits = name.substr(9, name.size() - 9 - 8);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    // strtoull instead of stoull: a stray file whose digits overflow
    // uint64_t must be skipped, not abort Open with std::out_of_range.
    errno = 0;
    char* end = nullptr;
    unsigned long long gen = std::strtoull(digits.c_str(), &end, 10);
    if (errno == ERANGE || end != digits.c_str() + digits.size()) continue;
    gens.push_back(gen);
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

Result<SnapshotData> LoadSnapshotFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::IOError("cannot open snapshot " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(file)),
                    std::istreambuf_iterator<char>());
  if (file.bad()) {
    return Status::IOError("failed reading snapshot " + path);
  }
  return DecodeSnapshot(bytes);
}

}  // namespace durability
}  // namespace erbium
