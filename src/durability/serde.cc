#include "durability/serde.h"

#include <cstring>

namespace erbium {
namespace durability {

namespace {

/// Value kind tags. Deliberately decoupled from TypeKind enumerator
/// values so in-memory refactors cannot silently change the disk format.
enum : uint8_t {
  kTagNull = 0,
  kTagBool = 1,
  kTagInt64 = 2,
  kTagFloat64 = 3,
  kTagString = 4,
  kTagArray = 5,
  kTagStruct = 6,
};

}  // namespace

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(double v, std::string* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

void PutString(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

void PutValue(const Value& v, std::string* out) {
  switch (v.kind()) {
    case TypeKind::kNull:
      PutU8(kTagNull, out);
      return;
    case TypeKind::kBool:
      PutU8(kTagBool, out);
      PutU8(v.as_bool() ? 1 : 0, out);
      return;
    case TypeKind::kInt64:
      PutU8(kTagInt64, out);
      PutU64(static_cast<uint64_t>(v.as_int64()), out);
      return;
    case TypeKind::kFloat64:
      PutU8(kTagFloat64, out);
      PutF64(v.as_float64(), out);
      return;
    case TypeKind::kString:
      PutU8(kTagString, out);
      PutString(v.as_string(), out);
      return;
    case TypeKind::kArray: {
      PutU8(kTagArray, out);
      PutU32(static_cast<uint32_t>(v.array().size()), out);
      for (const Value& e : v.array()) PutValue(e, out);
      return;
    }
    case TypeKind::kStruct: {
      PutU8(kTagStruct, out);
      PutU32(static_cast<uint32_t>(v.struct_fields().size()), out);
      for (const auto& [name, field] : v.struct_fields()) {
        PutString(name, out);
        PutValue(field, out);
      }
      return;
    }
  }
}

void PutValues(const std::vector<Value>& values, std::string* out) {
  PutU32(static_cast<uint32_t>(values.size()), out);
  for (const Value& v : values) PutValue(v, out);
}

Status ByteReader::Need(size_t n) const {
  if (remaining() < n) {
    return Status::IOError("truncated record: need " + std::to_string(n) +
                           " bytes, have " + std::to_string(remaining()));
  }
  return Status::OK();
}

Result<uint8_t> ByteReader::U8() {
  ERBIUM_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(*p_++);
}

Result<uint32_t> ByteReader::U32() {
  ERBIUM_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(*p_++)) << (8 * i);
  }
  return v;
}

Result<uint64_t> ByteReader::U64() {
  ERBIUM_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(*p_++)) << (8 * i);
  }
  return v;
}

Result<double> ByteReader::F64() {
  ERBIUM_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> ByteReader::String() {
  ERBIUM_ASSIGN_OR_RETURN(uint32_t len, U32());
  ERBIUM_RETURN_NOT_OK(Need(len));
  std::string s(p_, p_ + len);
  p_ += len;
  return s;
}

Result<Value> ByteReader::ReadValue() { return ReadValueAt(0); }

Result<Value> ByteReader::ReadValueAt(int depth) {
  if (depth >= kMaxValueDepth) {
    return Status::IOError("value nesting deeper than " +
                           std::to_string(kMaxValueDepth) + " levels");
  }
  ERBIUM_ASSIGN_OR_RETURN(uint8_t tag, U8());
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagBool: {
      ERBIUM_ASSIGN_OR_RETURN(uint8_t b, U8());
      return Value::Bool(b != 0);
    }
    case kTagInt64: {
      ERBIUM_ASSIGN_OR_RETURN(uint64_t v, U64());
      return Value::Int64(static_cast<int64_t>(v));
    }
    case kTagFloat64: {
      ERBIUM_ASSIGN_OR_RETURN(double v, F64());
      return Value::Float64(v);
    }
    case kTagString: {
      ERBIUM_ASSIGN_OR_RETURN(std::string s, String());
      return Value::String(std::move(s));
    }
    case kTagArray: {
      ERBIUM_ASSIGN_OR_RETURN(uint32_t count, U32());
      // Every element takes at least one tag byte.
      ERBIUM_RETURN_NOT_OK(Need(count));
      Value::ArrayData elements;
      elements.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        ERBIUM_ASSIGN_OR_RETURN(Value e, ReadValueAt(depth + 1));
        elements.push_back(std::move(e));
      }
      return Value::Array(std::move(elements));
    }
    case kTagStruct: {
      ERBIUM_ASSIGN_OR_RETURN(uint32_t count, U32());
      ERBIUM_RETURN_NOT_OK(Need(count));
      Value::StructData fields;
      fields.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        ERBIUM_ASSIGN_OR_RETURN(std::string name, String());
        ERBIUM_ASSIGN_OR_RETURN(Value v, ReadValueAt(depth + 1));
        fields.emplace_back(std::move(name), std::move(v));
      }
      return Value::Struct(std::move(fields));
    }
    default:
      return Status::IOError("unknown value tag " + std::to_string(tag));
  }
}

Result<std::vector<Value>> ByteReader::ReadValues() {
  ERBIUM_ASSIGN_OR_RETURN(uint32_t count, U32());
  ERBIUM_RETURN_NOT_OK(Need(count));
  std::vector<Value> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ERBIUM_ASSIGN_OR_RETURN(Value v, ReadValue());
    values.push_back(std::move(v));
  }
  return values;
}

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  // Table-driven reflected CRC-32 (polynomial 0xEDB88320), the classic
  // IEEE 802.3 variant used by zlib and friends.
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = ~seed;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace durability
}  // namespace erbium
