#include "factorized/factorized.h"

#include <algorithm>

#include "storage/table.h"

namespace erbium {

FactorizedPair::FactorizedPair(std::string name,
                               std::vector<Column> left_columns,
                               std::vector<int> left_key,
                               std::vector<Column> right_columns,
                               std::vector<int> right_key)
    : name_(std::move(name)),
      left_columns_(std::move(left_columns)),
      right_columns_(std::move(right_columns)),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)) {}

IndexKey FactorizedPair::ExtractKey(const Row& row,
                                    const std::vector<int>& cols) const {
  IndexKey key;
  key.reserve(cols.size());
  for (int c : cols) key.push_back(row[c]);
  return key;
}

Result<uint32_t> FactorizedPair::InsertLeft(Row row) {
  if (row.size() != left_columns_.size()) {
    return Status::InvalidArgument("left row arity mismatch in " + name_);
  }
  IndexKey key = ExtractKey(row, left_key_);
  if (left_index_.count(key) > 0) {
    return Status::ConstraintViolation("duplicate left key in " + name_);
  }
  uint32_t index = static_cast<uint32_t>(left_rows_.size());
  left_index_.emplace(std::move(key), index);
  left_rows_.push_back(std::move(row));
  left_live_.push_back(true);
  left_to_right_.emplace_back();
  return index;
}

Result<uint32_t> FactorizedPair::InsertRight(Row row) {
  if (row.size() != right_columns_.size()) {
    return Status::InvalidArgument("right row arity mismatch in " + name_);
  }
  IndexKey key = ExtractKey(row, right_key_);
  if (right_index_.count(key) > 0) {
    return Status::ConstraintViolation("duplicate right key in " + name_);
  }
  uint32_t index = static_cast<uint32_t>(right_rows_.size());
  right_index_.emplace(std::move(key), index);
  right_rows_.push_back(std::move(row));
  right_live_.push_back(true);
  right_to_left_.emplace_back();
  return index;
}

Status FactorizedPair::Connect(const IndexKey& left_key,
                               const IndexKey& right_key) {
  int64_t l = FindLeft(left_key);
  int64_t r = FindRight(right_key);
  if (l < 0 || r < 0) {
    return Status::NotFound("connect with unknown key in " + name_);
  }
  auto& edges = left_to_right_[l];
  if (std::find(edges.begin(), edges.end(), static_cast<uint32_t>(r)) !=
      edges.end()) {
    return Status::AlreadyExists("edge already present in " + name_);
  }
  edges.push_back(static_cast<uint32_t>(r));
  right_to_left_[r].push_back(static_cast<uint32_t>(l));
  ++edge_count_;
  return Status::OK();
}

Status FactorizedPair::Disconnect(const IndexKey& left_key,
                                  const IndexKey& right_key) {
  int64_t l = FindLeft(left_key);
  int64_t r = FindRight(right_key);
  if (l < 0 || r < 0) {
    return Status::NotFound("disconnect with unknown key in " + name_);
  }
  auto& lr = left_to_right_[l];
  auto it = std::find(lr.begin(), lr.end(), static_cast<uint32_t>(r));
  if (it == lr.end()) {
    return Status::NotFound("edge not present in " + name_);
  }
  lr.erase(it);
  auto& rl = right_to_left_[r];
  rl.erase(std::find(rl.begin(), rl.end(), static_cast<uint32_t>(l)));
  --edge_count_;
  return Status::OK();
}

Status FactorizedPair::EraseLeft(const IndexKey& key) {
  int64_t l = FindLeft(key);
  if (l < 0) return Status::NotFound("no left row with given key in " + name_);
  for (uint32_t r : left_to_right_[l]) {
    auto& rl = right_to_left_[r];
    rl.erase(std::find(rl.begin(), rl.end(), static_cast<uint32_t>(l)));
    --edge_count_;
  }
  left_to_right_[l].clear();
  left_live_[l] = false;
  left_rows_[l].clear();
  left_index_.erase(key);
  return Status::OK();
}

Status FactorizedPair::EraseRight(const IndexKey& key) {
  int64_t r = FindRight(key);
  if (r < 0) {
    return Status::NotFound("no right row with given key in " + name_);
  }
  for (uint32_t l : right_to_left_[r]) {
    auto& lr = left_to_right_[l];
    lr.erase(std::find(lr.begin(), lr.end(), static_cast<uint32_t>(r)));
    --edge_count_;
  }
  right_to_left_[r].clear();
  right_live_[r] = false;
  right_rows_[r].clear();
  right_index_.erase(key);
  return Status::OK();
}

int64_t FactorizedPair::FindLeft(const IndexKey& key) const {
  auto it = left_index_.find(key);
  return it == left_index_.end() ? -1 : static_cast<int64_t>(it->second);
}

int64_t FactorizedPair::FindRight(const IndexKey& key) const {
  auto it = right_index_.find(key);
  return it == right_index_.end() ? -1 : static_cast<int64_t>(it->second);
}

Status FactorizedPair::UpdateLeft(const IndexKey& key, Row row) {
  int64_t l = FindLeft(key);
  if (l < 0) return Status::NotFound("no left row with given key in " + name_);
  if (row.size() != left_columns_.size()) {
    return Status::InvalidArgument("left row arity mismatch in " + name_);
  }
  if (!ValueVectorEq()(ExtractKey(row, left_key_), key)) {
    return Status::InvalidArgument(
        "key change not allowed through UpdateLeft in " + name_);
  }
  left_rows_[l] = std::move(row);
  return Status::OK();
}

Status FactorizedPair::UpdateRight(const IndexKey& key, Row row) {
  int64_t r = FindRight(key);
  if (r < 0) {
    return Status::NotFound("no right row with given key in " + name_);
  }
  if (row.size() != right_columns_.size()) {
    return Status::InvalidArgument("right row arity mismatch in " + name_);
  }
  if (!ValueVectorEq()(ExtractKey(row, right_key_), key)) {
    return Status::InvalidArgument(
        "key change not allowed through UpdateRight in " + name_);
  }
  right_rows_[r] = std::move(row);
  return Status::OK();
}

size_t FactorizedPair::ApproximateDataBytes() const {
  size_t total = 0;
  for (size_t i = 0; i < left_rows_.size(); ++i) {
    if (!left_live_[i]) continue;
    for (const Value& v : left_rows_[i]) total += ApproximateValueBytes(v);
    total += left_to_right_[i].size() * sizeof(uint32_t);
  }
  for (size_t i = 0; i < right_rows_.size(); ++i) {
    if (!right_live_[i]) continue;
    for (const Value& v : right_rows_[i]) total += ApproximateValueBytes(v);
    total += right_to_left_[i].size() * sizeof(uint32_t);
  }
  return total;
}

// ---- FactorizedJoinScan ------------------------------------------------------

FactorizedJoinScan::FactorizedJoinScan(const FactorizedPair* pair,
                                       bool left_outer)
    : pair_(pair), left_outer_(left_outer) {
  output_ = pair->left_columns();
  output_.insert(output_.end(), pair->right_columns().begin(),
                 pair->right_columns().end());
}

Status FactorizedJoinScan::OpenImpl() {
  left_index_ = 0;
  edge_index_ = 0;
  return Status::OK();
}

bool FactorizedJoinScan::NextImpl(Row* out) {
  while (left_index_ < pair_->left_rows_.size()) {
    if (!pair_->left_live_[left_index_]) {
      ++left_index_;
      edge_index_ = 0;
      continue;
    }
    const std::vector<uint32_t>& edges = pair_->left_to_right_[left_index_];
    if (edges.empty() && left_outer_ && edge_index_ == 0) {
      *out = pair_->left_rows_[left_index_];
      out->resize(out->size() + pair_->right_columns().size(), Value::Null());
      ++left_index_;
      edge_index_ = 0;
      return true;
    }
    if (edge_index_ < edges.size()) {
      const Row& left = pair_->left_rows_[left_index_];
      const Row& right = pair_->right_rows_[edges[edge_index_]];
      *out = left;
      out->insert(out->end(), right.begin(), right.end());
      ++edge_index_;
      return true;
    }
    ++left_index_;
    edge_index_ = 0;
  }
  return false;
}

// ---- FactorizedSideScan ------------------------------------------------------

FactorizedSideScan::FactorizedSideScan(const FactorizedPair* pair,
                                       bool left_side)
    : pair_(pair), left_side_(left_side) {
  output_ = left_side ? pair->left_columns() : pair->right_columns();
}

Status FactorizedSideScan::OpenImpl() {
  index_ = 0;
  return Status::OK();
}

bool FactorizedSideScan::NextImpl(Row* out) {
  const std::vector<Row>& rows =
      left_side_ ? pair_->left_rows_ : pair_->right_rows_;
  const std::vector<bool>& live =
      left_side_ ? pair_->left_live_ : pair_->right_live_;
  while (index_ < rows.size()) {
    size_t i = index_++;
    if (live[i]) {
      *out = rows[i];
      return true;
    }
  }
  return false;
}

// ---- FactorizedGroupAggregate ------------------------------------------------

FactorizedGroupAggregate::FactorizedGroupAggregate(
    const FactorizedPair* pair, std::vector<AggregateSpec> aggregates)
    : pair_(pair), aggregates_(std::move(aggregates)) {
  output_ = pair->left_columns();
  for (const AggregateSpec& spec : aggregates_) {
    output_.push_back(Column{spec.output_name, Type::Null(), true});
  }
}

Status FactorizedGroupAggregate::OpenImpl() {
  left_index_ = 0;
  return Status::OK();
}

bool FactorizedGroupAggregate::NextImpl(Row* out) {
  while (left_index_ < pair_->left_rows_.size()) {
    size_t l = left_index_++;
    if (!pair_->left_live_[l]) continue;
    std::vector<AggAccumulator> accumulators(aggregates_.size());
    for (uint32_t r : pair_->left_to_right_[l]) {
      const Row& right = pair_->right_rows_[r];
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        const AggregateSpec& spec = aggregates_[i];
        Value v = spec.input ? spec.input->Eval(right) : Value::Null();
        accumulators[i].Update(spec, v);
      }
    }
    *out = pair_->left_rows_[l];
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      out->push_back(accumulators[i].Finalize(aggregates_[i]));
    }
    return true;
  }
  return false;
}

}  // namespace erbium
