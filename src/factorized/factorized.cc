#include "factorized/factorized.h"

#include <algorithm>

#include "exec/snapshot.h"
#include "storage/table.h"

namespace erbium {

FactorizedPair::FactorizedPair(std::string name,
                               std::vector<Column> left_columns,
                               std::vector<int> left_key,
                               std::vector<Column> right_columns,
                               std::vector<int> right_key)
    : name_(std::move(name)),
      left_columns_(std::move(left_columns)),
      right_columns_(std::move(right_columns)),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)) {
  Publish();  // version 1: empty pair
}

IndexKey FactorizedPair::ExtractKey(const Row& row,
                                    const std::vector<int>& cols) const {
  IndexKey key;
  key.reserve(cols.size());
  for (int c : cols) key.push_back(row[c]);
  return key;
}

void FactorizedPair::Publish() {
  auto version = std::make_shared<PairVersion>();
  version->left = left_bank_.TakeSnapshot();
  version->right = right_bank_.TakeSnapshot();
  version->l2r = l2r_bank_.TakeSnapshot();
  version->r2l = r2l_bank_.TakeSnapshot();
  version->edge_count = edge_count_;
  std::lock_guard<std::mutex> lock(version_mu_);
  current_ = std::move(version);
}

void FactorizedPair::AddEdge(CowBank<std::vector<uint32_t>>* bank, size_t i,
                             uint32_t value) {
  auto list = std::make_shared<std::vector<uint32_t>>(*bank->Get(i));
  list->push_back(value);
  bank->Set(i, std::move(list));
}

void FactorizedPair::RemoveEdge(CowBank<std::vector<uint32_t>>* bank,
                                size_t i, uint32_t value) {
  auto list = std::make_shared<std::vector<uint32_t>>(*bank->Get(i));
  list->erase(std::find(list->begin(), list->end(), value));
  bank->Set(i, std::move(list));
}

const Row& FactorizedPair::left_row(size_t i) const {
  static const Row kDeadRow;
  const Row* r = left_bank_.Get(i);
  return r == nullptr ? kDeadRow : *r;
}

const Row& FactorizedPair::right_row(size_t i) const {
  static const Row kDeadRow;
  const Row* r = right_bank_.Get(i);
  return r == nullptr ? kDeadRow : *r;
}

Result<uint32_t> FactorizedPair::InsertLeft(Row row) {
  if (row.size() != left_columns_.size()) {
    return Status::InvalidArgument("left row arity mismatch in " + name_);
  }
  IndexKey key = ExtractKey(row, left_key_);
  if (left_index_.count(key) > 0) {
    return Status::ConstraintViolation("duplicate left key in " + name_);
  }
  uint32_t index = static_cast<uint32_t>(left_bank_.size());
  left_index_.emplace(std::move(key), index);
  left_bank_.Append(std::make_shared<const Row>(std::move(row)));
  l2r_bank_.Append(std::make_shared<std::vector<uint32_t>>());
  Publish();
  return index;
}

Result<uint32_t> FactorizedPair::InsertRight(Row row) {
  if (row.size() != right_columns_.size()) {
    return Status::InvalidArgument("right row arity mismatch in " + name_);
  }
  IndexKey key = ExtractKey(row, right_key_);
  if (right_index_.count(key) > 0) {
    return Status::ConstraintViolation("duplicate right key in " + name_);
  }
  uint32_t index = static_cast<uint32_t>(right_bank_.size());
  right_index_.emplace(std::move(key), index);
  right_bank_.Append(std::make_shared<const Row>(std::move(row)));
  r2l_bank_.Append(std::make_shared<std::vector<uint32_t>>());
  Publish();
  return index;
}

Status FactorizedPair::Connect(const IndexKey& left_key,
                               const IndexKey& right_key) {
  int64_t l = FindLeft(left_key);
  int64_t r = FindRight(right_key);
  if (l < 0 || r < 0) {
    return Status::NotFound("connect with unknown key in " + name_);
  }
  const std::vector<uint32_t>& edges = *l2r_bank_.Get(l);
  if (std::find(edges.begin(), edges.end(), static_cast<uint32_t>(r)) !=
      edges.end()) {
    return Status::AlreadyExists("edge already present in " + name_);
  }
  AddEdge(&l2r_bank_, l, static_cast<uint32_t>(r));
  AddEdge(&r2l_bank_, r, static_cast<uint32_t>(l));
  ++edge_count_;
  Publish();
  return Status::OK();
}

Status FactorizedPair::Disconnect(const IndexKey& left_key,
                                  const IndexKey& right_key) {
  int64_t l = FindLeft(left_key);
  int64_t r = FindRight(right_key);
  if (l < 0 || r < 0) {
    return Status::NotFound("disconnect with unknown key in " + name_);
  }
  const std::vector<uint32_t>& lr = *l2r_bank_.Get(l);
  if (std::find(lr.begin(), lr.end(), static_cast<uint32_t>(r)) == lr.end()) {
    return Status::NotFound("edge not present in " + name_);
  }
  RemoveEdge(&l2r_bank_, l, static_cast<uint32_t>(r));
  RemoveEdge(&r2l_bank_, r, static_cast<uint32_t>(l));
  --edge_count_;
  Publish();
  return Status::OK();
}

Status FactorizedPair::EraseLeft(const IndexKey& key) {
  int64_t l = FindLeft(key);
  if (l < 0) return Status::NotFound("no left row with given key in " + name_);
  for (uint32_t r : *l2r_bank_.Get(l)) {
    RemoveEdge(&r2l_bank_, r, static_cast<uint32_t>(l));
    --edge_count_;
  }
  l2r_bank_.Set(l, std::make_shared<std::vector<uint32_t>>());
  left_bank_.Set(l, nullptr);
  left_index_.erase(key);
  Publish();
  return Status::OK();
}

Status FactorizedPair::EraseRight(const IndexKey& key) {
  int64_t r = FindRight(key);
  if (r < 0) {
    return Status::NotFound("no right row with given key in " + name_);
  }
  for (uint32_t l : *r2l_bank_.Get(r)) {
    RemoveEdge(&l2r_bank_, l, static_cast<uint32_t>(r));
    --edge_count_;
  }
  r2l_bank_.Set(r, std::make_shared<std::vector<uint32_t>>());
  right_bank_.Set(r, nullptr);
  right_index_.erase(key);
  Publish();
  return Status::OK();
}

int64_t FactorizedPair::FindLeft(const IndexKey& key) const {
  auto it = left_index_.find(key);
  return it == left_index_.end() ? -1 : static_cast<int64_t>(it->second);
}

int64_t FactorizedPair::FindRight(const IndexKey& key) const {
  auto it = right_index_.find(key);
  return it == right_index_.end() ? -1 : static_cast<int64_t>(it->second);
}

Status FactorizedPair::UpdateLeft(const IndexKey& key, Row row) {
  int64_t l = FindLeft(key);
  if (l < 0) return Status::NotFound("no left row with given key in " + name_);
  if (row.size() != left_columns_.size()) {
    return Status::InvalidArgument("left row arity mismatch in " + name_);
  }
  if (!ValueVectorEq()(ExtractKey(row, left_key_), key)) {
    return Status::InvalidArgument(
        "key change not allowed through UpdateLeft in " + name_);
  }
  left_bank_.Set(l, std::make_shared<const Row>(std::move(row)));
  Publish();
  return Status::OK();
}

Status FactorizedPair::UpdateRight(const IndexKey& key, Row row) {
  int64_t r = FindRight(key);
  if (r < 0) {
    return Status::NotFound("no right row with given key in " + name_);
  }
  if (row.size() != right_columns_.size()) {
    return Status::InvalidArgument("right row arity mismatch in " + name_);
  }
  if (!ValueVectorEq()(ExtractKey(row, right_key_), key)) {
    return Status::InvalidArgument(
        "key change not allowed through UpdateRight in " + name_);
  }
  right_bank_.Set(r, std::make_shared<const Row>(std::move(row)));
  Publish();
  return Status::OK();
}

size_t FactorizedPair::ApproximateDataBytes() const {
  std::shared_ptr<const PairVersion> version = PinVersion();
  size_t total = 0;
  for (size_t i = 0; i < version->left_slots(); ++i) {
    const Row* row = version->left_row(i);
    if (row == nullptr) continue;
    for (const Value& v : *row) total += ApproximateValueBytes(v);
    total += version->right_neighbors(i)->size() * sizeof(uint32_t);
  }
  for (size_t i = 0; i < version->right_slots(); ++i) {
    const Row* row = version->right_row(i);
    if (row == nullptr) continue;
    for (const Value& v : *row) total += ApproximateValueBytes(v);
    total += version->left_neighbors(i)->size() * sizeof(uint32_t);
  }
  return total;
}

// ---- FactorizedJoinScan ------------------------------------------------------

FactorizedJoinScan::FactorizedJoinScan(const FactorizedPair* pair,
                                       bool left_outer)
    : pair_(pair), left_outer_(left_outer) {
  output_ = pair->left_columns();
  output_.insert(output_.end(), pair->right_columns().begin(),
                 pair->right_columns().end());
}

Status FactorizedJoinScan::OpenImpl() {
  version_ = exec::ResolveVersion(pair_, &owned_pin_);
  left_index_ = 0;
  edge_index_ = 0;
  return Status::OK();
}

bool FactorizedJoinScan::NextImpl(Row* out) {
  while (left_index_ < version_->left_slots()) {
    const Row* left = version_->left_row(left_index_);
    if (left == nullptr) {
      ++left_index_;
      edge_index_ = 0;
      continue;
    }
    const std::vector<uint32_t>& edges =
        *version_->right_neighbors(left_index_);
    if (edges.empty() && left_outer_ && edge_index_ == 0) {
      *out = *left;
      out->resize(out->size() + pair_->right_columns().size(), Value::Null());
      ++left_index_;
      edge_index_ = 0;
      return true;
    }
    if (edge_index_ < edges.size()) {
      const Row* right = version_->right_row(edges[edge_index_]);
      *out = *left;
      out->insert(out->end(), right->begin(), right->end());
      ++edge_index_;
      return true;
    }
    ++left_index_;
    edge_index_ = 0;
  }
  return false;
}

// ---- FactorizedSideScan ------------------------------------------------------

FactorizedSideScan::FactorizedSideScan(const FactorizedPair* pair,
                                       bool left_side)
    : pair_(pair), left_side_(left_side) {
  output_ = left_side ? pair->left_columns() : pair->right_columns();
}

Status FactorizedSideScan::OpenImpl() {
  version_ = exec::ResolveVersion(pair_, &owned_pin_);
  index_ = 0;
  return Status::OK();
}

bool FactorizedSideScan::NextImpl(Row* out) {
  const size_t bound =
      left_side_ ? version_->left_slots() : version_->right_slots();
  while (index_ < bound) {
    size_t i = index_++;
    const Row* row =
        left_side_ ? version_->left_row(i) : version_->right_row(i);
    if (row != nullptr) {
      *out = *row;
      return true;
    }
  }
  return false;
}

// ---- FactorizedGroupAggregate ------------------------------------------------

FactorizedGroupAggregate::FactorizedGroupAggregate(
    const FactorizedPair* pair, std::vector<AggregateSpec> aggregates)
    : pair_(pair), aggregates_(std::move(aggregates)) {
  output_ = pair->left_columns();
  for (const AggregateSpec& spec : aggregates_) {
    output_.push_back(Column{spec.output_name, Type::Null(), true});
  }
}

Status FactorizedGroupAggregate::OpenImpl() {
  version_ = exec::ResolveVersion(pair_, &owned_pin_);
  left_index_ = 0;
  return Status::OK();
}

bool FactorizedGroupAggregate::NextImpl(Row* out) {
  while (left_index_ < version_->left_slots()) {
    size_t l = left_index_++;
    const Row* left = version_->left_row(l);
    if (left == nullptr) continue;
    std::vector<AggAccumulator> accumulators(aggregates_.size());
    for (uint32_t r : *version_->right_neighbors(l)) {
      const Row* right = version_->right_row(r);
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        const AggregateSpec& spec = aggregates_[i];
        Value v = spec.input ? spec.input->Eval(*right) : Value::Null();
        accumulators[i].Update(spec, v);
      }
    }
    *out = *left;
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      out->push_back(accumulators[i].Finalize(aggregates_[i]));
    }
    return true;
  }
  return false;
}

}  // namespace erbium
