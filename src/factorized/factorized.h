#ifndef ERBIUM_FACTORIZED_FACTORIZED_H_
#define ERBIUM_FACTORIZED_FACTORIZED_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/aggregate.h"
#include "exec/operator.h"
#include "storage/schema.h"

namespace erbium {

/// Multi-relational compressed (factorized) representation of the join of
/// two relations (paper Section 4, third physical target family): each
/// side's rows are stored exactly once and connected by physical pointers
/// (adjacency lists), so
///   - the join can be enumerated by pointer chasing, with no hash table
///     built at query time;
///   - either side can be scanned without duplication (unlike a
///     materialized join view); and
///   - aggregates over one side grouped by the other can be pushed down
///     through the join without materializing it.
/// This also mirrors graph-database adjacency storage, which is the
/// unification argument the paper makes for this representation.
class FactorizedPair {
 public:
  /// `left`/`right` describe the stored row shapes. `left_key` / `right_key`
  /// are column positions of the (logical) keys used to connect rows.
  FactorizedPair(std::string name, std::vector<Column> left_columns,
                 std::vector<int> left_key, std::vector<Column> right_columns,
                 std::vector<int> right_key);

  const std::string& name() const { return name_; }
  const std::vector<Column>& left_columns() const { return left_columns_; }
  const std::vector<Column>& right_columns() const { return right_columns_; }
  size_t left_size() const { return left_rows_.size(); }
  size_t right_size() const { return right_rows_.size(); }
  size_t edge_count() const { return edge_count_; }

  const Row& left_row(size_t i) const { return left_rows_[i]; }
  const Row& right_row(size_t i) const { return right_rows_[i]; }
  bool left_live(size_t i) const { return left_live_[i]; }
  bool right_live(size_t i) const { return right_live_[i]; }
  const std::vector<uint32_t>& right_neighbors(size_t left_index) const {
    return left_to_right_[left_index];
  }
  const std::vector<uint32_t>& left_neighbors(size_t right_index) const {
    return right_to_left_[right_index];
  }

  /// Inserts a row on one side; duplicate keys are rejected (sides hold
  /// entities, which are keyed). Returns the side-local index.
  Result<uint32_t> InsertLeft(Row row);
  Result<uint32_t> InsertRight(Row row);

  /// Connects existing rows by key (the relationship instance).
  Status Connect(const IndexKey& left_key, const IndexKey& right_key);
  Status Disconnect(const IndexKey& left_key, const IndexKey& right_key);

  /// Removes a row and all its incident edges.
  Status EraseLeft(const IndexKey& key);
  Status EraseRight(const IndexKey& key);

  /// Side-local index by key; -1 when absent.
  int64_t FindLeft(const IndexKey& key) const;
  int64_t FindRight(const IndexKey& key) const;

  /// Update attributes of an existing row (key columns must be unchanged).
  Status UpdateLeft(const IndexKey& key, Row row);
  Status UpdateRight(const IndexKey& key, Row row);

  /// Approximate bytes (rows + adjacency), for storage comparisons
  /// against materialized join views.
  size_t ApproximateDataBytes() const;

 private:
  friend class FactorizedJoinScan;
  friend class FactorizedSideScan;
  friend class FactorizedGroupAggregate;

  IndexKey ExtractKey(const Row& row, const std::vector<int>& cols) const;

  std::string name_;
  std::vector<Column> left_columns_;
  std::vector<Column> right_columns_;
  std::vector<int> left_key_;
  std::vector<int> right_key_;

  std::vector<Row> left_rows_;
  std::vector<Row> right_rows_;
  std::vector<bool> left_live_;
  std::vector<bool> right_live_;
  std::vector<std::vector<uint32_t>> left_to_right_;
  std::vector<std::vector<uint32_t>> right_to_left_;
  size_t edge_count_ = 0;

  std::unordered_map<IndexKey, uint32_t, ValueVectorHash, ValueVectorEq>
      left_index_;
  std::unordered_map<IndexKey, uint32_t, ValueVectorHash, ValueVectorEq>
      right_index_;
};

/// Operator that enumerates the stored join by pointer chasing: output is
/// left columns ++ right columns. Inner semantics (unmatched rows are
/// skipped); `left_outer` pads instead.
class FactorizedJoinScan : public Operator {
 public:
  explicit FactorizedJoinScan(const FactorizedPair* pair,
                              bool left_outer = false);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override {
    return "FactorizedJoinScan(" + pair_->name() + ")";
  }

 private:
  const FactorizedPair* pair_;
  bool left_outer_;
  size_t left_index_ = 0;
  size_t edge_index_ = 0;
};

/// Scans one side of the factorized pair without duplication.
class FactorizedSideScan : public Operator {
 public:
  FactorizedSideScan(const FactorizedPair* pair, bool left_side);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override {
    return std::string("FactorizedSideScan(") + pair_->name() +
           (left_side_ ? ", left)" : ", right)");
  }

 private:
  const FactorizedPair* pair_;
  bool left_side_;
  size_t index_ = 0;
};

/// Pushed-down aggregate: for every left row, aggregates an expression
/// over its adjacent right rows (group-by-left without materializing the
/// join). Output: left columns ++ one column per aggregate. The aggregate
/// input expressions are evaluated against the *right* row only.
class FactorizedGroupAggregate : public Operator {
 public:
  FactorizedGroupAggregate(const FactorizedPair* pair,
                           std::vector<AggregateSpec> aggregates);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override {
    return "FactorizedGroupAggregate(" + pair_->name() + ")";
  }

 private:
  const FactorizedPair* pair_;
  std::vector<AggregateSpec> aggregates_;
  size_t left_index_ = 0;
};

}  // namespace erbium

#endif  // ERBIUM_FACTORIZED_FACTORIZED_H_
