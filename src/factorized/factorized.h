#ifndef ERBIUM_FACTORIZED_FACTORIZED_H_
#define ERBIUM_FACTORIZED_FACTORIZED_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/aggregate.h"
#include "exec/operator.h"
#include "storage/schema.h"
#include "storage/versioned_bank.h"

namespace erbium {

/// Immutable snapshot of a FactorizedPair: both sides' row banks, both
/// adjacency banks, and the edge count, all frozen at one publication
/// point. Same contract as TableVersion: safe to read from any thread
/// with no locking for as long as the shared_ptr is held.
struct PairVersion {
  CowBank<Row>::Snapshot left;
  CowBank<Row>::Snapshot right;
  CowBank<std::vector<uint32_t>>::Snapshot l2r;
  CowBank<std::vector<uint32_t>>::Snapshot r2l;
  size_t edge_count = 0;

  size_t left_slots() const { return left.bound; }
  size_t right_slots() const { return right.bound; }
  /// Row on the given side, or nullptr when the slot is dead.
  const Row* left_row(size_t i) const { return left.Get(i); }
  const Row* right_row(size_t i) const { return right.Get(i); }
  /// Adjacency of a slot; dead slots keep an (empty) list, so the
  /// pointer is non-null for every slot below the bound.
  const std::vector<uint32_t>* right_neighbors(size_t left_index) const {
    return l2r.Get(left_index);
  }
  const std::vector<uint32_t>* left_neighbors(size_t right_index) const {
    return r2l.Get(right_index);
  }
};

/// Multi-relational compressed (factorized) representation of the join of
/// two relations (paper Section 4, third physical target family): each
/// side's rows are stored exactly once and connected by physical pointers
/// (adjacency lists), so
///   - the join can be enumerated by pointer chasing, with no hash table
///     built at query time;
///   - either side can be scanned without duplication (unlike a
///     materialized join view); and
///   - aggregates over one side grouped by the other can be pushed down
///     through the join without materializing it.
/// This also mirrors graph-database adjacency storage, which is the
/// unification argument the paper makes for this representation.
///
/// Concurrency contract mirrors Table: one writer at a time (the owning
/// entity/relationship set's lock domain serializes mutators), any number
/// of readers through PinVersion(). The key→slot hash maps are
/// writer-only state — reader operators never touch them.
class FactorizedPair {
 public:
  using VersionType = PairVersion;
  /// `left`/`right` describe the stored row shapes. `left_key` / `right_key`
  /// are column positions of the (logical) keys used to connect rows.
  FactorizedPair(std::string name, std::vector<Column> left_columns,
                 std::vector<int> left_key, std::vector<Column> right_columns,
                 std::vector<int> right_key);

  const std::string& name() const { return name_; }
  const std::vector<Column>& left_columns() const { return left_columns_; }
  const std::vector<Column>& right_columns() const { return right_columns_; }
  size_t left_size() const { return left_bank_.size(); }
  size_t right_size() const { return right_bank_.size(); }
  size_t edge_count() const { return edge_count_; }

  /// The last published version. Readers pin once per statement (via
  /// exec::ReadSnapshot) and read it lock-free.
  std::shared_ptr<const PairVersion> PinVersion() const {
    std::lock_guard<std::mutex> lock(version_mu_);
    return current_;
  }

  /// Writer-context working-state accessors (callers hold the pair's
  /// lock domain). left_row/right_row on a dead slot returns an empty row.
  const Row& left_row(size_t i) const;
  const Row& right_row(size_t i) const;
  bool left_live(size_t i) const { return left_bank_.Get(i) != nullptr; }
  bool right_live(size_t i) const { return right_bank_.Get(i) != nullptr; }
  const std::vector<uint32_t>& right_neighbors(size_t left_index) const {
    return *l2r_bank_.Get(left_index);
  }
  const std::vector<uint32_t>& left_neighbors(size_t right_index) const {
    return *r2l_bank_.Get(right_index);
  }

  /// Inserts a row on one side; duplicate keys are rejected (sides hold
  /// entities, which are keyed). Returns the side-local index.
  Result<uint32_t> InsertLeft(Row row);
  Result<uint32_t> InsertRight(Row row);

  /// Connects existing rows by key (the relationship instance).
  Status Connect(const IndexKey& left_key, const IndexKey& right_key);
  Status Disconnect(const IndexKey& left_key, const IndexKey& right_key);

  /// Removes a row and all its incident edges.
  Status EraseLeft(const IndexKey& key);
  Status EraseRight(const IndexKey& key);

  /// Side-local index by key; -1 when absent.
  int64_t FindLeft(const IndexKey& key) const;
  int64_t FindRight(const IndexKey& key) const;

  /// Update attributes of an existing row (key columns must be unchanged).
  Status UpdateLeft(const IndexKey& key, Row row);
  Status UpdateRight(const IndexKey& key, Row row);

  /// Approximate bytes (rows + adjacency), for storage comparisons
  /// against materialized join views.
  size_t ApproximateDataBytes() const;

 private:
  IndexKey ExtractKey(const Row& row, const std::vector<int>& cols) const;

  /// Swaps in a fresh PairVersion reflecting the working state. Called at
  /// the end of every successful mutation, before the mutator returns.
  void Publish();

  /// Appends `value` to the adjacency list in `bank` slot `i` (COW).
  static void AddEdge(CowBank<std::vector<uint32_t>>* bank, size_t i,
                      uint32_t value);
  /// Removes one occurrence of `value` from the list in slot `i` (COW).
  static void RemoveEdge(CowBank<std::vector<uint32_t>>* bank, size_t i,
                         uint32_t value);

  std::string name_;
  std::vector<Column> left_columns_;
  std::vector<Column> right_columns_;
  std::vector<int> left_key_;
  std::vector<int> right_key_;

  /// Row banks: null slot = erased. Adjacency banks: one (possibly empty)
  /// list per slot, never null below the bound.
  CowBank<Row> left_bank_;
  CowBank<Row> right_bank_;
  CowBank<std::vector<uint32_t>> l2r_bank_;
  CowBank<std::vector<uint32_t>> r2l_bank_;
  size_t edge_count_ = 0;

  mutable std::mutex version_mu_;
  std::shared_ptr<const PairVersion> current_;

  std::unordered_map<IndexKey, uint32_t, ValueVectorHash, ValueVectorEq>
      left_index_;
  std::unordered_map<IndexKey, uint32_t, ValueVectorHash, ValueVectorEq>
      right_index_;
};

/// Operator that enumerates the stored join by pointer chasing: output is
/// left columns ++ right columns. Inner semantics (unmatched rows are
/// skipped); `left_outer` pads instead.
class FactorizedJoinScan : public Operator {
 public:
  explicit FactorizedJoinScan(const FactorizedPair* pair,
                              bool left_outer = false);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override {
    return "FactorizedJoinScan(" + pair_->name() + ")";
  }

 private:
  const FactorizedPair* pair_;
  const PairVersion* version_ = nullptr;
  std::shared_ptr<const PairVersion> owned_pin_;
  bool left_outer_;
  size_t left_index_ = 0;
  size_t edge_index_ = 0;
};

/// Scans one side of the factorized pair without duplication.
class FactorizedSideScan : public Operator {
 public:
  FactorizedSideScan(const FactorizedPair* pair, bool left_side);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override {
    return std::string("FactorizedSideScan(") + pair_->name() +
           (left_side_ ? ", left)" : ", right)");
  }

 private:
  const FactorizedPair* pair_;
  const PairVersion* version_ = nullptr;
  std::shared_ptr<const PairVersion> owned_pin_;
  bool left_side_;
  size_t index_ = 0;
};

/// Pushed-down aggregate: for every left row, aggregates an expression
/// over its adjacent right rows (group-by-left without materializing the
/// join). Output: left columns ++ one column per aggregate. The aggregate
/// input expressions are evaluated against the *right* row only.
class FactorizedGroupAggregate : public Operator {
 public:
  FactorizedGroupAggregate(const FactorizedPair* pair,
                           std::vector<AggregateSpec> aggregates);

  Status OpenImpl() override;
  bool NextImpl(Row* out) override;
  std::string name() const override {
    return "FactorizedGroupAggregate(" + pair_->name() + ")";
  }

 private:
  const FactorizedPair* pair_;
  const PairVersion* version_ = nullptr;
  std::shared_ptr<const PairVersion> owned_pin_;
  std::vector<AggregateSpec> aggregates_;
  size_t left_index_ = 0;
};

}  // namespace erbium

#endif  // ERBIUM_FACTORIZED_FACTORIZED_H_
