#ifndef ERBIUM_COMMON_UNION_FIND_H_
#define ERBIUM_COMMON_UNION_FIND_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace erbium {

/// Union-find over string names. Path-halving find; no ranks — the
/// schema graphs this partitions are tiny and each is built once.
/// Shared by the MVCC lock-domain builder (one writer mutex per
/// connected schema component) and the shard co-partitioner (one
/// routing component per connected schema component).
class UnionFind {
 public:
  /// Root of `name`'s component, registering the name on first touch.
  const std::string& Find(const std::string& name) {
    parent_.emplace(name, name);
    std::string current = name;
    while (parent_[current] != current) {
      parent_[current] = parent_[parent_[current]];
      current = parent_[current];
    }
    // Re-find the stable node: return a reference into the map.
    return parent_.find(current)->first;
  }

  void Unite(const std::string& a, const std::string& b) {
    std::string ra = Find(a);
    std::string rb = Find(b);
    if (ra != rb) parent_[ra] = rb;
  }

  /// Every registered name (insertion-order unspecified).
  std::vector<std::string> Names() const {
    std::vector<std::string> out;
    out.reserve(parent_.size());
    for (const auto& [name, unused] : parent_) out.push_back(name);
    return out;
  }

 private:
  std::unordered_map<std::string, std::string> parent_;
};

}  // namespace erbium

#endif  // ERBIUM_COMMON_UNION_FIND_H_
