#include "common/thread_pool.h"

#include <algorithm>

namespace erbium {

ThreadPool::ThreadPool(int num_threads) {
  EnsureWorkers(num_threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      queue_.push_back(std::move(packaged));
      work_cv_.notify_one();
      return future;
    }
  }
  // Submitted while (or after) the pool is shutting down: no worker is
  // guaranteed to drain the queue anymore, so run the task inline — the
  // future must still become ready or the caller deadlocks waiting on it.
  packaged();
  return future;
}

void ThreadPool::EnsureWorkers(int num_threads) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < std::max(num_threads, 1)) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

int ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  return pool;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace erbium
