#ifndef ERBIUM_COMMON_STATUS_H_
#define ERBIUM_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace erbium {

/// Error categories used across the library. Mirrors the coarse error
/// taxonomy of embedded database engines: the category tells the caller
/// whether the failure is a usage error (InvalidArgument), a schema/query
/// analysis error, a constraint violation, or an internal invariant breach.
///
/// The numeric values are part of the wire protocol (src/server): an
/// error travels to remote clients as its number, so values are stable —
/// never renumber or reuse one, only append. StatusCodeFromWire maps
/// numbers (including ones from a newer peer) back to a code.
enum class StatusCode : int32_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kConstraintViolation = 4,
  kParseError = 5,
  kAnalysisError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  kIOError = 9,
  kDeadlineExceeded = 10,
  kUnavailable = 11,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// The stable wire number of a code (the enum value).
constexpr int32_t StatusCodeToWire(StatusCode code) {
  return static_cast<int32_t>(code);
}

/// Inverse of StatusCodeToWire. A number this build does not know (a
/// newer peer, or garbage) decodes as kInternal rather than an invalid
/// enum value, so the error is still surfaced, just without its category.
StatusCode StatusCodeFromWire(int32_t wire);

/// A Status carries either success (OK) or an error code plus message.
/// This library does not throw exceptions across API boundaries; every
/// fallible operation returns Status or Result<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status AnalysisError(std::string msg) {
    return Status(StatusCode::kAnalysisError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status. Modeled after
/// arrow::Result; accessors on an error Result are programming errors and
/// abort in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error Status keeps call
  /// sites terse (`return value;` / `return Status::...;`).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus = Status::OK();
    if (ok()) return kOkStatus;
    return std::get<Status>(data_);
  }

  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status from an expression, RETURN_NOT_OK(expr).
#define ERBIUM_RETURN_NOT_OK(expr)                   \
  do {                                               \
    ::erbium::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// assigns the value to `lhs`.
#define ERBIUM_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()

#define ERBIUM_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define ERBIUM_ASSIGN_OR_RETURN_NAME(x, y) ERBIUM_ASSIGN_OR_RETURN_CONCAT(x, y)
#define ERBIUM_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  ERBIUM_ASSIGN_OR_RETURN_IMPL(                                              \
      ERBIUM_ASSIGN_OR_RETURN_NAME(_erbium_result_, __COUNTER__), lhs, rexpr)

}  // namespace erbium

#endif  // ERBIUM_COMMON_STATUS_H_
