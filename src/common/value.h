#ifndef ERBIUM_COMMON_VALUE_H_
#define ERBIUM_COMMON_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/type.h"

namespace erbium {

/// A runtime datum: null, bool, int64, float64, string, array of values,
/// or struct of named values. Arrays and structs are held behind shared
/// pointers so copying a Value is cheap regardless of nesting depth —
/// rows flow by value through the volcano executor.
class Value {
 public:
  using ArrayData = std::vector<Value>;
  using StructData = std::vector<std::pair<std::string, Value>>;

  /// Default-constructed Value is null.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Data(v)); }
  static Value Int64(int64_t v) { return Value(Data(v)); }
  static Value Float64(double v) { return Value(Data(v)); }
  static Value String(std::string v) {
    return Value(Data(std::make_shared<const std::string>(std::move(v))));
  }
  static Value Array(ArrayData elements) {
    return Value(Data(std::make_shared<const ArrayData>(std::move(elements))));
  }
  static Value Struct(StructData fields) {
    return Value(Data(std::make_shared<const StructData>(std::move(fields))));
  }

  TypeKind kind() const {
    return static_cast<TypeKind>(data_.index());
  }
  bool is_null() const { return kind() == TypeKind::kNull; }

  bool as_bool() const { return std::get<bool>(data_); }
  int64_t as_int64() const { return std::get<int64_t>(data_); }
  double as_float64() const { return std::get<double>(data_); }
  const std::string& as_string() const {
    return *std::get<std::shared_ptr<const std::string>>(data_);
  }
  const ArrayData& array() const {
    return *std::get<std::shared_ptr<const ArrayData>>(data_);
  }
  const StructData& struct_fields() const {
    return *std::get<std::shared_ptr<const StructData>>(data_);
  }

  /// Numeric coercion: int64 and float64 both convert; anything else is a
  /// programming error (call is_numeric-compatible kinds only).
  double AsFloat64() const {
    return kind() == TypeKind::kInt64 ? static_cast<double>(as_int64())
                                      : as_float64();
  }

  /// Struct field lookup by name; returns nullptr if absent or not a struct.
  const Value* FindField(const std::string& name) const;

  /// Total order over all values: nulls first, then by kind
  /// (bool < numeric < string < array < struct); int64/float64 compare
  /// numerically across kinds. Arrays/structs compare lexicographically.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== (numeric kinds hash by double value
  /// when integral-valued so that Int64(2) and Float64(2.0) collide).
  size_t Hash() const;

  /// Debug/display rendering: 'abc', [1, 2], {a: 1, b: 'x'}, null.
  std::string ToString() const;

 private:
  // Variant alternative order must match TypeKind enumerator order; kind()
  // relies on it.
  using Data = std::variant<std::monostate, bool, int64_t, double,
                            std::shared_ptr<const std::string>,
                            std::shared_ptr<const ArrayData>,
                            std::shared_ptr<const StructData>>;

  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

/// Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Hash/equality over composite keys (vectors of values).
struct ValueVectorHash {
  size_t operator()(const std::vector<Value>& values) const;
};
struct ValueVectorEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const;
};

/// A row is simply a vector of values; schemas live beside the data.
using Row = std::vector<Value>;

}  // namespace erbium

#endif  // ERBIUM_COMMON_VALUE_H_
