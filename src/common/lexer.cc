#include "common/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace erbium {

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, kw);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lexer::Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(input[i])) ++i;
      tokens.push_back(
          {TokenKind::kIdentifier, input.substr(start, i - start), 0, 0,
           start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        if (input[i] == '.') {
          // ".." would be malformed; a single dot makes it a float.
          if (is_float) break;
          // Don't treat "1.x" (field access on a number) as float unless a
          // digit follows.
          if (i + 1 >= n ||
              !std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
            break;
          }
          is_float = true;
        }
        ++i;
      }
      // Scientific notation: [eE][+-]?digits makes the literal a float.
      // Only consume the exponent when at least one digit follows, so
      // "2e" stays integer 2 + identifier e.
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t exp = i + 1;
        if (exp < n && (input[exp] == '+' || input[exp] == '-')) ++exp;
        if (exp < n && std::isdigit(static_cast<unsigned char>(input[exp]))) {
          i = exp;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
            ++i;
          }
          is_float = true;
        }
      }
      std::string text = input.substr(start, i - start);
      Token token;
      token.text = text;
      token.position = start;
      if (is_float) {
        token.kind = TokenKind::kFloat;
        try {
          token.float_value = std::stod(text);
        } catch (...) {
          return Status::ParseError("float literal out of range: " + text);
        }
      } else {
        token.kind = TokenKind::kInteger;
        try {
          token.int_value = std::stoll(text);
        } catch (...) {
          return Status::ParseError("integer literal out of range: " + text);
        }
      }
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      std::string contents;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote ''
            contents.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        contents.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back(
          {TokenKind::kString, std::move(contents), 0, 0, start});
      continue;
    }
    // Multi-char symbols first.
    auto try_symbol = [&](const char* sym) -> bool {
      size_t len = std::char_traits<char>::length(sym);
      if (input.compare(i, len, sym) == 0) {
        tokens.push_back({TokenKind::kSymbol, sym, 0, 0, start});
        i += len;
        return true;
      }
      return false;
    };
    if (try_symbol("!=") || try_symbol("<>") || try_symbol("<=") ||
        try_symbol(">=") || try_symbol("->")) {
      continue;
    }
    static const char kSingle[] = "(),;.*=<>+-/%[]{}:";
    if (std::char_traits<char>::find(kSingle, sizeof(kSingle) - 1, c) !=
        nullptr) {
      tokens.push_back({TokenKind::kSymbol, std::string(1, c), 0, 0, start});
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(start));
  }
  tokens.push_back({TokenKind::kEnd, "", 0, 0, n});
  return tokens;
}

const Token& TokenStream::Peek(size_t ahead) const {
  size_t idx = pos_ + ahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;  // kEnd sentinel
  return tokens_[idx];
}

const Token& TokenStream::Advance() {
  const Token& token = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

bool TokenStream::ConsumeKeyword(const char* kw) {
  if (Peek().IsKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

bool TokenStream::ConsumeSymbol(const char* s) {
  if (Peek().IsSymbol(s)) {
    Advance();
    return true;
  }
  return false;
}

Status TokenStream::ExpectKeyword(const char* kw) {
  if (ConsumeKeyword(kw)) return Status::OK();
  return ErrorHere(std::string("expected keyword '") + kw + "'");
}

Status TokenStream::ExpectSymbol(const char* s) {
  if (ConsumeSymbol(s)) return Status::OK();
  return ErrorHere(std::string("expected '") + s + "'");
}

Result<std::string> TokenStream::ExpectIdentifier(const char* what) {
  if (Peek().kind != TokenKind::kIdentifier) {
    return ErrorHere(std::string("expected ") + what);
  }
  return Advance().text;
}

Status TokenStream::ErrorHere(const std::string& message) const {
  const Token& token = Peek();
  std::string got = token.kind == TokenKind::kEnd
                        ? "end of input"
                        : "'" + token.text + "'";
  return Status::ParseError(message + ", got " + got + " (offset " +
                            std::to_string(token.position) + ")");
}

}  // namespace erbium
