#include "common/string_util.h"

#include <algorithm>
#include <cctype>

namespace erbium {

std::string ToLower(const std::string& s) {
  std::string out(s.size(), '\0');
  std::transform(s.begin(), s.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(Trim(s.substr(start)));
      break;
    }
    out.push_back(Trim(s.substr(start, pos - start)));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool GlobMatch(const std::string& pattern, const std::string& text) {
  // Iterative wildcard match with backtracking to the last '*'.
  size_t p = 0, t = 0;
  size_t star = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace erbium
