#ifndef ERBIUM_COMMON_THREAD_POOL_H_
#define ERBIUM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace erbium {

/// Fixed set of worker threads draining a FIFO task queue. Tasks must not
/// wait on other tasks submitted to the same pool — the pool does not grow
/// to break such cycles. The parallel executor obeys this by submitting
/// only leaf work and waiting from non-pool threads.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. The future becomes ready after the task returns;
  /// waiting on it is the only join primitive the executor needs. Once
  /// the pool is stopping, tasks run inline on the submitting thread
  /// instead of being queued (a queued-but-never-run task would leave
  /// its future forever pending).
  std::future<void> Submit(std::function<void()> task);

  /// Grows the pool to at least `num_threads` workers (never shrinks).
  /// Lets tests exercise worker counts above the machine's core count.
  void EnsureWorkers(int num_threads);

  int num_workers() const;

  /// Process-wide pool used by parallel query execution. Sized to the
  /// hardware concurrency at first use and grown on demand; intentionally
  /// never destroyed so plans draining at static-destruction time stay
  /// valid.
  static ThreadPool* Shared();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace erbium

#endif  // ERBIUM_COMMON_THREAD_POOL_H_
