#ifndef ERBIUM_COMMON_LEXER_H_
#define ERBIUM_COMMON_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace erbium {

enum class TokenKind {
  kIdentifier,  // bare word; keyword matching is case-insensitive by text
  kInteger,
  kFloat,
  kString,      // single-quoted literal, quotes stripped
  kSymbol,      // punctuation / operator, text holds the exact symbol
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;    // identifier/symbol text or string contents
  int64_t int_value = 0;
  double float_value = 0;
  size_t position = 0;  // byte offset, for error messages

  bool IsSymbol(const char* s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
  /// Case-insensitive keyword test (identifiers double as keywords).
  bool IsKeyword(const char* kw) const;
};

/// Tokenizes DDL and ERQL text. Symbols recognized:
///   ( ) , ; . * = != <> < <= > >= + - / % [ ] { } : ->
/// Comments: -- to end of line.
class Lexer {
 public:
  /// Tokenizes the whole input; returns ParseError with offset context on
  /// malformed input (unterminated string, bad number, stray character).
  static Result<std::vector<Token>> Tokenize(const std::string& input);
};

/// Cursor over a token stream with the usual recursive-descent helpers.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  /// If the next token is the given case-insensitive keyword, consumes it.
  bool ConsumeKeyword(const char* kw);
  /// If the next token is the given symbol, consumes it.
  bool ConsumeSymbol(const char* s);

  /// Consumes a required keyword/symbol or fails with a ParseError that
  /// names what was expected and what was found.
  Status ExpectKeyword(const char* kw);
  Status ExpectSymbol(const char* s);

  /// Consumes and returns an identifier token's text.
  Result<std::string> ExpectIdentifier(const char* what);

  /// Error mentioning the current token, e.g. "expected X, got 'Y'".
  Status ErrorHere(const std::string& message) const;

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace erbium

#endif  // ERBIUM_COMMON_LEXER_H_
