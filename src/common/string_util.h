#ifndef ERBIUM_COMMON_STRING_UTIL_H_
#define ERBIUM_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace erbium {

/// ASCII lower-casing (identifiers in DDL/ERQL are case-insensitive).
std::string ToLower(const std::string& s);

/// Strips leading/trailing whitespace.
std::string Trim(const std::string& s);

/// Splits on a single character, trimming each piece; empty pieces kept.
std::vector<std::string> Split(const std::string& s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Case-insensitive equality for identifiers/keywords.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Shell-style glob match: '*' matches any run (including empty), '?'
/// matches one character, everything else matches literally and
/// case-sensitively. Used by SHOW METRICS LIKE '<glob>'.
bool GlobMatch(const std::string& pattern, const std::string& text);

}  // namespace erbium

#endif  // ERBIUM_COMMON_STRING_UTIL_H_
