#include "common/value.h"

#include <cmath>
#include <functional>

namespace erbium {

namespace {

/// Rank used to order values of different kinds; numeric kinds share a
/// rank so they compare by value.
int KindRank(TypeKind kind) {
  switch (kind) {
    case TypeKind::kNull:
      return 0;
    case TypeKind::kBool:
      return 1;
    case TypeKind::kInt64:
    case TypeKind::kFloat64:
      return 2;
    case TypeKind::kString:
      return 3;
    case TypeKind::kArray:
      return 4;
    case TypeKind::kStruct:
      return 5;
  }
  return 6;
}

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

size_t CombineHash(size_t seed, size_t h) {
  // boost::hash_combine recipe.
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

const Value* Value::FindField(const std::string& name) const {
  if (kind() != TypeKind::kStruct) return nullptr;
  for (const auto& [field_name, value] : struct_fields()) {
    if (field_name == name) return &value;
  }
  return nullptr;
}

int Value::Compare(const Value& other) const {
  int rank = KindRank(kind());
  int other_rank = KindRank(other.kind());
  if (rank != other_rank) return rank < other_rank ? -1 : 1;

  switch (kind()) {
    case TypeKind::kNull:
      return 0;
    case TypeKind::kBool: {
      bool a = as_bool();
      bool b = other.as_bool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case TypeKind::kInt64:
    case TypeKind::kFloat64: {
      if (kind() == TypeKind::kInt64 && other.kind() == TypeKind::kInt64) {
        int64_t a = as_int64();
        int64_t b = other.as_int64();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      return CompareDoubles(AsFloat64(), other.AsFloat64());
    }
    case TypeKind::kString:
      return as_string().compare(other.as_string());
    case TypeKind::kArray: {
      const ArrayData& a = array();
      const ArrayData& b = other.array();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return a.size() == b.size() ? 0 : (a.size() < b.size() ? -1 : 1);
    }
    case TypeKind::kStruct: {
      const StructData& a = struct_fields();
      const StructData& b = other.struct_fields();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].first.compare(b[i].first);
        if (c != 0) return c;
        c = a[i].second.Compare(b[i].second);
        if (c != 0) return c;
      }
      return a.size() == b.size() ? 0 : (a.size() < b.size() ? -1 : 1);
    }
  }
  return 0;
}

size_t Value::Hash() const {
  switch (kind()) {
    case TypeKind::kNull:
      return 0x6e756c6cULL;
    case TypeKind::kBool:
      return as_bool() ? 0x74727565ULL : 0x66616c73ULL;
    case TypeKind::kInt64: {
      int64_t v = as_int64();
      // Hash integral values as doubles when exactly representable so
      // Int64(x) and Float64(x) collide, matching Compare().
      double d = static_cast<double>(v);
      if (static_cast<int64_t>(d) == v) {
        return std::hash<double>()(d);
      }
      return std::hash<int64_t>()(v);
    }
    case TypeKind::kFloat64:
      return std::hash<double>()(as_float64());
    case TypeKind::kString:
      return std::hash<std::string>()(as_string());
    case TypeKind::kArray: {
      size_t seed = 0x61727279ULL;
      for (const Value& v : array()) seed = CombineHash(seed, v.Hash());
      return seed;
    }
    case TypeKind::kStruct: {
      size_t seed = 0x73747263ULL;
      for (const auto& [name, v] : struct_fields()) {
        seed = CombineHash(seed, std::hash<std::string>()(name));
        seed = CombineHash(seed, v.Hash());
      }
      return seed;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind()) {
    case TypeKind::kNull:
      return "null";
    case TypeKind::kBool:
      return as_bool() ? "true" : "false";
    case TypeKind::kInt64:
      return std::to_string(as_int64());
    case TypeKind::kFloat64: {
      std::string s = std::to_string(as_float64());
      return s;
    }
    case TypeKind::kString:
      return "'" + as_string() + "'";
    case TypeKind::kArray: {
      std::string out = "[";
      const ArrayData& elements = array();
      for (size_t i = 0; i < elements.size(); ++i) {
        if (i > 0) out += ", ";
        out += elements[i].ToString();
      }
      out += "]";
      return out;
    }
    case TypeKind::kStruct: {
      std::string out = "{";
      const StructData& fields = struct_fields();
      for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out += ", ";
        out += fields[i].first + ": " + fields[i].second.ToString();
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

size_t ValueVectorHash::operator()(const std::vector<Value>& values) const {
  size_t seed = 0x726f7773ULL;
  for (const Value& v : values) seed = CombineHash(seed, v.Hash());
  return seed;
}

bool ValueVectorEq::operator()(const std::vector<Value>& a,
                               const std::vector<Value>& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace erbium
