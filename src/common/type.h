#ifndef ERBIUM_COMMON_TYPE_H_
#define ERBIUM_COMMON_TYPE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace erbium {

/// Physical/logical type kinds. Array and Struct nest recursively, which
/// is what lets a single type system describe 1NF columns, array columns
/// (multi-valued attributes), and composite values (composite attributes,
/// folded weak entities, and hierarchical query outputs).
enum class TypeKind {
  kNull = 0,
  kBool,
  kInt64,
  kFloat64,
  kString,
  kArray,   // element_type()
  kStruct,  // fields()
};

const char* TypeKindToString(TypeKind kind);

class Type;
using TypePtr = std::shared_ptr<const Type>;

/// A named field of a struct type.
struct Field {
  std::string name;
  TypePtr type;
};

/// Immutable type descriptor. Construct through the factory functions
/// (Type::Int64(), Type::Array(...), ...); scalar types are interned.
class Type {
 public:
  static TypePtr Null();
  static TypePtr Bool();
  static TypePtr Int64();
  static TypePtr Float64();
  static TypePtr String();
  static TypePtr Array(TypePtr element);
  static TypePtr Struct(std::vector<Field> fields);

  TypeKind kind() const { return kind_; }
  bool is_scalar() const {
    return kind_ != TypeKind::kArray && kind_ != TypeKind::kStruct;
  }
  bool is_numeric() const {
    return kind_ == TypeKind::kInt64 || kind_ == TypeKind::kFloat64;
  }

  /// For kArray: the element type. Null for other kinds.
  const TypePtr& element_type() const { return element_; }

  /// For kStruct: the ordered fields. Empty for other kinds.
  const std::vector<Field>& fields() const { return fields_; }

  /// For kStruct: index of a field by name, or -1.
  int FieldIndex(const std::string& name) const;

  /// Structural equality.
  bool Equals(const Type& other) const;

  /// "int64", "array<string>", "struct<a: int64, b: array<float64>>".
  std::string ToString() const;

  // Public only for std::make_shared inside the factories; use the static
  // factory functions instead of constructing directly.
  explicit Type(TypeKind kind) : kind_(kind) {}

 private:
  TypeKind kind_;
  TypePtr element_;
  std::vector<Field> fields_;
};

/// Structural equality on shared type pointers (either may be null).
bool TypeEquals(const TypePtr& a, const TypePtr& b);

/// Parses a type name as used by the DDL: "int", "int64", "float", "string",
/// "bool", "text", plus "array<...>" recursively.
Result<TypePtr> ParseTypeName(const std::string& name);

}  // namespace erbium

#endif  // ERBIUM_COMMON_TYPE_H_
