#include "common/status.h"

namespace erbium {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kAnalysisError:
      return "AnalysisError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

StatusCode StatusCodeFromWire(int32_t wire) {
  switch (wire) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kNotFound;
    case 3:
      return StatusCode::kAlreadyExists;
    case 4:
      return StatusCode::kConstraintViolation;
    case 5:
      return StatusCode::kParseError;
    case 6:
      return StatusCode::kAnalysisError;
    case 7:
      return StatusCode::kNotImplemented;
    case 8:
      return StatusCode::kInternal;
    case 9:
      return StatusCode::kIOError;
    case 10:
      return StatusCode::kDeadlineExceeded;
    case 11:
      return StatusCode::kUnavailable;
    default:
      return StatusCode::kInternal;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace erbium
