#include "common/status.h"

namespace erbium {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kAnalysisError:
      return "AnalysisError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace erbium
