#include "common/type.h"

#include <algorithm>
#include <cctype>

namespace erbium {

const char* TypeKindToString(TypeKind kind) {
  switch (kind) {
    case TypeKind::kNull:
      return "null";
    case TypeKind::kBool:
      return "bool";
    case TypeKind::kInt64:
      return "int64";
    case TypeKind::kFloat64:
      return "float64";
    case TypeKind::kString:
      return "string";
    case TypeKind::kArray:
      return "array";
    case TypeKind::kStruct:
      return "struct";
  }
  return "unknown";
}

namespace {

TypePtr MakeScalar(TypeKind kind) { return std::make_shared<Type>(kind); }

}  // namespace

TypePtr Type::Null() {
  static const TypePtr kType = MakeScalar(TypeKind::kNull);
  return kType;
}

TypePtr Type::Bool() {
  static const TypePtr kType = MakeScalar(TypeKind::kBool);
  return kType;
}

TypePtr Type::Int64() {
  static const TypePtr kType = MakeScalar(TypeKind::kInt64);
  return kType;
}

TypePtr Type::Float64() {
  static const TypePtr kType = MakeScalar(TypeKind::kFloat64);
  return kType;
}

TypePtr Type::String() {
  static const TypePtr kType = MakeScalar(TypeKind::kString);
  return kType;
}

TypePtr Type::Array(TypePtr element) {
  auto type = std::make_shared<Type>(TypeKind::kArray);
  type->element_ = std::move(element);
  return type;
}

TypePtr Type::Struct(std::vector<Field> fields) {
  auto type = std::make_shared<Type>(TypeKind::kStruct);
  type->fields_ = std::move(fields);
  return type;
}

int Type::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Type::Equals(const Type& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case TypeKind::kArray:
      return TypeEquals(element_, other.element_);
    case TypeKind::kStruct: {
      if (fields_.size() != other.fields_.size()) return false;
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].name != other.fields_[i].name) return false;
        if (!TypeEquals(fields_[i].type, other.fields_[i].type)) return false;
      }
      return true;
    }
    default:
      return true;
  }
}

std::string Type::ToString() const {
  switch (kind_) {
    case TypeKind::kArray:
      return "array<" + (element_ ? element_->ToString() : "?") + ">";
    case TypeKind::kStruct: {
      std::string out = "struct<";
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out += ", ";
        out += fields_[i].name + ": " +
               (fields_[i].type ? fields_[i].type->ToString() : "?");
      }
      out += ">";
      return out;
    }
    default:
      return TypeKindToString(kind_);
  }
}

bool TypeEquals(const TypePtr& a, const TypePtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  return a->Equals(*b);
}

Result<TypePtr> ParseTypeName(const std::string& name) {
  std::string lower(name.size(), '\0');
  std::transform(name.begin(), name.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  // Trim whitespace.
  size_t begin = lower.find_first_not_of(" \t");
  size_t end = lower.find_last_not_of(" \t");
  if (begin == std::string::npos) {
    return Status::ParseError("empty type name");
  }
  lower = lower.substr(begin, end - begin + 1);

  if (lower == "int" || lower == "int64" || lower == "bigint" ||
      lower == "integer") {
    return Type::Int64();
  }
  if (lower == "float" || lower == "float64" || lower == "double" ||
      lower == "real") {
    return Type::Float64();
  }
  if (lower == "string" || lower == "text" || lower == "varchar") {
    return Type::String();
  }
  if (lower == "bool" || lower == "boolean") {
    return Type::Bool();
  }
  if (lower.rfind("array<", 0) == 0 && lower.back() == '>') {
    std::string inner = lower.substr(6, lower.size() - 7);
    ERBIUM_ASSIGN_OR_RETURN(TypePtr element, ParseTypeName(inner));
    return Type::Array(std::move(element));
  }
  return Status::ParseError("unknown type name: " + name);
}

}  // namespace erbium
