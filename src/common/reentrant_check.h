#ifndef ERBIUM_COMMON_REENTRANT_CHECK_H_
#define ERBIUM_COMMON_REENTRANT_CHECK_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace erbium {

/// Debug-build detector for unsynchronized concurrent mutators.
///
/// MappedDatabase's CRUD choke points and DurableDatabase's DDL/remap/
/// checkpoint/WAL paths are single-writer by contract: callers (the
/// statement runner, the server's exclusive statement lock) must
/// serialize mutations. The contract used to be enforced only by
/// convention — two threads inserting concurrently would corrupt tables
/// silently. A WriterCheck::Scope at each choke point makes the misuse
/// fail loudly in debug builds (including the sanitizer CI builds)
/// instead: the second concurrent mutator aborts with a message naming
/// the object. Re-entrant mutation from the owning thread is fine
/// (entity-centric deletes recurse into owned weak entities).
///
/// Release (NDEBUG) builds compile the scope to nothing.
class WriterCheck {
 public:
  class Scope {
   public:
#ifndef NDEBUG
    Scope(WriterCheck* check, const char* what) : check_(check) {
      std::thread::id self = std::this_thread::get_id();
      std::thread::id none;
      if (check_->owner_.load(std::memory_order_acquire) == self) {
        ++check_->depth_;  // re-entrant call from the owning thread
        return;
      }
      if (!check_->owner_.compare_exchange_strong(
              none, self, std::memory_order_acq_rel)) {
        std::fprintf(stderr,
                     "FATAL: concurrent mutation of %s — callers must hold "
                     "the exclusive statement lock around writes\n",
                     what);
        std::abort();
      }
      check_->depth_ = 1;
    }
    ~Scope() {
      if (--check_->depth_ == 0) {
        check_->owner_.store(std::thread::id(), std::memory_order_release);
      }
    }
   private:
    WriterCheck* check_;
#else
    Scope(WriterCheck*, const char*) {}
#endif
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };

  WriterCheck() = default;
  WriterCheck(const WriterCheck&) = delete;
  WriterCheck& operator=(const WriterCheck&) = delete;

 private:
  friend class Scope;
  std::atomic<std::thread::id> owner_{};
  // Only touched by the thread that owns `owner_`, so a plain int is
  // race-free whenever the check itself passes.
  int depth_ = 0;
};

}  // namespace erbium

#endif  // ERBIUM_COMMON_REENTRANT_CHECK_H_
