#ifndef ERBIUM_ER_DDL_PARSER_H_
#define ERBIUM_ER_DDL_PARSER_H_

#include <string>

#include "common/status.h"
#include "er/er_schema.h"

namespace erbium {

/// Parser for the entity/relationship DDL (paper Figure 1(ii)). Grammar:
///
///   CREATE ENTITY <name> [EXTENDS <parent>] (
///       <attr> <type> [MULTIVALUED] [KEY] [NOT NULL] [PII]
///                     [DESCRIPTION '<text>'], ...
///   ) [SPECIALIZATION ( TOTAL|PARTIAL , DISJOINT|OVERLAPPING )]
///     [DESCRIPTION '<text>'] ;
///
///   CREATE WEAK ENTITY <name> OWNED BY <owner> (
///       <attr> <type> [MULTIVALUED] [PARTIAL KEY] ...,  ...
///   ) [DESCRIPTION '<text>'] ;
///
///   CREATE RELATIONSHIP <name>
///       BETWEEN <entity> [AS <role>] ( ONE|MANY [, TOTAL] )
///       AND     <entity> [AS <role>] ( ONE|MANY [, TOTAL] )
///       [WITH ( <attr> <type> ..., ... )]
///       [DESCRIPTION '<text>'] ;
///
///   <type> := INT | BIGINT | INTEGER | FLOAT | DOUBLE | REAL
///           | STRING | TEXT | VARCHAR | BOOL | BOOLEAN
///           | STRUCT ( <field> <type>, ... )          -- composite
///
/// MULTIVALUED marks the E/R multi-valued attribute variety; the declared
/// type is the element type. SPECIALIZATION on a subclass records the
/// total/disjoint annotation on its parent's specialization.
///
/// Statements are ';'-separated; '--' starts a line comment. Keywords are
/// case-insensitive.
class DdlParser {
 public:
  /// Parses and applies every statement in `ddl` to `schema`, then
  /// validates the resulting schema. On error the schema may contain a
  /// prefix of the statements (no rollback — mirror of the prototype's
  /// "DDL layer keeps the E/R graph up to date per statement").
  static Status Execute(const std::string& ddl, ERSchema* schema);
};

}  // namespace erbium

#endif  // ERBIUM_ER_DDL_PARSER_H_
