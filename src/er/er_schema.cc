#include "er/er_schema.h"

#include <set>

namespace erbium {

const AttributeDef* FindAttribute(const std::vector<AttributeDef>& attrs,
                                  const std::string& name) {
  for (const AttributeDef& attr : attrs) {
    if (attr.name == name) return &attr;
  }
  return nullptr;
}

Status ERSchema::AddEntitySet(EntitySetDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("entity set name must be non-empty");
  }
  if (entities_.count(def.name) > 0) {
    return Status::AlreadyExists("entity set " + def.name + " already exists");
  }
  if (relationships_.count(def.name) > 0) {
    return Status::AlreadyExists("name " + def.name +
                                 " already used by a relationship set");
  }
  if (def.weak && def.identifying_relationship.empty()) {
    def.identifying_relationship = def.owner + "_" + def.name;
  }
  entities_.emplace(def.name, std::move(def));
  return Status::OK();
}

Status ERSchema::AddRelationshipSet(RelationshipSetDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("relationship set name must be non-empty");
  }
  if (relationships_.count(def.name) > 0) {
    return Status::AlreadyExists("relationship set " + def.name +
                                 " already exists");
  }
  if (entities_.count(def.name) > 0) {
    return Status::AlreadyExists("name " + def.name +
                                 " already used by an entity set");
  }
  if (def.left.role.empty()) def.left.role = def.left.entity;
  if (def.right.role.empty()) def.right.role = def.right.entity;
  relationships_.emplace(def.name, std::move(def));
  return Status::OK();
}

Status ERSchema::DropEntitySet(const std::string& name) {
  auto it = entities_.find(name);
  if (it == entities_.end()) {
    return Status::NotFound("no entity set named " + name);
  }
  // Refuse dangling references.
  if (!DirectSubclasses(name).empty()) {
    return Status::InvalidArgument("entity set " + name +
                                   " still has subclasses");
  }
  if (!WeakEntitiesOwnedBy(name).empty()) {
    return Status::InvalidArgument("entity set " + name +
                                   " still owns weak entity sets");
  }
  for (const auto& [rel_name, rel] : relationships_) {
    if (rel.left.entity == name || rel.right.entity == name) {
      return Status::InvalidArgument("entity set " + name +
                                     " still participates in relationship " +
                                     rel_name);
    }
  }
  entities_.erase(it);
  return Status::OK();
}

Status ERSchema::DropRelationshipSet(const std::string& name) {
  if (relationships_.erase(name) == 0) {
    return Status::NotFound("no relationship set named " + name);
  }
  return Status::OK();
}

const EntitySetDef* ERSchema::FindEntitySet(const std::string& name) const {
  auto it = entities_.find(name);
  return it == entities_.end() ? nullptr : &it->second;
}

const RelationshipSetDef* ERSchema::FindRelationshipSet(
    const std::string& name) const {
  auto it = relationships_.find(name);
  return it == relationships_.end() ? nullptr : &it->second;
}

EntitySetDef* ERSchema::MutableEntitySet(const std::string& name) {
  auto it = entities_.find(name);
  return it == entities_.end() ? nullptr : &it->second;
}

RelationshipSetDef* ERSchema::MutableRelationshipSet(const std::string& name) {
  auto it = relationships_.find(name);
  return it == relationships_.end() ? nullptr : &it->second;
}

std::vector<std::string> ERSchema::EntitySetNames() const {
  std::vector<std::string> names;
  names.reserve(entities_.size());
  for (const auto& [name, def] : entities_) names.push_back(name);
  return names;
}

std::vector<std::string> ERSchema::RelationshipSetNames() const {
  std::vector<std::string> names;
  names.reserve(relationships_.size());
  for (const auto& [name, def] : relationships_) names.push_back(name);
  return names;
}

Result<std::string> ERSchema::HierarchyRoot(const std::string& name) const {
  const EntitySetDef* def = FindEntitySet(name);
  if (def == nullptr) return Status::NotFound("no entity set named " + name);
  std::set<std::string> seen;
  while (def->is_subclass()) {
    if (!seen.insert(def->name).second) {
      return Status::Internal("hierarchy cycle at " + def->name);
    }
    const EntitySetDef* parent = FindEntitySet(def->parent);
    if (parent == nullptr) {
      return Status::NotFound("missing parent " + def->parent + " of " +
                              def->name);
    }
    def = parent;
  }
  return def->name;
}

std::vector<std::string> ERSchema::DirectSubclasses(
    const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& [child_name, def] : entities_) {
    if (def.parent == name) out.push_back(child_name);
  }
  return out;
}

std::vector<std::string> ERSchema::AllDescendants(
    const std::string& name) const {
  std::vector<std::string> out;
  for (const std::string& child : DirectSubclasses(name)) {
    out.push_back(child);
    std::vector<std::string> below = AllDescendants(child);
    out.insert(out.end(), below.begin(), below.end());
  }
  return out;
}

std::vector<std::string> ERSchema::SelfAndDescendants(
    const std::string& name) const {
  std::vector<std::string> out{name};
  std::vector<std::string> below = AllDescendants(name);
  out.insert(out.end(), below.begin(), below.end());
  return out;
}

Result<std::vector<std::string>> ERSchema::AncestryChain(
    const std::string& name) const {
  std::vector<std::string> chain;
  const EntitySetDef* def = FindEntitySet(name);
  if (def == nullptr) return Status::NotFound("no entity set named " + name);
  std::set<std::string> seen;
  while (true) {
    if (!seen.insert(def->name).second) {
      return Status::Internal("hierarchy cycle at " + def->name);
    }
    chain.insert(chain.begin(), def->name);
    if (!def->is_subclass()) break;
    const EntitySetDef* parent = FindEntitySet(def->parent);
    if (parent == nullptr) {
      return Status::NotFound("missing parent " + def->parent + " of " +
                              def->name);
    }
    def = parent;
  }
  return chain;
}

bool ERSchema::IsSelfOrDescendant(const std::string& descendant,
                                  const std::string& ancestor) const {
  const EntitySetDef* def = FindEntitySet(descendant);
  std::set<std::string> seen;
  while (def != nullptr) {
    if (def->name == ancestor) return true;
    if (!def->is_subclass()) return false;
    if (!seen.insert(def->name).second) return false;
    def = FindEntitySet(def->parent);
  }
  return false;
}

Result<std::vector<AttributeDef>> ERSchema::AllAttributes(
    const std::string& name) const {
  ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> chain, AncestryChain(name));
  std::vector<AttributeDef> out;
  for (const std::string& set_name : chain) {
    const EntitySetDef* def = FindEntitySet(set_name);
    out.insert(out.end(), def->attributes.begin(), def->attributes.end());
  }
  return out;
}

Result<std::vector<std::string>> ERSchema::FullKey(
    const std::string& name) const {
  const EntitySetDef* def = FindEntitySet(name);
  if (def == nullptr) return Status::NotFound("no entity set named " + name);
  if (def->weak) {
    ERBIUM_ASSIGN_OR_RETURN(std::vector<std::string> owner_key,
                            FullKey(def->owner));
    owner_key.insert(owner_key.end(), def->partial_key.begin(),
                     def->partial_key.end());
    return owner_key;
  }
  ERBIUM_ASSIGN_OR_RETURN(std::string root, HierarchyRoot(name));
  const EntitySetDef* root_def = FindEntitySet(root);
  return root_def->key;
}

std::vector<std::string> ERSchema::RelationshipsOf(
    const std::string& entity) const {
  std::vector<std::string> out;
  for (const auto& [rel_name, rel] : relationships_) {
    if (IsSelfOrDescendant(entity, rel.left.entity) ||
        IsSelfOrDescendant(entity, rel.right.entity)) {
      out.push_back(rel_name);
    }
  }
  return out;
}

std::vector<std::string> ERSchema::WeakEntitiesOwnedBy(
    const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& [weak_name, def] : entities_) {
    if (def.weak && def.owner == name) out.push_back(weak_name);
  }
  return out;
}

Status ERSchema::Validate() const {
  for (const auto& [name, def] : entities_) {
    // Parent checks.
    if (def.is_subclass()) {
      if (FindEntitySet(def.parent) == nullptr) {
        return Status::AnalysisError("entity set " + name +
                                     " extends unknown entity set " +
                                     def.parent);
      }
      if (!def.key.empty()) {
        return Status::AnalysisError("subclass " + name +
                                     " must not declare its own key");
      }
      if (def.weak) {
        return Status::AnalysisError("entity set " + name +
                                     " cannot be both weak and a subclass");
      }
    }
    // Hierarchy acyclicity (also verifies the chain resolves).
    Result<std::vector<std::string>> chain = AncestryChain(name);
    if (!chain.ok()) return chain.status();
    // No attribute shadowing along the chain.
    {
      std::set<std::string> seen;
      for (const std::string& set_name : chain.value()) {
        for (const AttributeDef& attr : FindEntitySet(set_name)->attributes) {
          if (!seen.insert(attr.name).second) {
            return Status::AnalysisError("attribute " + attr.name +
                                         " redefined along hierarchy of " +
                                         name);
          }
        }
      }
    }
    if (def.weak) {
      const EntitySetDef* owner = FindEntitySet(def.owner);
      if (owner == nullptr) {
        return Status::AnalysisError("weak entity set " + name +
                                     " has unknown owner " + def.owner);
      }
      if (def.partial_key.empty()) {
        return Status::AnalysisError("weak entity set " + name +
                                     " must declare a partial key");
      }
      for (const std::string& key_attr : def.partial_key) {
        if (FindAttribute(def.attributes, key_attr) == nullptr) {
          return Status::AnalysisError("partial key attribute " + key_attr +
                                       " not found in weak entity set " +
                                       name);
        }
      }
    } else if (!def.is_subclass()) {
      if (def.key.empty()) {
        return Status::AnalysisError("strong entity set " + name +
                                     " must declare a key");
      }
      for (const std::string& key_attr : def.key) {
        const AttributeDef* attr = FindAttribute(def.attributes, key_attr);
        if (attr == nullptr) {
          return Status::AnalysisError("key attribute " + key_attr +
                                       " not found in entity set " + name);
        }
        if (attr->multi_valued) {
          return Status::AnalysisError("key attribute " + key_attr +
                                       " of " + name +
                                       " cannot be multi-valued");
        }
      }
    }
    for (const AttributeDef& attr : def.attributes) {
      if (attr.type == nullptr) {
        return Status::AnalysisError("attribute " + attr.name + " of " +
                                     name + " has no type");
      }
    }
  }
  for (const auto& [name, rel] : relationships_) {
    for (const Participant* p : {&rel.left, &rel.right}) {
      if (FindEntitySet(p->entity) == nullptr) {
        return Status::AnalysisError("relationship set " + name +
                                     " references unknown entity set " +
                                     p->entity);
      }
    }
    if (rel.left.role == rel.right.role) {
      return Status::AnalysisError("relationship set " + name +
                                   " needs distinct role names for its "
                                   "participants (self-relationship?)");
    }
  }
  return Status::OK();
}

std::string ERSchema::ToString() const {
  std::string out;
  for (const auto& [name, def] : entities_) {
    out += def.weak ? "weak entity " : "entity ";
    out += name;
    if (def.is_subclass()) out += " extends " + def.parent;
    if (def.weak) out += " owned by " + def.owner;
    out += " (";
    for (size_t i = 0; i < def.attributes.size(); ++i) {
      const AttributeDef& attr = def.attributes[i];
      if (i > 0) out += ", ";
      out += attr.name + ": " + attr.type->ToString();
      if (attr.multi_valued) out += " multivalued";
      if (attr.pii) out += " pii";
    }
    out += ")";
    if (!def.key.empty()) {
      out += " key(";
      for (size_t i = 0; i < def.key.size(); ++i) {
        if (i > 0) out += ", ";
        out += def.key[i];
      }
      out += ")";
    }
    if (!def.partial_key.empty()) {
      out += " partial key(";
      for (size_t i = 0; i < def.partial_key.size(); ++i) {
        if (i > 0) out += ", ";
        out += def.partial_key[i];
      }
      out += ")";
    }
    out += "\n";
  }
  for (const auto& [name, rel] : relationships_) {
    out += "relationship " + name + " between " + rel.left.entity + " (" +
           (rel.left.cardinality == Cardinality::kOne ? "one" : "many") +
           ") and " + rel.right.entity + " (" +
           (rel.right.cardinality == Cardinality::kOne ? "one" : "many") +
           ")";
    if (!rel.attributes.empty()) {
      out += " with (";
      for (size_t i = 0; i < rel.attributes.size(); ++i) {
        if (i > 0) out += ", ";
        out += rel.attributes[i].name;
      }
      out += ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace erbium
