#ifndef ERBIUM_ER_ER_SCHEMA_H_
#define ERBIUM_ER_ER_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/type.h"

namespace erbium {

/// An attribute of an entity set or relationship set. Covers the extended
/// E/R attribute varieties (paper Section 2):
///   - simple: scalar `type`
///   - composite: `type` is a struct (e.g. address(street, city, zip))
///   - multi-valued: `multi_valued` set; the declared `type` is the
///     element type (e.g. phones: string multivalued)
/// Attributes carry descriptive text and a PII tag used by the governance
/// API (paper Section 1.1 (2)).
struct AttributeDef {
  std::string name;
  TypePtr type;
  bool multi_valued = false;
  bool nullable = true;
  bool pii = false;
  std::string description;

  bool composite() const {
    return type != nullptr && type->kind() == TypeKind::kStruct;
  }
};

/// Total/partial and disjoint/overlapping annotations on a specialization
/// (stored on the superclass; applies to all its direct subclasses).
struct SpecializationConstraint {
  bool total = false;      // every superclass instance is in some subclass
  bool disjoint = false;   // subclasses are mutually exclusive
};

/// An entity set: strong, weak (owner + partial key), or a subclass
/// (parent set). Subclasses inherit all ancestor attributes and the
/// hierarchy root's key.
struct EntitySetDef {
  std::string name;
  std::vector<AttributeDef> attributes;  // own (non-inherited) attributes
  std::vector<std::string> key;          // own key attrs (strong roots only)

  // Specialization (ISA): empty parent means not a subclass.
  std::string parent;
  SpecializationConstraint specialization;  // meaningful on superclasses

  // Weak entity sets: identified by `owner`'s key plus `partial_key`.
  bool weak = false;
  std::string owner;                   // owning (identifying) entity set
  std::string identifying_relationship;  // auto-derived name if empty
  std::vector<std::string> partial_key;

  std::string description;

  bool is_subclass() const { return !parent.empty(); }
};

/// Cardinality annotation of one side of a relationship. `kOne` on a
/// participant means every instance of the *other* participant relates to
/// at most one instance of this participant (the "1" end of a 1:N edge).
enum class Cardinality { kOne, kMany };

struct Participant {
  std::string entity;       // entity set name
  std::string role;         // role name; defaults to entity name
  Cardinality cardinality = Cardinality::kMany;
  bool total = false;       // total participation constraint
};

/// A (binary) relationship set with optional descriptive attributes.
/// Identifying relationships of weak entity sets are represented
/// implicitly by EntitySetDef::owner, not as RelationshipSetDefs.
struct RelationshipSetDef {
  std::string name;
  Participant left;
  Participant right;
  std::vector<AttributeDef> attributes;
  std::string description;

  bool many_to_many() const {
    return left.cardinality == Cardinality::kMany &&
           right.cardinality == Cardinality::kMany;
  }
  bool one_to_one() const {
    return left.cardinality == Cardinality::kOne &&
           right.cardinality == Cardinality::kOne;
  }
  /// For 1:N relationships: the participant whose instances each relate
  /// to many of the other (the FK would live on this side's entity).
  const Participant& many_side() const {
    return left.cardinality == Cardinality::kMany ? left : right;
  }
  const Participant& one_side() const {
    return left.cardinality == Cardinality::kMany ? right : left;
  }
};

/// The logical schema: entity sets + relationship sets, with the
/// derivation helpers the mapping and query layers rely on (hierarchy
/// walks, inherited attributes, full keys of weak entities).
class ERSchema {
 public:
  ERSchema() = default;

  Status AddEntitySet(EntitySetDef def);
  Status AddRelationshipSet(RelationshipSetDef def);
  Status DropEntitySet(const std::string& name);
  Status DropRelationshipSet(const std::string& name);

  const EntitySetDef* FindEntitySet(const std::string& name) const;
  const RelationshipSetDef* FindRelationshipSet(const std::string& name) const;
  EntitySetDef* MutableEntitySet(const std::string& name);
  RelationshipSetDef* MutableRelationshipSet(const std::string& name);

  std::vector<std::string> EntitySetNames() const;
  std::vector<std::string> RelationshipSetNames() const;

  /// Root of the ISA hierarchy containing `name` (itself if not a
  /// subclass).
  Result<std::string> HierarchyRoot(const std::string& name) const;

  /// Direct subclasses of an entity set.
  std::vector<std::string> DirectSubclasses(const std::string& name) const;

  /// All descendants (not including `name` itself), pre-order.
  std::vector<std::string> AllDescendants(const std::string& name) const;

  /// `name` plus all descendants, pre-order.
  std::vector<std::string> SelfAndDescendants(const std::string& name) const;

  /// Chain from the hierarchy root down to `name`, inclusive.
  Result<std::vector<std::string>> AncestryChain(const std::string& name) const;

  /// True if `descendant` is `ancestor` or below it in the hierarchy.
  bool IsSelfOrDescendant(const std::string& descendant,
                          const std::string& ancestor) const;

  /// All attributes visible on an entity set: inherited (root first) then
  /// own. For weak entity sets this does NOT include the owner's key.
  Result<std::vector<AttributeDef>> AllAttributes(
      const std::string& name) const;

  /// The identifying key attribute names of an entity set:
  ///   strong root: its declared key;
  ///   subclass: the hierarchy root's key;
  ///   weak: owner's key (recursively expanded) followed by partial key.
  Result<std::vector<std::string>> FullKey(const std::string& name) const;

  /// Relationship sets in which the entity (or any of its ancestors,
  /// since a subclass participates wherever its superclass does) appears.
  std::vector<std::string> RelationshipsOf(const std::string& entity) const;

  /// Weak entity sets owned (directly) by the given entity set.
  std::vector<std::string> WeakEntitiesOwnedBy(const std::string& name) const;

  /// Structural validation: referenced sets exist, keys exist, no
  /// attribute shadowing across the hierarchy, no hierarchy cycles, weak
  /// entities have owners and partial keys, relationship participants
  /// exist.
  Status Validate() const;

  /// Human-readable dump of the whole schema (round-trippable DDL-like).
  std::string ToString() const;

 private:
  std::map<std::string, EntitySetDef> entities_;
  std::map<std::string, RelationshipSetDef> relationships_;
};

/// Finds an attribute by name in a list; nullptr when absent.
const AttributeDef* FindAttribute(const std::vector<AttributeDef>& attrs,
                                  const std::string& name);

}  // namespace erbium

#endif  // ERBIUM_ER_ER_SCHEMA_H_
