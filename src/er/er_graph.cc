#include "er/er_graph.h"

namespace erbium {

int ERGraph::AddNode(ERNodeKind kind, const std::string& name,
                     const std::string& owner) {
  int id = static_cast<int>(nodes_.size());
  std::string qualified = owner.empty() ? name : owner + "." + name;
  nodes_.push_back(ERNode{id, kind, qualified, owner});
  adjacency_.emplace_back();
  by_name_[qualified] = id;
  return id;
}

void ERGraph::AddEdge(int from, int to, EREdgeKind kind) {
  edges_.push_back(EREdge{from, to, kind});
  adjacency_[from].push_back(to);
  adjacency_[to].push_back(from);
}

Result<ERGraph> ERGraph::Build(const ERSchema& schema) {
  ERBIUM_RETURN_NOT_OK(schema.Validate());
  ERGraph graph;
  // Entity nodes + their attribute nodes.
  for (const std::string& name : schema.EntitySetNames()) {
    const EntitySetDef* def = schema.FindEntitySet(name);
    int entity_id = graph.AddNode(ERNodeKind::kEntity, name, "");
    for (const AttributeDef& attr : def->attributes) {
      int attr_id = graph.AddNode(ERNodeKind::kAttribute, attr.name, name);
      graph.AddEdge(entity_id, attr_id, EREdgeKind::kHasAttribute);
    }
  }
  // ISA and identifying edges (entity nodes all exist now).
  for (const std::string& name : schema.EntitySetNames()) {
    const EntitySetDef* def = schema.FindEntitySet(name);
    int entity_id = graph.FindNode(name);
    if (def->is_subclass()) {
      graph.AddEdge(entity_id, graph.FindNode(def->parent), EREdgeKind::kIsA);
    }
    if (def->weak) {
      graph.AddEdge(entity_id, graph.FindNode(def->owner),
                    EREdgeKind::kIdentifies);
    }
  }
  // Relationship nodes, their attributes, and participation edges.
  for (const std::string& name : schema.RelationshipSetNames()) {
    const RelationshipSetDef* rel = schema.FindRelationshipSet(name);
    int rel_id = graph.AddNode(ERNodeKind::kRelationship, name, "");
    graph.AddEdge(rel_id, graph.FindNode(rel->left.entity),
                  EREdgeKind::kParticipates);
    graph.AddEdge(rel_id, graph.FindNode(rel->right.entity),
                  EREdgeKind::kParticipates);
    for (const AttributeDef& attr : rel->attributes) {
      int attr_id = graph.AddNode(ERNodeKind::kAttribute, attr.name, name);
      graph.AddEdge(rel_id, attr_id, EREdgeKind::kHasAttribute);
    }
  }
  return graph;
}

int ERGraph::FindNode(const std::string& qualified_name) const {
  auto it = by_name_.find(qualified_name);
  return it == by_name_.end() ? -1 : it->second;
}

const std::vector<int>& ERGraph::Neighbors(int node_id) const {
  return adjacency_[node_id];
}

bool ERGraph::IsConnected(const std::set<int>& node_ids) const {
  if (node_ids.empty()) return false;
  std::set<int> visited;
  std::vector<int> stack{*node_ids.begin()};
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    if (!visited.insert(node).second) continue;
    for (int neighbor : adjacency_[node]) {
      if (node_ids.count(neighbor) > 0 && visited.count(neighbor) == 0) {
        stack.push_back(neighbor);
      }
    }
  }
  return visited.size() == node_ids.size();
}

std::set<int> ERGraph::AllNodeIds() const {
  std::set<int> out;
  for (const ERNode& node : nodes_) out.insert(node.id);
  return out;
}

std::string ERGraph::ToDot() const {
  std::string out = "graph er {\n";
  for (const ERNode& node : nodes_) {
    const char* shape = "ellipse";
    if (node.kind == ERNodeKind::kEntity) shape = "box";
    if (node.kind == ERNodeKind::kRelationship) shape = "diamond";
    out += "  n" + std::to_string(node.id) + " [label=\"" + node.name +
           "\", shape=" + shape + "];\n";
  }
  for (const EREdge& edge : edges_) {
    out += "  n" + std::to_string(edge.from) + " -- n" +
           std::to_string(edge.to);
    if (edge.kind == EREdgeKind::kIsA) out += " [label=\"isa\"]";
    if (edge.kind == EREdgeKind::kIdentifies) out += " [label=\"owns\"]";
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace erbium
