#ifndef ERBIUM_ER_ER_GRAPH_H_
#define ERBIUM_ER_ER_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "er/er_schema.h"

namespace erbium {

/// Node kinds in the E/R graph of paper Figure 2: every entity set,
/// relationship set, and attribute is a node.
enum class ERNodeKind { kEntity, kRelationship, kAttribute };

enum class EREdgeKind {
  kHasAttribute,   // entity/relationship -> attribute
  kParticipates,   // relationship -> entity (both sides)
  kIsA,            // subclass -> superclass
  kIdentifies,     // weak entity -> owner
};

struct ERNode {
  int id;
  ERNodeKind kind;
  /// Entity/relationship name, or "owner.attr" for attribute nodes.
  std::string name;
  /// For attribute nodes: the owning entity/relationship set.
  std::string owner;
};

struct EREdge {
  int from;
  int to;
  EREdgeKind kind;
};

/// The E/R diagram viewed as a graph (paper Section 4, Figure 2). A
/// logical-to-physical mapping is a cover of this graph by connected
/// subgraphs; this class provides construction from an ERSchema plus the
/// connectivity/coverage queries that cover validation needs.
class ERGraph {
 public:
  /// Builds the graph for a (validated) schema.
  static Result<ERGraph> Build(const ERSchema& schema);

  const std::vector<ERNode>& nodes() const { return nodes_; }
  const std::vector<EREdge>& edges() const { return edges_; }

  /// Node id by qualified name: entity/relationship name, or
  /// "<set>.<attribute>". Returns -1 when absent.
  int FindNode(const std::string& qualified_name) const;

  /// Neighbors of a node (undirected view).
  const std::vector<int>& Neighbors(int node_id) const;

  /// True if the node set induces a connected subgraph (singleton sets are
  /// connected; the empty set is not).
  bool IsConnected(const std::set<int>& node_ids) const;

  /// All node ids, for coverage checks.
  std::set<int> AllNodeIds() const;

  /// Graphviz rendering for documentation/examples.
  std::string ToDot() const;

 private:
  int AddNode(ERNodeKind kind, const std::string& name,
              const std::string& owner);
  void AddEdge(int from, int to, EREdgeKind kind);

  std::vector<ERNode> nodes_;
  std::vector<EREdge> edges_;
  std::vector<std::vector<int>> adjacency_;
  std::map<std::string, int> by_name_;
};

}  // namespace erbium

#endif  // ERBIUM_ER_ER_GRAPH_H_
