#include "er/ddl_parser.h"

#include "common/lexer.h"
#include "common/string_util.h"

namespace erbium {

namespace {

/// Parses a type: scalar name or STRUCT(field type, ...).
Result<TypePtr> ParseType(TokenStream* ts) {
  if (ts->ConsumeKeyword("struct")) {
    ERBIUM_RETURN_NOT_OK(ts->ExpectSymbol("("));
    std::vector<Field> fields;
    while (true) {
      ERBIUM_ASSIGN_OR_RETURN(std::string field_name,
                              ts->ExpectIdentifier("struct field name"));
      ERBIUM_ASSIGN_OR_RETURN(TypePtr field_type, ParseType(ts));
      fields.push_back(Field{std::move(field_name), std::move(field_type)});
      if (ts->ConsumeSymbol(",")) continue;
      ERBIUM_RETURN_NOT_OK(ts->ExpectSymbol(")"));
      break;
    }
    return Type::Struct(std::move(fields));
  }
  ERBIUM_ASSIGN_OR_RETURN(std::string name, ts->ExpectIdentifier("type name"));
  return ParseTypeName(name);
}

struct ParsedAttribute {
  AttributeDef def;
  bool key = false;
  bool partial_key = false;
};

/// Parses one attribute declaration:
///   name type [MULTIVALUED] [KEY | PARTIAL KEY] [NOT NULL] [PII]
///   [DESCRIPTION '<text>']
Result<ParsedAttribute> ParseAttribute(TokenStream* ts) {
  ParsedAttribute out;
  ERBIUM_ASSIGN_OR_RETURN(out.def.name,
                          ts->ExpectIdentifier("attribute name"));
  ERBIUM_ASSIGN_OR_RETURN(out.def.type, ParseType(ts));
  while (true) {
    if (ts->ConsumeKeyword("multivalued")) {
      out.def.multi_valued = true;
      continue;
    }
    if (ts->ConsumeKeyword("key")) {
      out.key = true;
      out.def.nullable = false;
      continue;
    }
    if (ts->ConsumeKeyword("partial")) {
      ERBIUM_RETURN_NOT_OK(ts->ExpectKeyword("key"));
      out.partial_key = true;
      out.def.nullable = false;
      continue;
    }
    if (ts->ConsumeKeyword("not")) {
      ERBIUM_RETURN_NOT_OK(ts->ExpectKeyword("null"));
      out.def.nullable = false;
      continue;
    }
    if (ts->ConsumeKeyword("pii")) {
      out.def.pii = true;
      continue;
    }
    if (ts->ConsumeKeyword("description")) {
      if (ts->Peek().kind != TokenKind::kString) {
        return ts->ErrorHere("expected string literal after DESCRIPTION");
      }
      out.def.description = ts->Advance().text;
      continue;
    }
    break;
  }
  return out;
}

/// Parses "( attr decls )" into an entity/relationship attribute list.
Status ParseAttributeList(TokenStream* ts, std::vector<AttributeDef>* attrs,
                          std::vector<std::string>* keys,
                          std::vector<std::string>* partial_keys) {
  ERBIUM_RETURN_NOT_OK(ts->ExpectSymbol("("));
  while (true) {
    ERBIUM_ASSIGN_OR_RETURN(ParsedAttribute attr, ParseAttribute(ts));
    if (attr.key) {
      if (keys == nullptr) {
        return Status::ParseError("KEY not allowed here (attribute " +
                                  attr.def.name + ")");
      }
      keys->push_back(attr.def.name);
    }
    if (attr.partial_key) {
      if (partial_keys == nullptr) {
        return Status::ParseError("PARTIAL KEY not allowed here (attribute " +
                                  attr.def.name + ")");
      }
      partial_keys->push_back(attr.def.name);
    }
    attrs->push_back(std::move(attr.def));
    if (ts->ConsumeSymbol(",")) continue;
    ERBIUM_RETURN_NOT_OK(ts->ExpectSymbol(")"));
    break;
  }
  return Status::OK();
}

Status ParseCreateEntity(TokenStream* ts, bool weak, ERSchema* schema) {
  EntitySetDef def;
  def.weak = weak;
  ERBIUM_ASSIGN_OR_RETURN(def.name, ts->ExpectIdentifier("entity set name"));
  if (ts->ConsumeKeyword("extends")) {
    ERBIUM_ASSIGN_OR_RETURN(def.parent,
                            ts->ExpectIdentifier("parent entity set name"));
  }
  if (weak) {
    ERBIUM_RETURN_NOT_OK(ts->ExpectKeyword("owned"));
    ERBIUM_RETURN_NOT_OK(ts->ExpectKeyword("by"));
    ERBIUM_ASSIGN_OR_RETURN(def.owner,
                            ts->ExpectIdentifier("owner entity set name"));
  }
  ERBIUM_RETURN_NOT_OK(ParseAttributeList(ts, &def.attributes, &def.key,
                                          &def.partial_key));
  SpecializationConstraint spec;
  bool has_spec = false;
  while (true) {
    if (ts->ConsumeKeyword("specialization")) {
      has_spec = true;
      ERBIUM_RETURN_NOT_OK(ts->ExpectSymbol("("));
      while (true) {
        if (ts->ConsumeKeyword("total")) {
          spec.total = true;
        } else if (ts->ConsumeKeyword("partial")) {
          spec.total = false;
        } else if (ts->ConsumeKeyword("disjoint")) {
          spec.disjoint = true;
        } else if (ts->ConsumeKeyword("overlapping")) {
          spec.disjoint = false;
        } else {
          return ts->ErrorHere(
              "expected TOTAL, PARTIAL, DISJOINT, or OVERLAPPING");
        }
        if (ts->ConsumeSymbol(",")) continue;
        ERBIUM_RETURN_NOT_OK(ts->ExpectSymbol(")"));
        break;
      }
      continue;
    }
    if (ts->ConsumeKeyword("description")) {
      if (ts->Peek().kind != TokenKind::kString) {
        return ts->ErrorHere("expected string literal after DESCRIPTION");
      }
      def.description = ts->Advance().text;
      continue;
    }
    break;
  }
  std::string parent = def.parent;
  ERBIUM_RETURN_NOT_OK(schema->AddEntitySet(std::move(def)));
  if (has_spec) {
    EntitySetDef* target =
        parent.empty() ? nullptr : schema->MutableEntitySet(parent);
    if (target == nullptr) {
      return Status::ParseError(
          "SPECIALIZATION clause requires EXTENDS (it annotates the parent)");
    }
    target->specialization = spec;
  }
  return Status::OK();
}

Result<Participant> ParseParticipant(TokenStream* ts) {
  Participant p;
  ERBIUM_ASSIGN_OR_RETURN(p.entity, ts->ExpectIdentifier("entity set name"));
  if (ts->ConsumeKeyword("as")) {
    ERBIUM_ASSIGN_OR_RETURN(p.role, ts->ExpectIdentifier("role name"));
  }
  ERBIUM_RETURN_NOT_OK(ts->ExpectSymbol("("));
  if (ts->ConsumeKeyword("one")) {
    p.cardinality = Cardinality::kOne;
  } else if (ts->ConsumeKeyword("many")) {
    p.cardinality = Cardinality::kMany;
  } else {
    return ts->ErrorHere("expected ONE or MANY");
  }
  if (ts->ConsumeSymbol(",")) {
    ERBIUM_RETURN_NOT_OK(ts->ExpectKeyword("total"));
    p.total = true;
  }
  ERBIUM_RETURN_NOT_OK(ts->ExpectSymbol(")"));
  return p;
}

Status ParseCreateRelationship(TokenStream* ts, ERSchema* schema) {
  RelationshipSetDef def;
  ERBIUM_ASSIGN_OR_RETURN(def.name,
                          ts->ExpectIdentifier("relationship set name"));
  ERBIUM_RETURN_NOT_OK(ts->ExpectKeyword("between"));
  ERBIUM_ASSIGN_OR_RETURN(def.left, ParseParticipant(ts));
  ERBIUM_RETURN_NOT_OK(ts->ExpectKeyword("and"));
  ERBIUM_ASSIGN_OR_RETURN(def.right, ParseParticipant(ts));
  if (ts->ConsumeKeyword("with")) {
    ERBIUM_RETURN_NOT_OK(
        ParseAttributeList(ts, &def.attributes, nullptr, nullptr));
  }
  if (ts->ConsumeKeyword("description")) {
    if (ts->Peek().kind != TokenKind::kString) {
      return ts->ErrorHere("expected string literal after DESCRIPTION");
    }
    def.description = ts->Advance().text;
  }
  return schema->AddRelationshipSet(std::move(def));
}

Status ParseStatement(TokenStream* ts, ERSchema* schema) {
  ERBIUM_RETURN_NOT_OK(ts->ExpectKeyword("create"));
  if (ts->ConsumeKeyword("entity")) {
    return ParseCreateEntity(ts, /*weak=*/false, schema);
  }
  if (ts->ConsumeKeyword("weak")) {
    ERBIUM_RETURN_NOT_OK(ts->ExpectKeyword("entity"));
    return ParseCreateEntity(ts, /*weak=*/true, schema);
  }
  if (ts->ConsumeKeyword("relationship")) {
    return ParseCreateRelationship(ts, schema);
  }
  return ts->ErrorHere("expected ENTITY, WEAK ENTITY, or RELATIONSHIP");
}

}  // namespace

Status DdlParser::Execute(const std::string& ddl, ERSchema* schema) {
  ERBIUM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lexer::Tokenize(ddl));
  TokenStream ts(std::move(tokens));
  while (!ts.AtEnd()) {
    if (ts.ConsumeSymbol(";")) continue;  // empty statement
    ERBIUM_RETURN_NOT_OK(ParseStatement(&ts, schema));
    if (!ts.AtEnd()) {
      ERBIUM_RETURN_NOT_OK(ts.ExpectSymbol(";"));
    }
  }
  return schema->Validate();
}

}  // namespace erbium
