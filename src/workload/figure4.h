#ifndef ERBIUM_WORKLOAD_FIGURE4_H_
#define ERBIUM_WORKLOAD_FIGURE4_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "er/er_schema.h"
#include "mapping/database.h"
#include "mapping/mapping_spec.h"

namespace erbium {

/// The synthetic E/R schema of paper Figure 4: 8 entity sets including a
/// 5-member type hierarchy (R with subclasses R1, R2; R1 with subclasses
/// R3, R4) and two weak entity sets (S1, S2 owned by S); relationships
/// RS (R:S many-to-many with one attribute), R2S1 (R2:S1, many-to-many at
/// the schema level but nearly one-to-one in the generated data — the M6
/// factorization target), and R1R3 (a 1:N parent/child relationship
/// inside the hierarchy, the paper's constraint example).
Result<ERSchema> MakeFigure4Schema();

/// The DDL text used by MakeFigure4Schema (exposed for examples/tests).
const char* Figure4Ddl();

/// The paper's six mappings (Section 6) against the Figure 4 schema.
MappingSpec Figure4M1();  // fully normalized
MappingSpec Figure4M2();  // multi-valued attrs as arrays
MappingSpec Figure4M3();  // hierarchy in a single table + type column
MappingSpec Figure4M4();  // hierarchy as 5 disjoint full-width tables
MappingSpec Figure4M5();  // S1/S2 folded into S as arrays of composites
MappingSpec Figure4M6();  // R2 joined with S1 in a factorized structure
/// PostgreSQL-flavoured M6: the same joined storage as one wide table
/// with duplication — the variant the paper actually measured, and the
/// reason it calls for compressed multi-relational formats.
MappingSpec Figure4M6Pg();

/// All of M1..M6 (factorized M6), for parameterized tests.
std::vector<MappingSpec> Figure4AllMappings();

/// Scale and shape knobs for the generator. Defaults give ~5k entities —
/// tests use this; benchmarks scale `num_r`/`num_s` up.
struct Figure4Config {
  uint64_t seed = 42;
  int num_r = 2000;        // instances across the R hierarchy
  int num_s = 600;         // S instances
  int mv_min = 0;          // per-entity multi-valued attr element counts
  int mv_max = 6;
  int mv_domain = 1000;    // element value domain (intersections non-empty)
  int s1_max_per_s = 3;    // weak entities per owner
  int s2_max_per_s = 2;
  int rs_per_r = 2;        // RS partners per R instance
  double r2s1_link_prob = 0.8;  // fraction of R2s linked ~1:1 to an S1
  double r1r3_link_prob = 0.7;  // fraction of R3s with an R1 parent
  // Specific-class split of the num_r instances (fractions of R, R1, R2,
  // R3, R4 as most-specific class); remainder goes to plain R.
  double frac_r1 = 0.15, frac_r2 = 0.25, frac_r3 = 0.15, frac_r4 = 0.15;
};

/// Populates a database (any mapping) with deterministic synthetic data:
/// the logical content depends only on `config.seed` and the counts, so
/// two databases with different mappings hold identical logical data.
Status PopulateFigure4(MappedDatabase* db, const Figure4Config& config);

/// Insert sinks for hosts that spread the generated stream over several
/// databases (the sharded engine routes each insert by key). The rng
/// stream is consumed identically whatever the sinks do, so the logical
/// dataset for a given seed is the same as the single-database overload.
struct Figure4Sinks {
  std::function<Status(const std::string& cls, Value fields)> insert_entity;
  std::function<Status(const std::string& rel, IndexKey left, IndexKey right,
                       Value attrs)>
      insert_relationship;
};
Status PopulateFigure4(const Figure4Sinks& sinks, const Figure4Config& config);

/// Convenience: build schema + database + data in one call. The returned
/// unique_ptr owns the database; `schema_out` receives the schema the
/// database points into (must stay alive as long as the database).
Result<std::unique_ptr<MappedDatabase>> MakeFigure4Database(
    const MappingSpec& spec, const Figure4Config& config,
    std::shared_ptr<ERSchema>* schema_out);

}  // namespace erbium

#endif  // ERBIUM_WORKLOAD_FIGURE4_H_
