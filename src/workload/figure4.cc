#include "workload/figure4.h"

#include <random>
#include <set>

#include "er/ddl_parser.h"

namespace erbium {

const char* Figure4Ddl() {
  return R"(
-- Paper Figure 4: synthetic schema for the illustrative experiments.
CREATE ENTITY R (
  r_id INT KEY,
  r_a1 INT,
  r_a2 FLOAT,
  r_a3 STRING,
  r_a4 INT,
  r_mv1 INT MULTIVALUED,
  r_mv2 INT MULTIVALUED,
  r_mv3 STRING MULTIVALUED
);
CREATE ENTITY R1 EXTENDS R ( r1_a1 INT, r1_a2 STRING )
  SPECIALIZATION (PARTIAL, DISJOINT);
CREATE ENTITY R2 EXTENDS R ( r2_a1 INT, r2_a2 STRING )
  SPECIALIZATION (PARTIAL, DISJOINT);
CREATE ENTITY R3 EXTENDS R1 ( r3_a1 INT, r3_a2 FLOAT )
  SPECIALIZATION (PARTIAL, DISJOINT);
CREATE ENTITY R4 EXTENDS R1 ( r4_a1 INT )
  SPECIALIZATION (PARTIAL, DISJOINT);
CREATE ENTITY S ( s_id INT KEY, s_a1 INT, s_a2 STRING );
CREATE WEAK ENTITY S1 OWNED BY S (
  s1_no INT PARTIAL KEY, s1_a1 INT, s1_a2 STRING );
CREATE WEAK ENTITY S2 OWNED BY S (
  s2_no INT PARTIAL KEY, s2_a1 FLOAT );
CREATE RELATIONSHIP RS BETWEEN R (MANY) AND S (MANY) WITH ( rs_a1 INT );
CREATE RELATIONSHIP R2S1 BETWEEN R2 (MANY) AND S1 (MANY);
CREATE RELATIONSHIP R1R3
  BETWEEN R1 AS parent (ONE) AND R3 AS child (MANY);
)";
}

Result<ERSchema> MakeFigure4Schema() {
  ERSchema schema;
  ERBIUM_RETURN_NOT_OK(DdlParser::Execute(Figure4Ddl(), &schema));
  return schema;
}

MappingSpec Figure4M1() { return MappingSpec::Normalized("M1"); }

MappingSpec Figure4M2() {
  MappingSpec spec = MappingSpec::Normalized("M2");
  spec.default_multi_valued = MultiValuedStorage::kArray;
  return spec;
}

MappingSpec Figure4M3() {
  MappingSpec spec = MappingSpec::Normalized("M3");
  spec.hierarchy_overrides["R"] = HierarchyStorage::kSingleTable;
  return spec;
}

MappingSpec Figure4M4() {
  MappingSpec spec = MappingSpec::Normalized("M4");
  spec.hierarchy_overrides["R"] = HierarchyStorage::kDisjointTables;
  return spec;
}

MappingSpec Figure4M5() {
  MappingSpec spec = MappingSpec::Normalized("M5");
  spec.weak_overrides["S1"] = WeakEntityStorage::kFoldedArray;
  spec.weak_overrides["S2"] = WeakEntityStorage::kFoldedArray;
  return spec;
}

MappingSpec Figure4M6() {
  MappingSpec spec = MappingSpec::Normalized("M6");
  spec.relationship_overrides["R2S1"] = RelationshipStorage::kFactorized;
  return spec;
}

MappingSpec Figure4M6Pg() {
  MappingSpec spec = MappingSpec::Normalized("M6pg");
  spec.relationship_overrides["R2S1"] = RelationshipStorage::kMaterializedJoin;
  return spec;
}

std::vector<MappingSpec> Figure4AllMappings() {
  return {Figure4M1(), Figure4M2(), Figure4M3(),
          Figure4M4(), Figure4M5(), Figure4M6()};
}

namespace {

Value RandomString(std::mt19937_64& rng, const char* prefix, int domain) {
  return Value::String(std::string(prefix) + "_" +
                       std::to_string(rng() % domain));
}

Value RandomIntArray(std::mt19937_64& rng, int min_count, int max_count,
                     int domain) {
  int count = min_count +
              static_cast<int>(rng() % (max_count - min_count + 1));
  Value::ArrayData elements;
  elements.reserve(count);
  for (int i = 0; i < count; ++i) {
    elements.push_back(Value::Int64(static_cast<int64_t>(rng() % domain)));
  }
  return Value::Array(std::move(elements));
}

Value RandomStringArray(std::mt19937_64& rng, int min_count, int max_count,
                        int domain) {
  int count = min_count +
              static_cast<int>(rng() % (max_count - min_count + 1));
  Value::ArrayData elements;
  elements.reserve(count);
  for (int i = 0; i < count; ++i) {
    elements.push_back(
        Value::String("mv_" + std::to_string(rng() % domain)));
  }
  return Value::Array(std::move(elements));
}

}  // namespace

Status PopulateFigure4(MappedDatabase* db, const Figure4Config& config) {
  Figure4Sinks sinks;
  sinks.insert_entity = [db](const std::string& cls, Value fields) {
    return db->InsertEntity(cls, std::move(fields));
  };
  sinks.insert_relationship = [db](const std::string& rel, IndexKey left,
                                   IndexKey right, Value attrs) {
    return db->InsertRelationship(rel, std::move(left), std::move(right),
                                  std::move(attrs));
  };
  return PopulateFigure4(sinks, config);
}

Status PopulateFigure4(const Figure4Sinks& sinks,
                       const Figure4Config& config) {
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // ---- R hierarchy ----------------------------------------------------------
  std::vector<int64_t> r2_ids;
  std::vector<int64_t> r3_ids;
  std::vector<int64_t> r1_family_ids;  // R1 + R3 + R4 (all are R1s)
  for (int i = 0; i < config.num_r; ++i) {
    int64_t id = i + 1;
    double pick = unit(rng);
    std::string cls;
    if (pick < config.frac_r1) {
      cls = "R1";
    } else if (pick < config.frac_r1 + config.frac_r2) {
      cls = "R2";
    } else if (pick < config.frac_r1 + config.frac_r2 + config.frac_r3) {
      cls = "R3";
    } else if (pick <
               config.frac_r1 + config.frac_r2 + config.frac_r3 +
                   config.frac_r4) {
      cls = "R4";
    } else {
      cls = "R";
    }
    Value::StructData fields;
    fields.emplace_back("r_id", Value::Int64(id));
    fields.emplace_back("r_a1", Value::Int64(static_cast<int64_t>(rng() % 10000)));
    fields.emplace_back("r_a2", Value::Float64(unit(rng) * 1000.0));
    fields.emplace_back("r_a3", RandomString(rng, "r", 5000));
    fields.emplace_back("r_a4", Value::Int64(static_cast<int64_t>(rng() % 100)));
    fields.emplace_back("r_mv1", RandomIntArray(rng, config.mv_min,
                                                config.mv_max,
                                                config.mv_domain));
    fields.emplace_back("r_mv2", RandomIntArray(rng, config.mv_min,
                                                config.mv_max,
                                                config.mv_domain));
    fields.emplace_back("r_mv3", RandomStringArray(rng, config.mv_min,
                                                   config.mv_max,
                                                   config.mv_domain));
    if (cls == "R1" || cls == "R3" || cls == "R4") {
      fields.emplace_back("r1_a1",
                          Value::Int64(static_cast<int64_t>(rng() % 1000)));
      fields.emplace_back("r1_a2", RandomString(rng, "r1", 1000));
      r1_family_ids.push_back(id);
    }
    if (cls == "R2") {
      fields.emplace_back("r2_a1",
                          Value::Int64(static_cast<int64_t>(rng() % 1000)));
      fields.emplace_back("r2_a2", RandomString(rng, "r2", 1000));
      r2_ids.push_back(id);
    }
    if (cls == "R3") {
      fields.emplace_back("r3_a1",
                          Value::Int64(static_cast<int64_t>(rng() % 1000)));
      fields.emplace_back("r3_a2", Value::Float64(unit(rng) * 10.0));
      r3_ids.push_back(id);
    }
    if (cls == "R4") {
      fields.emplace_back("r4_a1",
                          Value::Int64(static_cast<int64_t>(rng() % 1000)));
    }
    ERBIUM_RETURN_NOT_OK(
        sinks.insert_entity(cls, Value::Struct(std::move(fields))));
  }

  // ---- S and its weak entity sets ---------------------------------------------
  struct S1Key {
    int64_t s_id;
    int64_t s1_no;
  };
  std::vector<S1Key> s1_keys;
  for (int i = 0; i < config.num_s; ++i) {
    int64_t s_id = i + 1;
    Value::StructData fields;
    fields.emplace_back("s_id", Value::Int64(s_id));
    fields.emplace_back("s_a1", Value::Int64(static_cast<int64_t>(rng() % 10000)));
    fields.emplace_back("s_a2", RandomString(rng, "s", 2000));
    ERBIUM_RETURN_NOT_OK(
        sinks.insert_entity("S", Value::Struct(std::move(fields))));
    int s1_count = static_cast<int>(rng() % (config.s1_max_per_s + 1));
    for (int k = 0; k < s1_count; ++k) {
      Value::StructData s1_fields;
      s1_fields.emplace_back("s_id", Value::Int64(s_id));
      s1_fields.emplace_back("s1_no", Value::Int64(k + 1));
      s1_fields.emplace_back("s1_a1",
                             Value::Int64(static_cast<int64_t>(rng() % 500)));
      s1_fields.emplace_back("s1_a2", RandomString(rng, "s1", 500));
      ERBIUM_RETURN_NOT_OK(
          sinks.insert_entity("S1", Value::Struct(std::move(s1_fields))));
      s1_keys.push_back(S1Key{s_id, k + 1});
    }
    int s2_count = static_cast<int>(rng() % (config.s2_max_per_s + 1));
    for (int k = 0; k < s2_count; ++k) {
      Value::StructData s2_fields;
      s2_fields.emplace_back("s_id", Value::Int64(s_id));
      s2_fields.emplace_back("s2_no", Value::Int64(k + 1));
      s2_fields.emplace_back("s2_a1", Value::Float64(unit(rng) * 100.0));
      ERBIUM_RETURN_NOT_OK(
          sinks.insert_entity("S2", Value::Struct(std::move(s2_fields))));
    }
  }

  // ---- RS: each R linked to a few random S -------------------------------------
  if (config.num_s > 0) {
    for (int i = 0; i < config.num_r; ++i) {
      int64_t r_id = i + 1;
      std::set<int64_t> partners;
      for (int k = 0; k < config.rs_per_r; ++k) {
        partners.insert(static_cast<int64_t>(rng() % config.num_s) + 1);
      }
      for (int64_t s_id : partners) {
        Value::StructData attrs;
        attrs.emplace_back("rs_a1",
                           Value::Int64(static_cast<int64_t>(rng() % 100)));
        ERBIUM_RETURN_NOT_OK(sinks.insert_relationship(
            "RS", {Value::Int64(r_id)}, {Value::Int64(s_id)},
            Value::Struct(std::move(attrs))));
      }
    }
  }

  // ---- R2S1: nearly one-to-one ---------------------------------------------------
  size_t pairs = std::min(r2_ids.size(), s1_keys.size());
  for (size_t i = 0; i < pairs; ++i) {
    if (unit(rng) > config.r2s1_link_prob) continue;
    const S1Key& s1 = s1_keys[i];
    ERBIUM_RETURN_NOT_OK(sinks.insert_relationship(
        "R2S1", {Value::Int64(r2_ids[i])},
        {Value::Int64(s1.s_id), Value::Int64(s1.s1_no)}, Value::Null()));
  }

  // ---- R1R3: each R3 gets one R1-family parent -----------------------------------
  for (int64_t r3_id : r3_ids) {
    if (unit(rng) > config.r1r3_link_prob) continue;
    if (r1_family_ids.empty()) break;
    int64_t parent = r1_family_ids[rng() % r1_family_ids.size()];
    Status st = sinks.insert_relationship(
        "R1R3", {Value::Int64(parent)}, {Value::Int64(r3_id)}, Value::Null());
    // A random parent may repeat for the same child only if identical
    // keys collide, which the ConstraintViolation below tolerates.
    if (!st.ok() && st.code() != StatusCode::kConstraintViolation) {
      return st;
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<MappedDatabase>> MakeFigure4Database(
    const MappingSpec& spec, const Figure4Config& config,
    std::shared_ptr<ERSchema>* schema_out) {
  ERBIUM_ASSIGN_OR_RETURN(ERSchema schema, MakeFigure4Schema());
  auto shared_schema = std::make_shared<ERSchema>(std::move(schema));
  ERBIUM_ASSIGN_OR_RETURN(std::unique_ptr<MappedDatabase> db,
                          MappedDatabase::Create(shared_schema.get(), spec));
  ERBIUM_RETURN_NOT_OK(PopulateFigure4(db.get(), config));
  *schema_out = std::move(shared_schema);
  return db;
}

}  // namespace erbium
