// Experiments E1–E4 (paper Section 6, first block): multi-valued
// attribute storage, M1 (separate side tables) vs M2 (array columns).
//
//   E1  all three MV attrs for all R entities   — paper: M2 ~22x faster
//   E2  all values of one MV attr               — paper: M1 ~30% faster
//   E3  one MV attr for a given r_id            — paper: M2 ~145x faster
//   E4  intersect r_mv1 ∩ r_mv2 per tuple       — paper: M1 ~3.6x faster
//       (E4 is benchmarked both as the single logical ERQL query and as
//       the mapping-native physical plans PostgreSQL's optimizer would
//       pick: a side-table equi-join for M1 vs array intersection for
//       M2.)

#include "bench/bench_util.h"
#include "exec/join.h"

namespace erbium {
namespace bench {
namespace {

// ---- E1: all three multi-valued attributes for every R ---------------------

void BM_E1_AllMvAttrs(benchmark::State& state, const MappingSpec& spec) {
  RunQueryBenchmark(state, spec,
                    "SELECT r_id, r_mv1, r_mv2, r_mv3 FROM R");
}
BENCHMARK_CAPTURE(BM_E1_AllMvAttrs, M1, Figure4M1());
BENCHMARK_CAPTURE(BM_E1_AllMvAttrs, M2, Figure4M2());

// ---- E2: all values of r_mv1 -------------------------------------------------

void BM_E2_UnnestOneMv(benchmark::State& state, const MappingSpec& spec) {
  RunQueryBenchmark(state, spec, "SELECT r_id, unnest(r_mv1) AS v FROM R");
}
BENCHMARK_CAPTURE(BM_E2_UnnestOneMv, M1, Figure4M1());
BENCHMARK_CAPTURE(BM_E2_UnnestOneMv, M2, Figure4M2());

// ---- E3: r_mv1 for a given r_id (point lookup) -------------------------------

void BM_E3_PointLookup(benchmark::State& state, const MappingSpec& spec) {
  MappedDatabase* db = GetDatabase(spec);
  int64_t num_r = BenchConfig().num_r;
  int64_t id = 1;
  size_t rows = 0;
  for (auto _ : state) {
    // A fresh compile per iteration mirrors one application request
    // (plan + index lookup); the id cycles to defeat caching.
    std::string query =
        "SELECT r_id, r_mv1 FROM R WHERE r_id = " + std::to_string(id);
    id = id % num_r + 7;
    auto result = erql::QueryEngine::Execute(db, query);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    rows += result->rows.size();
  }
  benchmark::DoNotOptimize(rows);
}
BENCHMARK_CAPTURE(BM_E3_PointLookup, M1, Figure4M1());
BENCHMARK_CAPTURE(BM_E3_PointLookup, M2, Figure4M2());

// The paper's 145x gap came from PostgreSQL lacking an index on the M1
// side table ("likely due to it not being able to use an index on M1").
// ErbiumDB indexes side tables by key, so the logical query is fast on
// both mappings; this variant reproduces the unindexed plan PostgreSQL
// executed — a full scan of the side table per lookup.
void BM_E3_PointLookup_M1_NoIndex(benchmark::State& state) {
  MappedDatabase* db = GetDatabase(Figure4M1());
  const Table* side = db->catalog().GetTable("R_r_mv1");
  int64_t num_r = BenchConfig().num_r;
  int64_t id = 1;
  for (auto _ : state) {
    id = id % num_r + 7;
    FilterOp scan(std::make_unique<SeqScan>(side),
                  MakeCompare(CompareOp::kEq, MakeColumnRef(0, "r_id"),
                              MakeLiteral(Value::Int64(id))));
    Status st = scan.Open();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    Row row;
    size_t n = 0;
    while (scan.Next(&row)) ++n;
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_E3_PointLookup_M1_NoIndex);

// ---- E4a: intersection, same logical ERQL query on both mappings -------------

void BM_E4a_IntersectLogical(benchmark::State& state,
                             const MappingSpec& spec) {
  RunQueryBenchmark(
      state, spec,
      "SELECT r_id, array_intersect(r_mv1, r_mv2) AS common FROM R");
}
BENCHMARK_CAPTURE(BM_E4a_IntersectLogical, M1, Figure4M1());
BENCHMARK_CAPTURE(BM_E4a_IntersectLogical, M2, Figure4M2());

// ---- E4b: intersection with mapping-native physical plans --------------------
// M1: equi-join of the two (r_id, value) side-table streams — no
// unnesting, the plan PostgreSQL would choose on the normalized schema.
// M2: scan + array_intersect, which pays the array traversal. This is
// the form in which the paper's "M1 3.6x faster" materializes.

void BM_E4b_IntersectNative_M1(benchmark::State& state) {
  MappedDatabase* db = GetDatabase(Figure4M1());
  for (auto _ : state) {
    auto mv1 = db->ScanMultiValued("R", "r_mv1");
    auto mv2 = db->ScanMultiValued("R", "r_mv2");
    if (!mv1.ok() || !mv2.ok()) {
      state.SkipWithError("scan failed");
      return;
    }
    // Join on (r_id, value): the pairs present in both side tables.
    std::vector<ExprPtr> keys_left{MakeColumnRef(0, "r_id"),
                                   MakeColumnRef(1, "v")};
    std::vector<ExprPtr> keys_right{MakeColumnRef(0, "r_id"),
                                    MakeColumnRef(1, "v")};
    HashJoinOp join(std::move(mv1).value(), std::move(mv2).value(),
                    std::move(keys_left), std::move(keys_right));
    // Drain the join directly (pairs may repeat only if side tables hold
    // duplicates, which the generator does not produce per key).
    Status st = join.Open();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    Row row;
    size_t n = 0;
    while (join.Next(&row)) ++n;
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_E4b_IntersectNative_M1);

void BM_E4b_IntersectNative_M2(benchmark::State& state) {
  RunQueryBenchmark(
      state, Figure4M2(),
      "SELECT r_id, array_intersect(r_mv1, r_mv2) AS common FROM R");
}
BENCHMARK(BM_E4b_IntersectNative_M2);

}  // namespace
}  // namespace bench
}  // namespace erbium

ERBIUM_BENCH_MAIN("multivalued");
