// A1: the workload-aware mapping advisor (paper Section 4's "natural
// optimization problem"). For two opposing workloads, measures the cost
// of the advisor-chosen mapping against fixed M1/M2 baselines, and times
// the advisor search itself.

#include "bench/bench_util.h"
#include "mapping/advisor.h"

namespace erbium {
namespace bench {
namespace {

Workload MvPointWorkload() {
  Workload w;
  for (int id : {10, 77, 140, 250, 333, 512, 790, 1200}) {
    w.queries.push_back(
        {"SELECT r_id, r_mv1, r_mv2, r_mv3 FROM R WHERE r_id = " +
             std::to_string(id),
         1.0, "mv-point"});
  }
  return w;
}

Workload IntersectionWorkload() {
  Workload w;
  w.queries.push_back(
      {"SELECT r_id, array_intersect(r_mv1, r_mv2) AS c FROM R", 1.0,
       "intersect"});
  w.queries.push_back(
      {"SELECT r_id, r_a1 FROM R WHERE r_a1 < 100", 0.2, "filter"});
  return w;
}

/// Runs a workload once against a database (total wall time per
/// iteration).
void RunWorkload(benchmark::State& state, const MappingSpec& spec,
                 const Workload& workload) {
  MappedDatabase* db = GetDatabase(spec);
  std::vector<erql::CompiledQuery> compiled;
  for (const WorkloadQuery& wq : workload.queries) {
    auto c = erql::QueryEngine::Compile(db, wq.erql);
    if (!c.ok()) {
      state.SkipWithError(c.status().ToString().c_str());
      return;
    }
    compiled.push_back(std::move(c).value());
  }
  for (auto _ : state) {
    for (erql::CompiledQuery& c : compiled) {
      Status st = c.plan->Open();
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
      Row row;
      while (c.plan->Next(&row)) {
        benchmark::DoNotOptimize(row);
      }
    }
  }
}

/// The advisor picks a mapping on a small sample, then the chosen
/// mapping runs the workload at benchmark scale.
const MappingSpec& AdvisedSpecFor(const Workload& workload,
                                  const char* cache_key) {
  static std::map<std::string, MappingSpec>& cache =
      *new std::map<std::string, MappingSpec>();
  auto it = cache.find(cache_key);
  if (it == cache.end()) {
    auto schema_result = MakeFigure4Schema();
    static std::vector<std::shared_ptr<ERSchema>>& keep_alive =
        *new std::vector<std::shared_ptr<ERSchema>>();
    auto schema =
        std::make_shared<ERSchema>(std::move(schema_result).value());
    keep_alive.push_back(schema);
    Figure4Config sample;
    sample.num_r = 1500;
    sample.num_s = 400;
    auto candidates = MappingAdvisor::EnumerateCandidates(*schema, 24);
    auto advice = MappingAdvisor::Advise(
        schema.get(), candidates,
        [&sample](MappedDatabase* db) { return PopulateFigure4(db, sample); },
        workload, 2);
    MappingSpec chosen = advice.ok() ? advice->best() : Figure4M1();
    chosen.name = std::string("advised_") + cache_key;
    it = cache.emplace(cache_key, std::move(chosen)).first;
    fprintf(stderr, "[advisor] workload %s -> %s\n", cache_key,
            it->second.ToString().c_str());
  }
  return it->second;
}

void BM_A1_MvPoint_FixedM1(benchmark::State& state) {
  RunWorkload(state, Figure4M1(), MvPointWorkload());
}
BENCHMARK(BM_A1_MvPoint_FixedM1);

void BM_A1_MvPoint_FixedM2(benchmark::State& state) {
  RunWorkload(state, Figure4M2(), MvPointWorkload());
}
BENCHMARK(BM_A1_MvPoint_FixedM2);

void BM_A1_MvPoint_Advised(benchmark::State& state) {
  RunWorkload(state, AdvisedSpecFor(MvPointWorkload(), "mv_point"),
              MvPointWorkload());
}
BENCHMARK(BM_A1_MvPoint_Advised);

void BM_A1_Intersect_FixedM1(benchmark::State& state) {
  RunWorkload(state, Figure4M1(), IntersectionWorkload());
}
BENCHMARK(BM_A1_Intersect_FixedM1);

void BM_A1_Intersect_FixedM2(benchmark::State& state) {
  RunWorkload(state, Figure4M2(), IntersectionWorkload());
}
BENCHMARK(BM_A1_Intersect_FixedM2);

void BM_A1_Intersect_Advised(benchmark::State& state) {
  RunWorkload(state, AdvisedSpecFor(IntersectionWorkload(), "intersect"),
              IntersectionWorkload());
}
BENCHMARK(BM_A1_Intersect_Advised);

void BM_A1_AdvisorSearchTime(benchmark::State& state) {
  // Cost of the advisor itself (enumerate + sample + measure) at a
  // small sample size — the background-auto-tuning price.
  auto schema_result = MakeFigure4Schema();
  auto schema = std::make_shared<ERSchema>(std::move(schema_result).value());
  Workload workload = MvPointWorkload();
  Figure4Config sample;
  sample.num_r = 600;
  sample.num_s = 150;
  for (auto _ : state) {
    auto candidates = MappingAdvisor::EnumerateCandidates(*schema, 12);
    auto advice = MappingAdvisor::Advise(
        schema.get(), candidates,
        [&sample](MappedDatabase* db) { return PopulateFigure4(db, sample); },
        workload, 1);
    if (!advice.ok()) {
      state.SkipWithError(advice.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(advice->best_index);
  }
}
BENCHMARK(BM_A1_AdvisorSearchTime)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace erbium

ERBIUM_BENCH_MAIN("mapping_advisor");
