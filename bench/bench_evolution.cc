// A3: schema evolution and remapping costs (paper Section 3): full data
// migration between physical mappings, the single-to-multi-valued
// attribute change, and version rollback (which is free — prior versions
// stay materialized).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "evolution/evolution.h"
#include "workload/figure4.h"

namespace erbium {
namespace {

Figure4Config EvolutionScale() {
  Figure4Config config;
  config.num_r = 3000;
  config.num_s = 900;
  return config;
}

void BM_A3_RemapMigration(benchmark::State& state, const MappingSpec& from,
                          const MappingSpec& to) {
  for (auto _ : state) {
    state.PauseTiming();
    auto schema = MakeFigure4Schema();
    auto db = VersionedDatabase::Create(std::move(schema).value(), from);
    if (!db.ok()) {
      state.SkipWithError(db.status().ToString().c_str());
      return;
    }
    Status populated = PopulateFigure4((*db)->current(), EvolutionScale());
    if (!populated.ok()) {
      state.SkipWithError(populated.ToString().c_str());
      return;
    }
    state.ResumeTiming();
    Status st = (*db)->Remap(to, "bench remap");
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
}
BENCHMARK_CAPTURE(BM_A3_RemapMigration, M1_to_M2, Figure4M1(), Figure4M2())
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_A3_RemapMigration, M1_to_M4, Figure4M1(), Figure4M4())
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_A3_RemapMigration, M1_to_M6, Figure4M1(), Figure4M6())
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_A3_RemapMigration, M4_to_M1, Figure4M4(), Figure4M1())
    ->Unit(benchmark::kMillisecond);

void BM_A3_MakeMultiValuedMigration(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto schema = MakeFigure4Schema();
    auto db =
        VersionedDatabase::Create(std::move(schema).value(), Figure4M1());
    if (!db.ok()) {
      state.SkipWithError(db.status().ToString().c_str());
      return;
    }
    Status populated = PopulateFigure4((*db)->current(), EvolutionScale());
    if (!populated.ok()) {
      state.SkipWithError(populated.ToString().c_str());
      return;
    }
    state.ResumeTiming();
    Status st = (*db)->Evolve(
        [](ERSchema* s) {
          return evolution::MakeAttributeMultiValued(s, "R", "r_a3");
        },
        "bench evolve");
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
}
BENCHMARK(BM_A3_MakeMultiValuedMigration)->Unit(benchmark::kMillisecond);

void BM_A3_RollbackIsConstantTime(benchmark::State& state) {
  auto schema = MakeFigure4Schema();
  auto db = VersionedDatabase::Create(std::move(schema).value(), Figure4M1());
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  Status populated = PopulateFigure4((*db)->current(), EvolutionScale());
  if (!populated.ok()) {
    state.SkipWithError(populated.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    state.PauseTiming();
    Status remapped = (*db)->Remap(Figure4M2(), "bench");
    if (!remapped.ok()) {
      state.SkipWithError(remapped.ToString().c_str());
      return;
    }
    state.ResumeTiming();
    Status st = (*db)->Rollback();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
}
BENCHMARK(BM_A3_RollbackIsConstantTime);

}  // namespace
}  // namespace erbium

ERBIUM_BENCH_MAIN("evolution");
