// Workload profiler overhead on the point-read hot path: the same
// single-row lookup driven through QueryEngine::Execute (the full
// telemetry + profile feed) with capture enabled vs disabled. The
// profiler performs no clock reads of its own — statement wall time
// arrives from the engine's existing measurement — so the A/B delta is
// bounded by a few shard-mutex acquisitions and counter increments per
// statement, and must stay within run-to-run noise.
//
// A third microbenchmark prices one RecordStatement call in isolation
// (private profile, realistic point-lookup footprint), the number the
// per-statement budget in DESIGN.md quotes.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <string>

#include "erql/query_engine.h"
#include "obs/workload_profile.h"

namespace erbium {
namespace {

void RunPointRead(benchmark::State& state, bool profiler_enabled) {
  MappedDatabase* db = bench::GetDatabase(Figure4M1());
  obs::WorkloadProfile& profile = obs::WorkloadProfile::Global();
  bool was_enabled = profile.enabled();
  profile.set_enabled(profiler_enabled);
  const std::string query = "SELECT r_a1 FROM R WHERE r_id = 42";
  for (auto _ : state) {
    auto result = erql::QueryEngine::Execute(db, query);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(result->rows);
  }
  profile.set_enabled(was_enabled);
  state.counters["capture"] =
      profiler_enabled && obs::WorkloadProfile::CompiledIn() ? 1 : 0;
}

void BM_PointReadProfilerOn(benchmark::State& state) {
  RunPointRead(state, /*profiler_enabled=*/true);
}
BENCHMARK(BM_PointReadProfilerOn);

void BM_PointReadProfilerOff(benchmark::State& state) {
  RunPointRead(state, /*profiler_enabled=*/false);
}
BENCHMARK(BM_PointReadProfilerOff);

// One RecordStatement against a private profile: the marginal cost the
// engine pays per profiled statement once the plan is compiled (cache
// hit path — the footprint is shared, nothing is re-derived).
void BM_RecordStatementCost(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::WorkloadProfile profile(128, &registry);
  obs::StatementFootprint footprint;
  footprint.shape = "select r_a1 from r where r_id = ?";
  footprint.entities.push_back({"R", obs::EntityPath::kProbe});
  footprint.attributes.push_back({"R", "r_a1", false});
  footprint.attributes.push_back({"R", "r_id", true});
  const std::string text = "SELECT r_a1 FROM R WHERE r_id = 42";
  for (auto _ : state) {
    profile.RecordStatement(&footprint, "select", text, 1000);
  }
  state.counters["statements"] =
      static_cast<double>(profile.Snapshot().statements);
}
BENCHMARK(BM_RecordStatementCost);

}  // namespace
}  // namespace erbium

ERBIUM_BENCH_MAIN("workload");
