// Network server throughput/latency benchmark: requests per second and
// p50/p99 latency for point reads and single-row inserts, as the number
// of concurrent client connections scales through 1, 8, and 64 — plus a
// pipelined variant (16-statement batches per round-trip) and a
// 1000-connection idle+burst scenario measuring what idle connections
// cost the reactor (fds and RSS, not threads). All traffic runs over
// real TCP loopback connections through the full frame protocol, so the
// numbers include framing, CRC, and the engine's shared/exclusive
// statement lock — reads overlap, inserts serialize.
//
// Percentiles land in the metrics dump (BENCH_server.json) as gauges:
//   server.bench.point_read.c<N>.p50_us / .p99_us
//   server.bench.insert.c<N>.p50_us     / .p99_us
//   server.bench.point_read_pipelined.c<N>.p50_us / .p99_us  (per stmt)
//   server.bench.idle_burst.{p50_us,p99_us,rss_mb,threads,connections}
//   server.bench.read_under_writes.{idle,writes,checkpoint}.{p50_us,p99_us}
//   server.bench.lifecycle.{queue_wait,execute,write_stall}_mean_us
//   server.bench.sharded_inserts.s<N>.{inserts_per_sec,p50_us,p99_us}
//   server.bench.sharded_inserts.s<N>.shard<k>.inserts   (routing spread)
//
// The lifecycle gauges summarize where a statement's server-side time
// went across the whole run (means over the server.queue_wait_us /
// server.execute_us / server.write_stall_us histograms, which the dump
// also carries in full).

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/client.h"
#include "server/server.h"

namespace erbium {
namespace bench {
namespace {

constexpr int kNumR = 2000;

/// One shared server for the whole benchmark process (leaked, like the
/// cached databases in bench_util.h).
server::Server* GetServer() {
  static server::Server* instance = [] {
    server::ServerOptions options;
    options.port = 0;
    options.max_connections = 80;
    options.idle_timeout_ms = 600'000;
    options.request_deadline_ms = 0;
    options.runner.figure4 = true;
    options.runner.figure4_num_r = kNumR;
    options.runner.figure4_num_s = kNumR * 3 / 10;
    // Point reads draw from kNumR distinct statement texts (literals are
    // part of the cache key); size the plan cache so the steady state is
    // all hits rather than LRU thrash.
    options.runner.plan_cache_capacity = 4096;
    auto server = server::Server::Start(std::move(options));
    if (!server.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   server.status().ToString().c_str());
      std::abort();
    }
    return std::move(server).value().release();
  }();
  return instance;
}

double Percentile(std::vector<double>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  size_t rank = static_cast<size_t>(
      p * static_cast<double>(latencies->size() - 1) + 0.5);
  std::nth_element(latencies->begin(), latencies->begin() + rank,
                   latencies->end());
  return (*latencies)[rank];
}

/// Keys for inserts stay unique across every benchmark repetition.
std::atomic<int64_t> g_next_insert_id{1'000'000};

/// Drives `clients` connections, each issuing `per_iter` statements per
/// benchmark iteration, recording per-request wall latency.
void RunServerBenchmark(benchmark::State& state, const std::string& op,
                        int per_iter) {
  const int clients = static_cast<int>(state.range(0));
  server::Server* server = GetServer();

  std::vector<std::unique_ptr<server::Client>> connections;
  connections.reserve(clients);
  for (int i = 0; i < clients; ++i) {
    server::Client::Options options;
    options.port = server->port();
    options.name = "bench-" + op + "-" + std::to_string(i);
    options.connect_retries = 10;
    auto client = server::Client::Connect(std::move(options));
    if (!client.ok()) {
      state.SkipWithError(client.status().ToString().c_str());
      return;
    }
    connections.push_back(std::move(client).value());
  }

  std::vector<double> all_latencies_us;
  for (auto _ : state) {
    std::vector<std::vector<double>> per_thread(clients);
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int i = 0; i < clients; ++i) {
      threads.emplace_back([&, i] {
        std::mt19937 rng(static_cast<uint32_t>(17 + i));
        per_thread[i].reserve(per_iter);
        for (int k = 0; k < per_iter && !failed.load(); ++k) {
          std::string statement;
          if (op == "point_read") {
            statement = "SELECT r_a1 FROM R WHERE r_id = " +
                        std::to_string(1 + rng() % kNumR);
          } else {
            statement =
                "INSERT R (r_id = " +
                std::to_string(g_next_insert_id.fetch_add(1)) +
                ", r_a1 = 1, r_a2 = 0.5, r_a3 = 'b', r_a4 = 1)";
          }
          auto start = std::chrono::steady_clock::now();
          auto outcome = connections[i]->Execute(statement);
          auto end = std::chrono::steady_clock::now();
          if (!outcome.ok()) {
            failed.store(true);
            break;
          }
          per_thread[i].push_back(
              std::chrono::duration<double, std::micro>(end - start)
                  .count());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    if (failed.load()) {
      state.SkipWithError("a benchmark request failed");
      return;
    }
    for (const auto& latencies : per_thread) {
      all_latencies_us.insert(all_latencies_us.end(), latencies.begin(),
                              latencies.end());
    }
  }

  state.SetItemsProcessed(static_cast<int64_t>(all_latencies_us.size()));
  double p50 = Percentile(&all_latencies_us, 0.50);
  double p99 = Percentile(&all_latencies_us, 0.99);
  state.counters["p50_us"] = p50;
  state.counters["p99_us"] = p99;
  // Mirror into the metrics registry so the percentiles appear in
  // BENCH_server.json.
  std::string prefix =
      "server.bench." + op + ".c" + std::to_string(clients);
  obs::MetricsRegistry::Global()
      .gauge(prefix + ".p50_us")
      .Set(static_cast<int64_t>(std::llround(p50)));
  obs::MetricsRegistry::Global()
      .gauge(prefix + ".p99_us")
      .Set(static_cast<int64_t>(std::llround(p99)));
}

void BM_PointRead(benchmark::State& state) {
  RunServerBenchmark(state, "point_read", 30);
}

void BM_Insert(benchmark::State& state) {
  RunServerBenchmark(state, "insert", 15);
}

/// Pipelined point reads: every client ships 16-statement batches, so
/// framing and scheduling amortize across one round-trip. Latency is
/// recorded per statement (batch wall time / batch size) to stay
/// comparable with BM_PointRead.
void BM_PointReadPipelined(benchmark::State& state) {
  constexpr int kBatch = 16;
  const int clients = static_cast<int>(state.range(0));
  server::Server* server = GetServer();

  std::vector<std::unique_ptr<server::Client>> connections;
  connections.reserve(clients);
  for (int i = 0; i < clients; ++i) {
    server::Client::Options options;
    options.port = server->port();
    options.name = "bench-pipeline-" + std::to_string(i);
    options.connect_retries = 10;
    auto client = server::Client::Connect(std::move(options));
    if (!client.ok()) {
      state.SkipWithError(client.status().ToString().c_str());
      return;
    }
    connections.push_back(std::move(client).value());
  }

  std::vector<double> all_latencies_us;
  for (auto _ : state) {
    std::vector<std::vector<double>> per_thread(clients);
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int i = 0; i < clients; ++i) {
      threads.emplace_back([&, i] {
        std::mt19937 rng(static_cast<uint32_t>(41 + i));
        for (int round = 0; round < 4 && !failed.load(); ++round) {
          std::vector<std::string> statements;
          statements.reserve(kBatch);
          for (int k = 0; k < kBatch; ++k) {
            statements.push_back("SELECT r_a1 FROM R WHERE r_id = " +
                                 std::to_string(1 + rng() % kNumR));
          }
          auto start = std::chrono::steady_clock::now();
          auto batch = connections[i]->ExecuteBatch(statements);
          auto end = std::chrono::steady_clock::now();
          if (!batch.ok() || batch->size() != statements.size()) {
            failed.store(true);
            break;
          }
          double per_stmt_us =
              std::chrono::duration<double, std::micro>(end - start).count() /
              kBatch;
          for (int k = 0; k < kBatch; ++k) {
            per_thread[i].push_back(per_stmt_us);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    if (failed.load()) {
      state.SkipWithError("a pipelined batch failed");
      return;
    }
    for (const auto& latencies : per_thread) {
      all_latencies_us.insert(all_latencies_us.end(), latencies.begin(),
                              latencies.end());
    }
  }

  state.SetItemsProcessed(static_cast<int64_t>(all_latencies_us.size()));
  double p50 = Percentile(&all_latencies_us, 0.50);
  double p99 = Percentile(&all_latencies_us, 0.99);
  state.counters["p50_us"] = p50;
  state.counters["p99_us"] = p99;
  std::string prefix =
      "server.bench.point_read_pipelined.c" + std::to_string(clients);
  obs::MetricsRegistry::Global()
      .gauge(prefix + ".p50_us")
      .Set(static_cast<int64_t>(std::llround(p50)));
  obs::MetricsRegistry::Global()
      .gauge(prefix + ".p99_us")
      .Set(static_cast<int64_t>(std::llround(p99)));
}

/// Folds the statement-lifecycle histograms the server populated over
/// the whole run into per-phase mean gauges, so the committed dump
/// answers "where does a statement's server-side time go" at a glance.
/// Called from the last benchmark; the full histograms ride along in
/// the dump regardless.
void RecordLifecycleSplit() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::RegistrySnapshot snapshot = registry.Snapshot();
  for (const char* phase : {"queue_wait", "execute", "write_stall"}) {
    auto it = snapshot.histograms.find("server." + std::string(phase) + "_us");
    if (it == snapshot.histograms.end() || it->second.count == 0) continue;
    registry
        .gauge("server.bench.lifecycle." + std::string(phase) + "_mean_us")
        .Set(static_cast<int64_t>(
            std::llround(it->second.sum / it->second.count)));
  }
}

/// The MVCC snapshot-read headline: point-read latency from 8 reader
/// connections, measured three ways on one dedicated durable server —
///   idle        readers alone (the baseline)
///   writes      readers while one client streams single-row inserts
///   checkpoint  readers while the writer streams AND another client
///               issues CHECKPOINT back to back
/// Reads execute against pinned immutable versions, writers serialize
/// per entity set, and CHECKPOINT writes its snapshot under a shared
/// lock — so the `writes` and `checkpoint` p99 should sit within ~2× of
/// `idle`, not behind the old multi-millisecond exclusive-lock stalls.
void BM_ReadUnderWrites(benchmark::State& state) {
  constexpr int kReaders = 8;
  constexpr int kReadsPerConn = 60;
  constexpr int kRows = 2000;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "erbium_bench_ruw").string();
  std::filesystem::remove_all(dir);

  // A dedicated server attached to disk: CHECKPOINT needs a durable
  // database, and the insert stream must not pollute the shared server.
  server::ServerOptions options;
  options.port = 0;
  options.max_connections = kReaders + 8;
  options.idle_timeout_ms = 600'000;
  options.request_deadline_ms = 0;
  options.runner.attach_dir = dir;
  options.runner.plan_cache_capacity = 4096;
  auto started = server::Server::Start(std::move(options));
  if (!started.ok()) {
    state.SkipWithError(started.status().ToString().c_str());
    return;
  }
  std::unique_ptr<server::Server> server = std::move(started).value();

  auto connect = [&](const std::string& name)
      -> std::unique_ptr<server::Client> {
    server::Client::Options copts;
    copts.port = server->port();
    copts.name = name;
    copts.connect_retries = 10;
    auto client = server::Client::Connect(std::move(copts));
    if (!client.ok()) return nullptr;
    return std::move(client).value();
  };

  // Populate through the front door: the attach replaced the in-memory
  // database, so the working set is created and loaded via statements.
  std::unique_ptr<server::Client> setup = connect("ruw-setup");
  if (setup == nullptr ||
      !setup->Execute("CREATE ENTITY RU ( id INT KEY, a1 INT )").ok()) {
    state.SkipWithError("read_under_writes setup failed");
    return;
  }
  for (int id = 1; id <= kRows; ++id) {
    auto ack = setup->Execute("INSERT RU (id = " + std::to_string(id) +
                              ", a1 = " + std::to_string(id * 7) + ")");
    if (!ack.ok()) {
      state.SkipWithError("read_under_writes data load failed");
      return;
    }
  }

  std::vector<std::unique_ptr<server::Client>> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.push_back(connect("ruw-reader-" + std::to_string(i)));
    if (readers.back() == nullptr) {
      state.SkipWithError("read_under_writes reader connect failed");
      return;
    }
  }
  std::unique_ptr<server::Client> writer = connect("ruw-writer");
  std::unique_ptr<server::Client> checkpointer = connect("ruw-checkpoint");
  if (writer == nullptr || checkpointer == nullptr) {
    state.SkipWithError("read_under_writes connect failed");
    return;
  }

  struct Mode {
    const char* name;
    bool with_writer;
    bool with_checkpoint;
  };
  constexpr Mode kModes[] = {{"idle", false, false},
                             {"writes", true, false},
                             {"checkpoint", true, true}};

  for (auto _ : state) {
    for (const Mode& mode : kModes) {
      std::atomic<bool> stop{false};
      std::atomic<bool> failed{false};
      std::thread write_stream;
      if (mode.with_writer) {
        write_stream = std::thread([&] {
          while (!stop.load()) {
            auto ack = writer->Execute(
                "INSERT RU (id = " +
                std::to_string(g_next_insert_id.fetch_add(1)) +
                ", a1 = 1)");
            if (!ack.ok()) {
              failed.store(true);
              return;
            }
          }
        });
      }
      std::thread checkpoint_stream;
      if (mode.with_checkpoint) {
        checkpoint_stream = std::thread([&] {
          while (!stop.load()) {
            auto ack = checkpointer->Execute("CHECKPOINT");
            if (!ack.ok()) {
              failed.store(true);
              return;
            }
            // Checkpoints are periodic in real deployments; a tight
            // loop would just measure CPU contention with the encoder.
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
          }
        });
      }

      std::vector<std::vector<double>> per_thread(kReaders);
      std::vector<std::thread> threads;
      threads.reserve(kReaders);
      for (int i = 0; i < kReaders; ++i) {
        threads.emplace_back([&, i] {
          std::mt19937 rng(static_cast<uint32_t>(211 + i));
          per_thread[i].reserve(kReadsPerConn);
          for (int k = 0; k < kReadsPerConn && !failed.load(); ++k) {
            std::string statement = "SELECT a1 FROM RU WHERE id = " +
                                    std::to_string(1 + rng() % kRows);
            auto start = std::chrono::steady_clock::now();
            auto outcome = readers[i]->Execute(statement);
            auto end = std::chrono::steady_clock::now();
            if (!outcome.ok()) {
              failed.store(true);
              break;
            }
            per_thread[i].push_back(
                std::chrono::duration<double, std::micro>(end - start)
                    .count());
          }
        });
      }
      for (std::thread& t : threads) t.join();
      stop.store(true);
      if (write_stream.joinable()) write_stream.join();
      if (checkpoint_stream.joinable()) checkpoint_stream.join();
      if (failed.load()) {
        state.SkipWithError("a read_under_writes request failed");
        return;
      }

      std::vector<double> latencies_us;
      for (const auto& lats : per_thread) {
        latencies_us.insert(latencies_us.end(), lats.begin(), lats.end());
      }
      double p50 = Percentile(&latencies_us, 0.50);
      double p99 = Percentile(&latencies_us, 0.99);
      state.counters[std::string(mode.name) + "_p50_us"] = p50;
      state.counters[std::string(mode.name) + "_p99_us"] = p99;
      std::string prefix =
          "server.bench.read_under_writes." + std::string(mode.name);
      obs::MetricsRegistry::Global()
          .gauge(prefix + ".p50_us")
          .Set(static_cast<int64_t>(std::llround(p50)));
      obs::MetricsRegistry::Global()
          .gauge(prefix + ".p99_us")
          .Set(static_cast<int64_t>(std::llround(p99)));
    }
  }

  readers.clear();
  writer.reset();
  checkpointer.reset();
  setup.reset();
  server->Stop();
  std::filesystem::remove_all(dir);
}

/// Reads a numeric field (kB for VmRSS) from /proc/self/status.
int64_t ProcSelfStatus(const char* field) {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(field, 0) == 0) {
      std::istringstream values(line.substr(std::strlen(field) + 1));
      int64_t value = 0;
      values >> value;
      return value;
    }
  }
  return -1;
}

/// The reactor's headline scenario: 1000 connections sit idle (costing
/// the server fds, not threads), then 64 of them burst point reads.
/// Reported: burst p50/p99 plus process RSS and thread count while all
/// 1000 connections are open. Server runs in-process, so RSS/threads
/// cover server + clients — an upper bound on the server's own cost.
void BM_IdleBurst(benchmark::State& state) {
  constexpr int kIdle = 1000;
  constexpr int kBurst = 64;
  constexpr int kReadsPerConn = 20;

  // 1000 client fds + 1000 server-side fds + slack.
  struct rlimit lim;
  if (::getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < 8192) {
    lim.rlim_cur = std::min<rlim_t>(8192, lim.rlim_max);
    ::setrlimit(RLIMIT_NOFILE, &lim);
  }

  // A dedicated server: the idle population must not share the main
  // benchmark server's connection budget.
  server::ServerOptions options;
  options.port = 0;
  options.max_connections = kIdle + kBurst + 8;
  options.accept_backlog = 128;
  options.idle_timeout_ms = 600'000;
  options.request_deadline_ms = 0;
  options.runner.figure4 = true;
  options.runner.figure4_num_r = kNumR;
  options.runner.figure4_num_s = kNumR * 3 / 10;
  options.runner.plan_cache_capacity = 4096;
  auto started = server::Server::Start(std::move(options));
  if (!started.ok()) {
    state.SkipWithError(started.status().ToString().c_str());
    return;
  }
  std::unique_ptr<server::Server> server = std::move(started).value();

  std::vector<std::unique_ptr<server::Client>> idle;
  idle.reserve(kIdle);
  for (int i = 0; i < kIdle; ++i) {
    server::Client::Options copts;
    copts.port = server->port();
    copts.name = "idle-" + std::to_string(i);
    copts.connect_retries = 10;
    auto client = server::Client::Connect(std::move(copts));
    if (!client.ok()) {
      state.SkipWithError(("idle connect " + std::to_string(i) + ": " +
                           client.status().ToString())
                              .c_str());
      return;
    }
    idle.push_back(std::move(client).value());
  }

  int64_t rss_kb = ProcSelfStatus("VmRSS:");
  int64_t threads = ProcSelfStatus("Threads:");

  std::vector<double> latencies_us;
  for (auto _ : state) {
    std::vector<std::vector<double>> per_thread(kBurst);
    std::atomic<bool> failed{false};
    std::vector<std::thread> burst;
    burst.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
      burst.emplace_back([&, i] {
        // Burst from established idle connections — the scenario is
        // "mostly-idle fleet, sudden hot subset".
        server::Client* client = idle[static_cast<size_t>(i)].get();
        std::mt19937 rng(static_cast<uint32_t>(97 + i));
        for (int k = 0; k < kReadsPerConn && !failed.load(); ++k) {
          std::string statement = "SELECT r_a1 FROM R WHERE r_id = " +
                                  std::to_string(1 + rng() % kNumR);
          auto start = std::chrono::steady_clock::now();
          auto outcome = client->Execute(statement);
          auto end = std::chrono::steady_clock::now();
          if (!outcome.ok()) {
            failed.store(true);
            break;
          }
          per_thread[i].push_back(
              std::chrono::duration<double, std::micro>(end - start)
                  .count());
        }
      });
    }
    for (std::thread& t : burst) t.join();
    if (failed.load()) {
      state.SkipWithError("a burst request failed");
      return;
    }
    for (const auto& lats : per_thread) {
      latencies_us.insert(latencies_us.end(), lats.begin(), lats.end());
    }
  }

  state.SetItemsProcessed(static_cast<int64_t>(latencies_us.size()));
  double p50 = Percentile(&latencies_us, 0.50);
  double p99 = Percentile(&latencies_us, 0.99);
  state.counters["p50_us"] = p50;
  state.counters["p99_us"] = p99;
  state.counters["rss_mb"] = static_cast<double>(rss_kb) / 1024.0;
  state.counters["threads"] = static_cast<double>(threads);
  auto& registry = obs::MetricsRegistry::Global();
  registry.gauge("server.bench.idle_burst.p50_us")
      .Set(static_cast<int64_t>(std::llround(p50)));
  registry.gauge("server.bench.idle_burst.p99_us")
      .Set(static_cast<int64_t>(std::llround(p99)));
  registry.gauge("server.bench.idle_burst.rss_mb")
      .Set(rss_kb >= 0 ? rss_kb / 1024 : -1);
  registry.gauge("server.bench.idle_burst.threads").Set(threads);
  registry.gauge("server.bench.idle_burst.connections")
      .Set(static_cast<int64_t>(server->active_connections()));

  idle.clear();
  server->Stop();
  RecordLifecycleSplit();
}

/// Sharded-engine headline: single-row insert throughput as the entity
/// sets partition across 1 / 2 / 4 / 8 intra-process shards. Each run
/// boots a dedicated server with --shards N semantics
/// (StatementRunner::Options::shards) and streams inserts from 8
/// connections; writers serialize per shard, so on a multi-core box
/// throughput should scale with N. The per-shard insert counters
/// (shard.<k>.inserts) are snapshotted before/after and their deltas
/// published as gauges — structural proof the router actually spread
/// the keys even on machines where wall-clock scaling is flat
/// (e.g. single-core CI).
void BM_ShardedInserts(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  constexpr int kClients = 8;
  constexpr int kInsertsPerClient = 150;

  // A dedicated server per shard count: the shard layout is fixed at
  // engine creation, and the insert stream must not pollute the shared
  // benchmark server.
  server::ServerOptions options;
  options.port = 0;
  options.max_connections = kClients + 4;
  options.idle_timeout_ms = 600'000;
  options.request_deadline_ms = 0;
  options.runner.figure4 = true;
  options.runner.figure4_num_r = 64;  // tiny preload; inserts dominate
  options.runner.figure4_num_s = 16;
  options.runner.plan_cache_capacity = 4096;
  options.runner.shards = shards;
  auto started = server::Server::Start(std::move(options));
  if (!started.ok()) {
    state.SkipWithError(started.status().ToString().c_str());
    return;
  }
  std::unique_ptr<server::Server> server = std::move(started).value();

  std::vector<std::unique_ptr<server::Client>> connections;
  connections.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    server::Client::Options copts;
    copts.port = server->port();
    copts.name = "sharded-" + std::to_string(i);
    copts.connect_retries = 10;
    auto client = server::Client::Connect(std::move(copts));
    if (!client.ok()) {
      state.SkipWithError(client.status().ToString().c_str());
      return;
    }
    connections.push_back(std::move(client).value());
  }

  // The per-shard counters are process-global and cumulative across the
  // Arg sweep, so measure deltas.
  auto& registry = obs::MetricsRegistry::Global();
  auto shard_counter_name = [](int k) {
    return "shard." + std::to_string(k) + ".inserts";
  };
  std::vector<int64_t> before(shards, 0);
  for (int k = 0; k < shards; ++k) {
    before[static_cast<size_t>(k)] =
        registry.counter(shard_counter_name(k)).Value();
  }

  std::vector<double> all_latencies_us;
  double total_seconds = 0.0;
  for (auto _ : state) {
    std::vector<std::vector<double>> per_thread(kClients);
    std::atomic<bool> failed{false};
    auto wall_start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        per_thread[i].reserve(kInsertsPerClient);
        for (int k = 0; k < kInsertsPerClient && !failed.load(); ++k) {
          std::string statement =
              "INSERT R (r_id = " +
              std::to_string(g_next_insert_id.fetch_add(1)) +
              ", r_a1 = 1, r_a2 = 0.5, r_a3 = 'b', r_a4 = 1)";
          auto start = std::chrono::steady_clock::now();
          auto outcome = connections[i]->Execute(statement);
          auto end = std::chrono::steady_clock::now();
          if (!outcome.ok()) {
            failed.store(true);
            break;
          }
          per_thread[i].push_back(
              std::chrono::duration<double, std::micro>(end - start)
                  .count());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    total_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (failed.load()) {
      state.SkipWithError("a sharded insert failed");
      return;
    }
    for (const auto& lats : per_thread) {
      all_latencies_us.insert(all_latencies_us.end(), lats.begin(),
                              lats.end());
    }
  }

  state.SetItemsProcessed(static_cast<int64_t>(all_latencies_us.size()));
  double p50 = Percentile(&all_latencies_us, 0.50);
  double p99 = Percentile(&all_latencies_us, 0.99);
  double per_sec = total_seconds > 0.0
                       ? static_cast<double>(all_latencies_us.size()) /
                             total_seconds
                       : 0.0;
  state.counters["p50_us"] = p50;
  state.counters["p99_us"] = p99;
  state.counters["inserts_per_sec"] = per_sec;
  std::string prefix =
      "server.bench.sharded_inserts.s" + std::to_string(shards);
  registry.gauge(prefix + ".p50_us")
      .Set(static_cast<int64_t>(std::llround(p50)));
  registry.gauge(prefix + ".p99_us")
      .Set(static_cast<int64_t>(std::llround(p99)));
  registry.gauge(prefix + ".inserts_per_sec")
      .Set(static_cast<int64_t>(std::llround(per_sec)));
  for (int k = 0; k < shards; ++k) {
    int64_t delta = registry.counter(shard_counter_name(k)).Value() -
                    before[static_cast<size_t>(k)];
    state.counters["shard" + std::to_string(k)] =
        static_cast<double>(delta);
    registry.gauge(prefix + ".shard" + std::to_string(k) + ".inserts")
        .Set(delta);
  }

  connections.clear();
  server->Stop();
}

BENCHMARK(BM_PointRead)->Arg(1)->Arg(8)->Arg(64)->UseRealTime()
    ->Iterations(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Insert)->Arg(1)->Arg(8)->Arg(64)->UseRealTime()
    ->Iterations(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PointReadPipelined)->Arg(1)->Arg(8)->UseRealTime()
    ->Iterations(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReadUnderWrites)->UseRealTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IdleBurst)->UseRealTime()->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShardedInserts)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace erbium

ERBIUM_BENCH_MAIN("server")
