// Network server throughput/latency benchmark: requests per second and
// p50/p99 latency for point reads and single-row inserts, as the number
// of concurrent client connections scales through 1, 8, and 64. All
// traffic runs over real TCP loopback connections through the full
// frame protocol, so the numbers include framing, CRC, and the engine's
// shared/exclusive statement lock — reads overlap, inserts serialize.
//
// Percentiles land in the metrics dump (BENCH_server.json) as gauges:
//   server.bench.point_read.c<N>.p50_us / .p99_us
//   server.bench.insert.c<N>.p50_us     / .p99_us

#include <algorithm>
#include <atomic>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "server/client.h"
#include "server/server.h"

namespace erbium {
namespace bench {
namespace {

constexpr int kNumR = 2000;

/// One shared server for the whole benchmark process (leaked, like the
/// cached databases in bench_util.h).
server::Server* GetServer() {
  static server::Server* instance = [] {
    server::ServerOptions options;
    options.port = 0;
    options.max_connections = 80;
    options.idle_timeout_ms = 600'000;
    options.request_deadline_ms = 0;
    options.runner.figure4 = true;
    options.runner.figure4_num_r = kNumR;
    options.runner.figure4_num_s = kNumR * 3 / 10;
    auto server = server::Server::Start(std::move(options));
    if (!server.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   server.status().ToString().c_str());
      std::abort();
    }
    return std::move(server).value().release();
  }();
  return instance;
}

double Percentile(std::vector<double>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  size_t rank = static_cast<size_t>(
      p * static_cast<double>(latencies->size() - 1) + 0.5);
  std::nth_element(latencies->begin(), latencies->begin() + rank,
                   latencies->end());
  return (*latencies)[rank];
}

/// Keys for inserts stay unique across every benchmark repetition.
std::atomic<int64_t> g_next_insert_id{1'000'000};

/// Drives `clients` connections, each issuing `per_iter` statements per
/// benchmark iteration, recording per-request wall latency.
void RunServerBenchmark(benchmark::State& state, const std::string& op,
                        int per_iter) {
  const int clients = static_cast<int>(state.range(0));
  server::Server* server = GetServer();

  std::vector<std::unique_ptr<server::Client>> connections;
  connections.reserve(clients);
  for (int i = 0; i < clients; ++i) {
    server::Client::Options options;
    options.port = server->port();
    options.name = "bench-" + op + "-" + std::to_string(i);
    options.connect_retries = 10;
    auto client = server::Client::Connect(std::move(options));
    if (!client.ok()) {
      state.SkipWithError(client.status().ToString().c_str());
      return;
    }
    connections.push_back(std::move(client).value());
  }

  std::vector<double> all_latencies_us;
  for (auto _ : state) {
    std::vector<std::vector<double>> per_thread(clients);
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int i = 0; i < clients; ++i) {
      threads.emplace_back([&, i] {
        std::mt19937 rng(static_cast<uint32_t>(17 + i));
        per_thread[i].reserve(per_iter);
        for (int k = 0; k < per_iter && !failed.load(); ++k) {
          std::string statement;
          if (op == "point_read") {
            statement = "SELECT r_a1 FROM R WHERE r_id = " +
                        std::to_string(1 + rng() % kNumR);
          } else {
            statement =
                "INSERT R (r_id = " +
                std::to_string(g_next_insert_id.fetch_add(1)) +
                ", r_a1 = 1, r_a2 = 0.5, r_a3 = 'b', r_a4 = 1)";
          }
          auto start = std::chrono::steady_clock::now();
          auto outcome = connections[i]->Execute(statement);
          auto end = std::chrono::steady_clock::now();
          if (!outcome.ok()) {
            failed.store(true);
            break;
          }
          per_thread[i].push_back(
              std::chrono::duration<double, std::micro>(end - start)
                  .count());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    if (failed.load()) {
      state.SkipWithError("a benchmark request failed");
      return;
    }
    for (const auto& latencies : per_thread) {
      all_latencies_us.insert(all_latencies_us.end(), latencies.begin(),
                              latencies.end());
    }
  }

  state.SetItemsProcessed(static_cast<int64_t>(all_latencies_us.size()));
  double p50 = Percentile(&all_latencies_us, 0.50);
  double p99 = Percentile(&all_latencies_us, 0.99);
  state.counters["p50_us"] = p50;
  state.counters["p99_us"] = p99;
  // Mirror into the metrics registry so the percentiles appear in
  // BENCH_server.json.
  std::string prefix =
      "server.bench." + op + ".c" + std::to_string(clients);
  obs::MetricsRegistry::Global()
      .gauge(prefix + ".p50_us")
      .Set(static_cast<int64_t>(std::llround(p50)));
  obs::MetricsRegistry::Global()
      .gauge(prefix + ".p99_us")
      .Set(static_cast<int64_t>(std::llround(p99)));
}

void BM_PointRead(benchmark::State& state) {
  RunServerBenchmark(state, "point_read", 30);
}

void BM_Insert(benchmark::State& state) {
  RunServerBenchmark(state, "insert", 15);
}

BENCHMARK(BM_PointRead)->Arg(1)->Arg(8)->Arg(64)->UseRealTime()
    ->Iterations(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Insert)->Arg(1)->Arg(8)->Arg(64)->UseRealTime()
    ->Iterations(3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace erbium

ERBIUM_BENCH_MAIN("server")
