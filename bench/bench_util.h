#ifndef ERBIUM_BENCH_BENCH_UTIL_H_
#define ERBIUM_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "erql/query_engine.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "workload/figure4.h"

namespace erbium {
namespace bench {

/// Benchmark data scale. The paper's database held ~5M rows in
/// PostgreSQL; the in-memory engine runs the same experiments at a
/// scaled-down size (override with ERBIUM_BENCH_SCALE=<num_r>). Ratios
/// between mappings — the result the paper reports — are stable across
/// scales in this range.
inline Figure4Config BenchConfig() {
  Figure4Config config;
  config.num_r = 20000;
  config.num_s = 6000;
  config.rs_per_r = 2;
  if (const char* scale = std::getenv("ERBIUM_BENCH_SCALE")) {
    config.num_r = std::atoi(scale);
    config.num_s = config.num_r * 3 / 10;
  }
  return config;
}

/// Databases are expensive to build; cache one per mapping per process.
struct CachedDatabase {
  std::shared_ptr<ERSchema> schema;
  std::unique_ptr<MappedDatabase> db;
};

inline MappedDatabase* GetDatabase(const MappingSpec& spec) {
  static std::map<std::string, CachedDatabase>& cache =
      *new std::map<std::string, CachedDatabase>();
  auto it = cache.find(spec.name);
  if (it == cache.end()) {
    CachedDatabase entry;
    auto db = MakeFigure4Database(spec, BenchConfig(), &entry.schema);
    if (!db.ok()) {
      fprintf(stderr, "failed to build %s: %s\n", spec.name.c_str(),
              db.status().ToString().c_str());
      std::abort();
    }
    entry.db = std::move(db).value();
    it = cache.emplace(spec.name, std::move(entry)).first;
  }
  return it->second.db.get();
}

/// Runs one ERQL query to completion, reporting rows/iteration. Pass
/// non-default ExecOptions to exercise the parallel path.
inline void RunQueryBenchmark(benchmark::State& state,
                              const MappingSpec& spec,
                              const std::string& query,
                              const ExecOptions& opts = ExecOptions::Serial()) {
  MappedDatabase* db = GetDatabase(spec);
  auto compiled = erql::QueryEngine::Compile(db, query, opts);
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  size_t rows = 0;
  for (auto _ : state) {
    Status st = compiled->plan->Open();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    Row row;
    rows = 0;
    while (compiled->plan->Next(&row)) {
      benchmark::DoNotOptimize(row);
      ++rows;
    }
  }
  state.counters["rows"] = static_cast<double>(rows);
  if (opts.num_threads > 1) {
    state.counters["threads"] = opts.num_threads;
  }
}

/// Dumps the process-wide metrics registry to BENCH_<name>.json (in
/// ERBIUM_BENCH_STATS_DIR, default the working directory): the
/// machine-readable stats block behind every bench run — table CRUD and
/// index-probe counts from database construction plus whatever the
/// benched queries touched.
inline void WriteMetricsDump(const std::string& bench_name) {
  std::string dir;
  if (const char* env = std::getenv("ERBIUM_BENCH_STATS_DIR")) {
    dir = std::string(env) + "/";
  }
  auto write = [&](const std::string& filename, const std::string& body) {
    std::string path = dir + filename;
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[metrics] cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "[metrics] wrote %s\n", path.c_str());
  };
  write("BENCH_" + bench_name + ".json",
        "{\"bench\": \"" + bench_name + "\", \"metrics\": " +
            obs::MetricsRegistry::Global().ToJson() + "}\n");
  // The same registry in Prometheus text form, scrape-ready.
  write("BENCH_" + bench_name + ".prom", obs::ExportPrometheusText());
}

}  // namespace bench
}  // namespace erbium

/// BENCHMARK_MAIN() plus a metrics dump once the benchmarks finish.
#define ERBIUM_BENCH_MAIN(name)                                         \
  int main(int argc, char** argv) {                                     \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    ::erbium::bench::WriteMetricsDump(name);                            \
    return 0;                                                           \
  }

#endif  // ERBIUM_BENCH_BENCH_UTIL_H_
