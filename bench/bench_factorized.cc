// Experiment E9 (paper Section 6, multi-relational block): M1
// (normalized: R2, S1, and a join table) vs M6 (R2 ⋈ S1 stored
// together).  Two M6 variants are measured:
//   M6pg  one wide materialized table with duplication — what M6 means
//         on PostgreSQL, where the paper measured it;
//   M6    the compressed (factorized) representation with physical
//         pointers — the format the paper argues is needed to make M6
//         viable.
//
//   E9a  query that can use the precomputed join — paper: much faster
//        than M1's runtime join.
//   E9b  query touching only one of the two entity sets — paper: more
//        expensive on (PostgreSQL-style) M6.
//   E9c  aggregate per left entity pushed through the join — the
//        factorized representation's signature win.

#include "bench/bench_util.h"
#include "exec/aggregate.h"
#include "factorized/factorized.h"

namespace erbium {
namespace bench {
namespace {

void BM_E9a_PrejoinedQuery(benchmark::State& state,
                           const MappingSpec& spec) {
  RunQueryBenchmark(state, spec,
                    "SELECT r.r_id, r.r2_a1, s1.s1_a1 "
                    "FROM R2 r JOIN S1 s1 ON R2S1");
}
BENCHMARK_CAPTURE(BM_E9a_PrejoinedQuery, M1, Figure4M1());
BENCHMARK_CAPTURE(BM_E9a_PrejoinedQuery, M6pg, Figure4M6Pg());
BENCHMARK_CAPTURE(BM_E9a_PrejoinedQuery, M6, Figure4M6());

void BM_E9b_SingleSideQuery(benchmark::State& state,
                            const MappingSpec& spec) {
  RunQueryBenchmark(state, spec,
                    "SELECT r_id, r2_a1, r2_a2 FROM R2 WHERE r2_a1 < 500");
}
BENCHMARK_CAPTURE(BM_E9b_SingleSideQuery, M1, Figure4M1());
BENCHMARK_CAPTURE(BM_E9b_SingleSideQuery, M6pg, Figure4M6Pg());
BENCHMARK_CAPTURE(BM_E9b_SingleSideQuery, M6, Figure4M6());

void BM_E9c_AggregatePerLeft(benchmark::State& state,
                             const MappingSpec& spec) {
  RunQueryBenchmark(state, spec,
                    "SELECT r.r_id, count(*) AS partners "
                    "FROM R2 r JOIN S1 s1 ON R2S1");
}
BENCHMARK_CAPTURE(BM_E9c_AggregatePerLeft, M1, Figure4M1());
BENCHMARK_CAPTURE(BM_E9c_AggregatePerLeft, M6pg, Figure4M6Pg());
BENCHMARK_CAPTURE(BM_E9c_AggregatePerLeft, M6, Figure4M6());

// The push-down variant runs directly on the factorized structure,
// skipping the hash aggregation entirely (Section 4: "pushing down
// aggregations through the joins").
void BM_E9c_AggregatePushdown_M6(benchmark::State& state) {
  MappedDatabase* db = GetDatabase(Figure4M6());
  FactorizedPair* pair = db->pair("R2S1_pair");
  if (pair == nullptr) {
    state.SkipWithError("missing pair");
    return;
  }
  for (auto _ : state) {
    std::vector<AggregateSpec> aggs;
    aggs.push_back({AggKind::kCountStar, nullptr, "partners", false});
    FactorizedGroupAggregate agg(pair, std::move(aggs));
    Status st = agg.Open();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    Row row;
    size_t n = 0;
    while (agg.Next(&row)) ++n;
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_E9c_AggregatePushdown_M6);

// Storage footprint comparison (reported once as counters): the
// duplication of the materialized join vs the compactness of the
// factorized pair — the quantitative form of the paper's "significant
// duplication of data" remark.
void BM_E9d_StorageFootprint(benchmark::State& state) {
  size_t m1 = GetDatabase(Figure4M1())->ApproximateDataBytes();
  size_t m6pg = GetDatabase(Figure4M6Pg())->ApproximateDataBytes();
  size_t m6 = GetDatabase(Figure4M6())->ApproximateDataBytes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m1);
  }
  state.counters["M1_bytes"] = static_cast<double>(m1);
  state.counters["M6pg_bytes"] = static_cast<double>(m6pg);
  state.counters["M6_bytes"] = static_cast<double>(m6);
}
BENCHMARK(BM_E9d_StorageFootprint);

}  // namespace
}  // namespace bench
}  // namespace erbium

ERBIUM_BENCH_MAIN("factorized");
