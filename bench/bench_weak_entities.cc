// Experiments E7–E8 (paper Section 6, weak-entity block): M1 (weak
// entity sets in their own tables) vs M5 (folded into the owner as
// arrays of composites).
//
//   E7  all information across S, S1, S2 for a batch of s_ids —
//       paper: M1 ~2.2x slower (extra joins).
//   E8  join S1 with R (through R2S1) — paper: M5 ~4x slower (unnesting
//       the folded composite arrays).

#include "bench/bench_util.h"

namespace erbium {
namespace bench {
namespace {

std::string InListOfSids(int count) {
  // Deterministic id sample, comma-separated.
  std::string out;
  int num_s = BenchConfig().num_s;
  int step = std::max(1, num_s / count);
  for (int i = 1; i <= num_s && count > 0; i += step, --count) {
    if (!out.empty()) out += ", ";
    out += std::to_string(i);
  }
  return out;
}

void BM_E7_BatchOwnerAndWeak(benchmark::State& state,
                             const MappingSpec& spec) {
  // The paper used 10000 s_ids on a 5M-row database; scale the batch
  // with our num_s (about a third of all owners).
  std::string ids = InListOfSids(BenchConfig().num_s / 3);
  std::string query =
      "SELECT s.s_id, s.s_a1, s.s_a2, s1.s1_no, s1.s1_a1, s1.s1_a2 "
      "FROM S s JOIN S1 s1 ON S_S1 WHERE s.s_id IN (" + ids + ")";
  RunQueryBenchmark(state, spec, query);
}
BENCHMARK_CAPTURE(BM_E7_BatchOwnerAndWeak, M1, Figure4M1());
BENCHMARK_CAPTURE(BM_E7_BatchOwnerAndWeak, M5, Figure4M5());

void BM_E7b_PointEntityAssembly(benchmark::State& state,
                                const MappingSpec& spec) {
  // Latency view of E7: assemble one owner together with both of its
  // weak entity sets, as a reactive application would. Under M1 this is
  // three index probes (S, S1-by-owner, S2-by-owner); under M5 the
  // owner row already contains everything.
  MappedDatabase* db = GetDatabase(spec);
  int64_t num_s = BenchConfig().num_s;
  int64_t id = 1;
  for (auto _ : state) {
    id = id % num_s + 1;
    IndexKey key{Value::Int64(id)};
    auto s = db->LookupEntity("S", key, {"s_a1", "s_a2"});
    auto s1 = db->LookupWeakByOwner("S1", key, {"s1_a1", "s1_a2"});
    auto s2 = db->LookupWeakByOwner("S2", key, {"s2_a1"});
    if (!s.ok() || !s1.ok() || !s2.ok()) {
      state.SkipWithError("lookup failed");
      return;
    }
    for (Operator* op : {s->get(), s1->get(), s2->get()}) {
      auto rows = CollectRows(op);
      benchmark::DoNotOptimize(rows);
    }
  }
}
BENCHMARK_CAPTURE(BM_E7b_PointEntityAssembly, M1, Figure4M1());
BENCHMARK_CAPTURE(BM_E7b_PointEntityAssembly, M5, Figure4M5());

void BM_E8_JoinWeakWithR(benchmark::State& state, const MappingSpec& spec) {
  RunQueryBenchmark(state, spec,
                    "SELECT r.r_id, r.r2_a1, s1.s1_a1 "
                    "FROM R2 r JOIN S1 s1 ON R2S1");
}
BENCHMARK_CAPTURE(BM_E8_JoinWeakWithR, M1, Figure4M1());
BENCHMARK_CAPTURE(BM_E8_JoinWeakWithR, M5, Figure4M5());

void BM_E8b_WeakEntityScan(benchmark::State& state,
                           const MappingSpec& spec) {
  // The raw unnest cost: scanning all S1 instances.
  RunQueryBenchmark(state, spec,
                    "SELECT s_id, s1_no, s1_a1, s1_a2 FROM S1");
}
BENCHMARK_CAPTURE(BM_E8b_WeakEntityScan, M1, Figure4M1());
BENCHMARK_CAPTURE(BM_E8b_WeakEntityScan, M5, Figure4M5());

}  // namespace
}  // namespace bench
}  // namespace erbium

ERBIUM_BENCH_MAIN("weak_entities");
