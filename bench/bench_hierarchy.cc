// Experiments E5–E6 (paper Section 6, hierarchy block): the three
// hierarchy representations M1 (class/delta tables), M3 (single table +
// discriminator), M4 (disjoint full-width tables).
//
//   E5  all information for R3 entities — paper: M1 needs a 3-way join
//       and is ~5x slower than M3; M3 is ~2.7x slower than M4 (scans the
//       whole hierarchy's rows instead of just R3's).
//   E6  join R with S with predicates on both — paper: M1 ≈ M4 despite
//       M4's 5-way union on the R side.
//   E6b a more complex variant (join + hierarchy attributes + aggregate)
//       where the paper says the gap between the three widens.

#include "bench/bench_util.h"

namespace erbium {
namespace bench {
namespace {

void BM_E5_LeafClassFullScan(benchmark::State& state,
                             const MappingSpec& spec) {
  RunQueryBenchmark(state, spec,
                    "SELECT r_id, r_a1, r_a2, r_a3, r_a4, r1_a1, r1_a2, "
                    "r3_a1, r3_a2 FROM R3");
}
BENCHMARK_CAPTURE(BM_E5_LeafClassFullScan, M1, Figure4M1());
BENCHMARK_CAPTURE(BM_E5_LeafClassFullScan, M3, Figure4M3());
BENCHMARK_CAPTURE(BM_E5_LeafClassFullScan, M4, Figure4M4());

void BM_E5_MidClassScan(benchmark::State& state, const MappingSpec& spec) {
  // R1 scan: M4 must union R1, R3, R4.
  RunQueryBenchmark(state, spec, "SELECT r_id, r1_a1, r1_a2 FROM R1");
}
BENCHMARK_CAPTURE(BM_E5_MidClassScan, M1, Figure4M1());
BENCHMARK_CAPTURE(BM_E5_MidClassScan, M3, Figure4M3());
BENCHMARK_CAPTURE(BM_E5_MidClassScan, M4, Figure4M4());

void BM_E6_JoinRWithS(benchmark::State& state, const MappingSpec& spec) {
  RunQueryBenchmark(state, spec,
                    "SELECT r.r_id, s.s_id FROM R r JOIN S s ON RS "
                    "WHERE r.r_a4 < 50 AND s.s_a1 < 5000");
}
BENCHMARK_CAPTURE(BM_E6_JoinRWithS, M1, Figure4M1());
BENCHMARK_CAPTURE(BM_E6_JoinRWithS, M3, Figure4M3());
BENCHMARK_CAPTURE(BM_E6_JoinRWithS, M4, Figure4M4());

void BM_E6b_ComplexHierarchyJoin(benchmark::State& state,
                                 const MappingSpec& spec) {
  // Joins the leaf class (3-way join under M1), reaches inherited and
  // leaf attributes, and aggregates — the "more complex query" where the
  // paper reports the representations diverge further.
  RunQueryBenchmark(state, spec,
                    "SELECT r.r_a4, count(*) AS n, avg(r.r3_a1) AS m "
                    "FROM R3 r JOIN S s ON RS WHERE r.r1_a1 < 900");
}
BENCHMARK_CAPTURE(BM_E6b_ComplexHierarchyJoin, M1, Figure4M1());
BENCHMARK_CAPTURE(BM_E6b_ComplexHierarchyJoin, M3, Figure4M3());
BENCHMARK_CAPTURE(BM_E6b_ComplexHierarchyJoin, M4, Figure4M4());

}  // namespace
}  // namespace bench
}  // namespace erbium

ERBIUM_BENCH_MAIN("hierarchy");
