// A2: execution-engine microbenchmarks backing the macro experiments:
// the unnest overhead the paper repeatedly blames ("unnest ... is often
// not optimized in modern RDBMSs"), array functions, and join strategy
// costs (hash build+probe vs index nested loop vs nested loop).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <random>

#include "exec/aggregate.h"
#include "exec/join.h"
#include "storage/table.h"

namespace erbium {
namespace {

std::vector<Row> MakeArrayRows(size_t n, size_t array_len) {
  std::mt19937_64 rng(7);
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Value::ArrayData elements;
    for (size_t k = 0; k < array_len; ++k) {
      elements.push_back(Value::Int64(static_cast<int64_t>(rng() % 1000)));
    }
    rows.push_back({Value::Int64(static_cast<int64_t>(i)),
                    Value::Array(std::move(elements))});
  }
  return rows;
}

std::vector<Column> ArrayCols() {
  return {Column{"id", Type::Int64(), false},
          Column{"arr", Type::Array(Type::Int64()), true}};
}

void BM_UnnestThroughput(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t len = static_cast<size_t>(state.range(1));
  std::vector<Row> rows = MakeArrayRows(n, len);
  for (auto _ : state) {
    UnnestOp unnest(std::make_unique<ValuesOp>(ArrayCols(), rows), 1, "v");
    Status st = unnest.Open();
    if (!st.ok()) return;
    Row row;
    size_t count = 0;
    while (unnest.Next(&row)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n * len));
}
BENCHMARK(BM_UnnestThroughput)->Args({10000, 4})->Args({10000, 32});

void BM_ArrayIntersect(benchmark::State& state) {
  std::vector<Row> a = MakeArrayRows(10000, state.range(0));
  ExprPtr intersect = MakeFunction(
      BuiltinFn::kArrayIntersect,
      {MakeColumnRef(1, "arr"), MakeColumnRef(1, "arr")});
  for (auto _ : state) {
    for (const Row& row : a) {
      Value v = intersect->Eval(row);
      benchmark::DoNotOptimize(v);
    }
  }
}
BENCHMARK(BM_ArrayIntersect)->Arg(4)->Arg(32);

void BM_ArrayContains(benchmark::State& state) {
  std::vector<Row> a = MakeArrayRows(10000, 8);
  ExprPtr contains = MakeFunction(
      BuiltinFn::kArrayContains,
      {MakeColumnRef(1, "arr"), MakeLiteral(Value::Int64(500))});
  for (auto _ : state) {
    for (const Row& row : a) {
      Value v = contains->Eval(row);
      benchmark::DoNotOptimize(v);
    }
  }
}
BENCHMARK(BM_ArrayContains);

std::unique_ptr<Table> MakeKeyedTable(size_t n) {
  auto table = std::make_unique<Table>(
      TableSchema("t", {Column{"k", Type::Int64(), false},
                        Column{"v", Type::Int64(), true}},
                  {0}));
  Status st = table->CreateIndex("pk", {"k"}, true);
  (void)st;
  for (size_t i = 0; i < n; ++i) {
    auto inserted = table->Insert({Value::Int64(static_cast<int64_t>(i)),
                                   Value::Int64(static_cast<int64_t>(i))});
    (void)inserted;
  }
  return table;
}

std::vector<Row> ProbeRows(size_t n) {
  std::vector<Row> rows;
  std::mt19937_64 rng(11);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int64(static_cast<int64_t>(rng() % n))});
  }
  return rows;
}

void BM_HashJoinBuildProbe(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto table = MakeKeyedTable(n);
  std::vector<Row> probes = ProbeRows(n);
  std::vector<Column> probe_cols{Column{"k", Type::Int64(), false}};
  for (auto _ : state) {
    HashJoinOp join(std::make_unique<ValuesOp>(probe_cols, probes),
                    std::make_unique<SeqScan>(table.get()),
                    {MakeColumnRef(0, "k")}, {MakeColumnRef(0, "k")});
    Status st = join.Open();
    if (!st.ok()) return;
    Row row;
    size_t count = 0;
    while (join.Next(&row)) ++count;
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_HashJoinBuildProbe)->Arg(10000)->Arg(100000);

void BM_IndexJoinProbe(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto table = MakeKeyedTable(n);
  std::vector<Row> probes = ProbeRows(n);
  std::vector<Column> probe_cols{Column{"k", Type::Int64(), false}};
  for (auto _ : state) {
    IndexJoinOp join(std::make_unique<ValuesOp>(probe_cols, probes),
                     table.get(), {MakeColumnRef(0, "k")}, {0});
    Status st = join.Open();
    if (!st.ok()) return;
    Row row;
    size_t count = 0;
    while (join.Next(&row)) ++count;
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_IndexJoinProbe)->Arg(10000)->Arg(100000);

void BM_HashAggregateGroups(benchmark::State& state) {
  size_t n = 100000;
  size_t groups = static_cast<size_t>(state.range(0));
  std::vector<Row> rows;
  rows.reserve(n);
  std::mt19937_64 rng(13);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int64(static_cast<int64_t>(rng() % groups)),
                    Value::Int64(static_cast<int64_t>(i))});
  }
  std::vector<Column> cols{Column{"g", Type::Int64(), false},
                           Column{"v", Type::Int64(), true}};
  for (auto _ : state) {
    std::vector<AggregateSpec> aggs;
    aggs.push_back({AggKind::kSum, MakeColumnRef(1, "v"), "s", false});
    HashAggregateOp agg(std::make_unique<ValuesOp>(cols, rows),
                        {MakeColumnRef(0, "g")}, {"g"}, std::move(aggs));
    Status st = agg.Open();
    if (!st.ok()) return;
    Row row;
    size_t count = 0;
    while (agg.Next(&row)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_HashAggregateGroups)->Arg(16)->Arg(10000);

void BM_PointLookupViaIndex(benchmark::State& state) {
  auto table = MakeKeyedTable(100000);
  std::mt19937_64 rng(17);
  for (auto _ : state) {
    IndexKey key{Value::Int64(static_cast<int64_t>(rng() % 100000))};
    std::vector<RowId> hits;
    table->LookupEqual({0}, key, &hits);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_PointLookupViaIndex);

void BM_PointLookupViaScan(benchmark::State& state) {
  // The no-index path (the 145x gap of E3 in micro form).
  auto table = std::make_unique<Table>(
      TableSchema("t", {Column{"k", Type::Int64(), false},
                        Column{"v", Type::Int64(), true}},
                  {0}));
  for (size_t i = 0; i < 100000; ++i) {
    auto inserted = table->Insert({Value::Int64(static_cast<int64_t>(i)),
                                   Value::Int64(0)});
    (void)inserted;
  }
  std::mt19937_64 rng(19);
  for (auto _ : state) {
    IndexKey key{Value::Int64(static_cast<int64_t>(rng() % 100000))};
    std::vector<RowId> hits;
    table->LookupEqual({0}, key, &hits);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_PointLookupViaScan);

}  // namespace
}  // namespace erbium

ERBIUM_BENCH_MAIN("exec_micro");
