// Durability overhead and recovery speed: WAL-attached insert throughput
// against the in-memory baseline (per sync mode), checkpoint cost, and
// recovery time as a function of WAL length. Run e.g.
//
//   ./bench/bench_durability --benchmark_format=console
//
// kFsync numbers are dominated by the device's flush latency; kNone shows
// the pure logging overhead (encode + write(2)) that every acknowledged
// logical CRUD op pays.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "durability/durable_db.h"
#include "workload/figure4.h"

namespace erbium {
namespace bench {
namespace {

using durability::DurableDatabase;
using durability::WalWriter;

std::string BenchDir() {
  return std::filesystem::temp_directory_path().string() +
         "/erbium_bench_durability";
}

Value REntity(int64_t id) {
  Value::StructData fields;
  fields.emplace_back("r_id", Value::Int64(id));
  fields.emplace_back("r_a1", Value::Int64(id * 3));
  fields.emplace_back("r_a2", Value::Float64(1.5 * static_cast<double>(id)));
  fields.emplace_back("r_a3", Value::String("row-" + std::to_string(id)));
  fields.emplace_back("r_a4", Value::Int64(id % 7));
  fields.emplace_back(
      "r_mv1", Value::Array({Value::Int64(id), Value::Int64(id + 1)}));
  return Value::Struct(std::move(fields));
}

// Insert throughput with no WAL attached: the in-memory baseline.
void BM_InsertInMemory(benchmark::State& state) {
  auto schema = std::make_shared<ERSchema>();
  auto made = MakeFigure4Schema();
  if (!made.ok()) { state.SkipWithError("schema failed"); return; }
  *schema = std::move(made).value();
  auto db = MappedDatabase::Create(schema.get(), Figure4M1());
  if (!db.ok()) { state.SkipWithError("create failed"); return; }
  int64_t id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->InsertEntity("R", REntity(id++)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertInMemory);

// Insert throughput with the WAL attached, per sync mode. Arg(0) = kNone
// (write only), Arg(1) = kFsync (flush every append).
void BM_InsertDurable(benchmark::State& state) {
  std::string dir = BenchDir();
  std::filesystem::remove_all(dir);
  DurableDatabase::Options options;
  options.spec = Figure4M1();
  options.initial_ddl = Figure4Ddl();
  options.sync = state.range(0) == 0 ? WalWriter::SyncMode::kNone
                                     : WalWriter::SyncMode::kFsync;
  auto db = DurableDatabase::Open(dir, std::move(options));
  if (!db.ok()) { state.SkipWithError("open failed"); return; }
  int64_t id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*db)->db()->InsertEntity("R", REntity(id++)));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["wal_bytes"] =
      static_cast<double>((*db)->wal_bytes()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_InsertDurable)->Arg(0)->Arg(1);

// Checkpoint cost at a given number of live rows.
void BM_Checkpoint(benchmark::State& state) {
  std::string dir = BenchDir();
  std::filesystem::remove_all(dir);
  DurableDatabase::Options options;
  options.spec = Figure4M1();
  options.initial_ddl = Figure4Ddl();
  auto db = DurableDatabase::Open(dir, std::move(options));
  if (!db.ok()) { state.SkipWithError("open failed"); return; }
  for (int64_t id = 1; id <= state.range(0); ++id) {
    if (!(*db)->db()->InsertEntity("R", REntity(id)).ok()) {
      state.SkipWithError("insert failed");
      return;
    }
  }
  for (auto _ : state) {
    auto summary = (*db)->Checkpoint();
    if (!summary.ok()) { state.SkipWithError("checkpoint failed"); return; }
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Checkpoint)->Arg(1000)->Arg(10000);

// Recovery (open) time with a WAL of N insert records and no snapshot —
// the worst case: every record replays through the logical choke points.
void BM_RecoverFromWal(benchmark::State& state) {
  std::string dir = BenchDir();
  std::filesystem::remove_all(dir);
  {
    DurableDatabase::Options options;
    options.spec = Figure4M1();
    options.initial_ddl = Figure4Ddl();
    auto db = DurableDatabase::Open(dir, std::move(options));
    if (!db.ok()) { state.SkipWithError("open failed"); return; }
    for (int64_t id = 1; id <= state.range(0); ++id) {
      if (!(*db)->db()->InsertEntity("R", REntity(id)).ok()) {
        state.SkipWithError("insert failed");
        return;
      }
    }
  }
  for (auto _ : state) {
    DurableDatabase::Options options;
    options.spec = Figure4M1();
    options.initial_ddl = Figure4Ddl();
    auto reopened = DurableDatabase::Open(dir, std::move(options));
    if (!reopened.ok() ||
        (*reopened)->recovery_info().records_replayed !=
            static_cast<size_t>(state.range(0))) {
      state.SkipWithError("recovery failed");
      return;
    }
  }
  state.counters["records"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RecoverFromWal)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace bench
}  // namespace erbium

ERBIUM_BENCH_MAIN("durability");
