// Morsel-parallel speedup on the Figure 4 workload: the same query
// compiled serial (1 thread) and parallel (2/4/8 threads), so the ratio
// between the Arg(1) row and the others is the speedup. The large
// scan-filter-aggregate case is the headline number; run at scale, e.g.
//
//   ERBIUM_BENCH_SCALE=100000 ./bench/bench_parallel --benchmark_format=json
//
// On machines with fewer cores than the thread count, extra workers are
// oversubscribed and the curve flattens accordingly.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "exec/parallel.h"

namespace erbium {
namespace bench {
namespace {

ExecOptions ThreadedOpts(int threads) {
  ExecOptions opts;
  opts.num_threads = threads;
  // Benchmarks compare serial vs parallel directly; never fall back.
  opts.parallel_row_threshold = 0;
  return opts;
}

void RunThreaded(benchmark::State& state, const MappingSpec& spec,
                 const std::string& query) {
  int threads = static_cast<int>(state.range(0));
  RunQueryBenchmark(state, spec, query, ThreadedOpts(threads));
  state.counters["threads"] = threads;
}

// Large scan + filter + grouped aggregate: the acceptance workload.
void BM_ScanFilterAggregate(benchmark::State& state) {
  RunThreaded(state, Figure4M2(),
              "SELECT r_a4, count(*) AS n, sum(r_a1) AS total, min(r_a1) "
              "AS lo, max(r_a1) AS hi FROM R WHERE r_a1 < 800");
}
BENCHMARK(BM_ScanFilterAggregate)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Plain parallel scan through the gather exchange (row-movement bound).
void BM_FilteredScan(benchmark::State& state) {
  RunThreaded(state, Figure4M2(),
              "SELECT r_id, r_a1, r_a4 FROM R WHERE r_a4 < 3");
}
BENCHMARK(BM_FilteredScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Relationship hash join: parallel partitioned build + parallel probe.
void BM_RelationshipJoin(benchmark::State& state) {
  RunThreaded(state, Figure4M1(),
              "SELECT r.r_id, s.s_id, rs_a1 FROM R r JOIN S s ON RS "
              "WHERE s.s_a1 < 5000");
}
BENCHMARK(BM_RelationshipJoin)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Join feeding an aggregate (probe-heavy, small output).
void BM_JoinAggregate(benchmark::State& state) {
  RunThreaded(state, Figure4M1(),
              "SELECT r.r_id, sum(rs_a1) AS total FROM R r JOIN S s ON RS");
}
BENCHMARK(BM_JoinAggregate)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace bench
}  // namespace erbium

ERBIUM_BENCH_MAIN("parallel");
